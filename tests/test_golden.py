"""Bit-identity regression tests for the hot-path optimizations.

``tests/golden_runs.json`` pins ``total_cycles``, ``events_processed``, and
the full stats snapshot for one small sweep per experiment family, captured
on the pre-optimization tree (commit f48eccd).  Every grid point must still
reproduce those numbers exactly: the slotted event queue, dispatch tables,
flyweight stat handles, and mesh memoization are all required to be
behaviour-preserving.

If a simulation *semantics* change is intended, regenerate the goldens with
``PYTHONPATH=src python tests/goldens.py`` and say so in the commit message.
"""

import json

import pytest

from goldens import GOLDEN_PATH, golden_specs, measure


def _golden():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as stream:
        return json.load(stream)


GOLDEN = _golden()
SPECS = golden_specs()


def test_golden_covers_every_spec():
    assert len(GOLDEN) == len({spec.key() for spec in SPECS})


@pytest.mark.parametrize("spec", SPECS, ids=lambda spec: spec.label())
def test_run_is_bit_identical_to_pre_optimization_golden(spec):
    want = GOLDEN[spec.key()]
    got = measure(spec)
    assert got["total_cycles"] == want["total_cycles"], "total_cycles drifted"
    assert got["events_processed"] == want["events_processed"], "event count drifted"
    assert got["snapshot"] == want["snapshot"], "stats snapshot drifted"
