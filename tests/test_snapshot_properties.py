"""Property tests for the native O(1) restore strategy (PR 10).

For every frame-ported workload family — tightloop (fig7), the CAS kernels
(fig9), the Livermore loops (fig8), and the application proxies (fig10) —
three executions of the same spec must be bit-identical:

* the uninterrupted run,
* a native O(state) restore from a mid-run capture, and
* a deterministic replay restore forced from the very same capture (the
  strategy downgraded to ``replay`` and the machine payload dropped, which
  is exactly what a v2 snapshot written by a frame-less build looks like).

The second half pins the fallback contract: checkpoint files that are
corrupt or carry a stale envelope version are discarded with a structured
:class:`SnapshotWarning` and the run silently starts from scratch.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.fig8_livermore import fig8_sweep
from repro.experiments.fig9_cas import fig9_sweep
from repro.experiments.fig10_applications import fig10_sweep
from repro.runner import RunSpec
from repro.runner.executor import execute_spec
from repro.snapshot import (
    STRATEGY_NATIVE,
    STRATEGY_REPLAY,
    Snapshot,
    SnapshotWarning,
    checkpoint_path,
    execute_with_checkpoints,
    resume_to_completion,
    snapshot_after,
    snapshot_document,
)
from repro.workloads.cas_kernels import CasKernelKind
from repro.workloads.livermore import LivermoreLoop
from test_snapshot import assert_identical


# --------------------------------------------------------------- spec builders
def _tight(iterations=3, num_cores=8, seed=0):
    return RunSpec(
        workload="tightloop", params={"iterations": iterations},
        config="WiSync", num_cores=num_cores, seed=seed,
    )


def _cas(kind, crit=8):
    sweep = fig9_sweep(
        kinds=[kind], core_counts=[8], critical_sections=[crit],
        successes_per_thread=2, configs=["WiSync"],
    )
    return list(sweep)[0]


def _livermore(loop, length=32):
    sweep = fig8_sweep(
        loops=[loop], core_counts=[8], vector_lengths={loop: [length]},
        repetitions=1, configs=["WiSync"],
    )
    return list(sweep)[0]


def _application(app):
    sweep = fig10_sweep(apps=[app], num_cores=8, phase_scale=0.25, configs=["WiSync"])
    return [spec for spec in sweep if spec.config == "WiSync"][0]


#: One representative per ported family; the deterministic sweep below walks
#: every member, the hypothesis property samples random corners.
PORTED_SPECS = st.one_of(
    st.builds(
        _tight,
        iterations=st.integers(min_value=2, max_value=4),
        num_cores=st.sampled_from([4, 8, 16]),
        seed=st.integers(min_value=0, max_value=3),
    ),
    st.builds(
        _cas,
        kind=st.sampled_from(list(CasKernelKind)),
        crit=st.sampled_from([8, 16]),
    ),
    st.builds(
        _livermore,
        loop=st.sampled_from(list(LivermoreLoop)),
        length=st.sampled_from([16, 32]),
    ),
    st.builds(_application, app=st.sampled_from(["blackscholes", "bodytrack"])),
)


def _three_way_identity(spec, cut):
    """native restore == forced replay restore == uninterrupted, at ``cut``."""
    full = execute_spec(spec)
    cut = min(max(1, cut), full.events_processed - 1)

    native_snap = snapshot_after(spec, cut)
    assert native_snap.strategy == STRATEGY_NATIVE
    assert native_snap.machine is not None
    assert native_snap.events_processed == cut

    restored = resume_to_completion(native_snap)
    assert restored.extra.get("native_restore") == 1.0
    assert restored.extra.get("events_replayed") == 0.0
    assert_identical(restored, full)

    replay_snap = Snapshot(
        spec=native_snap.spec,
        events_processed=native_snap.events_processed,
        clock=native_snap.clock,
        strategy=STRATEGY_REPLAY,
        native=native_snap.native,
    )
    replayed = resume_to_completion(replay_snap)
    assert replayed.extra.get("native_restore") == 0.0
    assert replayed.extra.get("events_replayed") == float(cut)
    assert_identical(replayed, full)
    return full


# ---------------------------------------------------------------------------
# Deterministic sweep: every ported workload, one mid-run cut
# ---------------------------------------------------------------------------
EVERY_PORTED = (
    [_tight()]
    + [_cas(kind) for kind in CasKernelKind]
    + [_livermore(loop) for loop in LivermoreLoop]
    + [_application(app) for app in ("blackscholes", "bodytrack")]
)


@pytest.mark.parametrize("spec", EVERY_PORTED, ids=lambda spec: spec.label())
def test_every_ported_workload_restores_natively(spec):
    full = execute_spec(spec)
    _three_way_identity(spec, full.events_processed // 2)


# ---------------------------------------------------------------------------
# Property: random cut fractions across random ported-grid corners
# ---------------------------------------------------------------------------
class TestNativeRestoreProperty:
    @settings(
        max_examples=8, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        spec=PORTED_SPECS,
        fraction=st.floats(min_value=0.05, max_value=0.95),
    )
    def test_native_equals_replay_equals_uninterrupted(self, spec, fraction):
        full = execute_spec(spec)
        _three_way_identity(spec, int(full.events_processed * fraction))


# ---------------------------------------------------------------------------
# Fallback: unusable checkpoints are discarded with a warning
# ---------------------------------------------------------------------------
class TestCheckpointFallback:
    def test_corrupt_checkpoint_falls_back_with_warning(self, tmp_path):
        spec = _tight()
        full = execute_spec(spec)
        path = checkpoint_path(tmp_path, spec)
        path.write_text("{ this is not a snapshot", encoding="utf-8")
        with pytest.warns(SnapshotWarning, match="running from scratch"):
            result = execute_with_checkpoints(spec, checkpoint_dir=tmp_path)
        assert_identical(result, full)
        assert not path.exists()  # the unusable file is evicted

    def test_v1_envelope_falls_back_with_warning(self, tmp_path):
        spec = _tight(seed=1)
        full = execute_spec(spec)
        snap = snapshot_after(spec, max(1, full.events_processed // 2))
        document = snapshot_document(snap)
        document["version"] = 1
        path = checkpoint_path(tmp_path, spec)
        path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.warns(SnapshotWarning, match="unsupported snapshot version 1"):
            result = execute_with_checkpoints(spec, checkpoint_dir=tmp_path)
        assert_identical(result, full)
        assert not path.exists()

    def test_tampered_machine_payload_falls_back_with_warning(self, tmp_path):
        spec = _tight(seed=2)
        full = execute_spec(spec)
        snap = snapshot_after(spec, max(1, full.events_processed // 2))
        stripped = Snapshot(
            spec=snap.spec, events_processed=snap.events_processed,
            clock=snap.clock, strategy=STRATEGY_NATIVE, native=snap.native,
            machine=None,
        )
        path = checkpoint_path(tmp_path, spec)
        path.write_text(
            json.dumps(snapshot_document(stripped)), encoding="utf-8"
        )
        with pytest.warns(SnapshotWarning, match="no machine payload"):
            result = execute_with_checkpoints(spec, checkpoint_dir=tmp_path)
        assert_identical(result, full)
