"""Tests for the declarative run API (repro.runner)."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ConfigurationError, ExecutionError, WorkloadError
from repro.experiments.fig9_cas import fig9_sweep
from repro.machine.configs import wisync
from repro.machine.manycore import Manycore
from repro.runner import (
    REGISTRY,
    ParallelExecutor,
    ResultCache,
    Runner,
    RunSpec,
    SerialExecutor,
    SweepSpec,
    execute_spec,
    workload_names,
)
from repro.workloads.cas_kernels import CasKernelKind
from repro.workloads.tightloop import build_tightloop


def tightloop_spec(**overrides):
    base = dict(
        workload="tightloop",
        params={"iterations": 2},
        config="WiSync",
        num_cores=8,
    )
    base.update(overrides)
    return RunSpec(**base)


class TestRegistry:
    def test_paper_workloads_registered(self):
        assert workload_names() == [
            "application", "barrier_storm", "cas", "fault_probe", "livermore",
            "mixed_phases", "pc_ring", "rwlock", "tightloop", "work_steal",
        ]

    def test_name_round_trips_to_builder(self):
        assert REGISTRY.get("tightloop") is build_tightloop

    def test_unknown_workload_raises(self):
        with pytest.raises(WorkloadError, match="unknown workload"):
            REGISTRY.get("does-not-exist")

    def test_registry_builds_a_runnable_handle(self):
        machine = Manycore(wisync(num_cores=4))
        handle = REGISTRY.build(machine, "tightloop", {"iterations": 2})
        assert handle.run().completed

    def test_user_registration_does_not_hide_builtins(self):
        # A custom workload registered before any lookup must not suppress
        # the lazy import that registers the built-in workloads.
        script = (
            "from repro import register_workload, workload_names\n"
            "@register_workload('custom-first')\n"
            "def build(machine):\n"
            "    raise NotImplementedError\n"
            "names = workload_names()\n"
            "assert 'custom-first' in names and 'tightloop' in names, names\n"
            "print('ok')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            env={"PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src")},
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"


class TestRunSpec:
    def test_params_round_trip(self):
        spec = tightloop_spec(params={"b": 2, "a": [1, 2]})
        assert spec.params_dict() == {"a": [1, 2], "b": 2}

    def test_hashable_and_order_insensitive(self):
        first = tightloop_spec(params={"a": 1, "b": 2})
        second = tightloop_spec(params={"b": 2, "a": 1})
        assert first == second
        assert hash(first) == hash(second)
        assert first.key() == second.key()

    def test_to_from_dict_round_trip(self):
        spec = tightloop_spec(variant="SlowNet", max_cycles=1000, seed=7)
        clone = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.key() == spec.key()

    def test_key_differs_per_axis(self):
        base = tightloop_spec()
        assert base.key() != tightloop_spec(num_cores=16).key()
        assert base.key() != tightloop_spec(config="Baseline").key()
        assert base.key() != tightloop_spec(seed=1).key()
        assert base.key() != tightloop_spec(params={"iterations": 3}).key()

    def test_key_deterministic_across_processes(self):
        spec = tightloop_spec(params={"iterations": 4, "array_elements": 10})
        script = (
            "from repro.runner.spec import RunSpec;"
            f"print(RunSpec.from_dict({spec.to_dict()!r}).key())"
        )
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src")},
        ).stdout.strip()
        assert output == spec.key()

    def test_rejects_unserializable_params(self):
        with pytest.raises(ConfigurationError, match="JSON-serializable"):
            tightloop_spec(params={"fn": object()})

    def test_rejects_bad_core_count(self):
        with pytest.raises(ConfigurationError):
            tightloop_spec(num_cores=0)


class TestSweepSpec:
    def test_grid_cross_product(self):
        sweep = SweepSpec.grid(
            name="g", workload="tightloop",
            configs=["Baseline", "WiSync"], core_counts=[4, 8],
            params=[{"iterations": 1}, {"iterations": 2}],
        )
        assert len(sweep) == 8
        assert len(set(sweep.specs)) == 8

    def test_round_trip(self):
        sweep = fig9_sweep(core_counts=[8], critical_sections=[16])
        clone = SweepSpec.from_dict(json.loads(json.dumps(sweep.to_dict())))
        assert clone == sweep


class TestExecutors:
    def test_execute_spec_truncation_marks_partial(self):
        result = execute_spec(tightloop_spec(params={"iterations": 50}, max_cycles=100))
        assert not result.completed
        assert result.total_cycles >= 100
        assert max(result.thread_cycles) <= result.total_cycles

    def test_serial_vs_parallel_equality_on_fig9_sweep(self):
        sweep = fig9_sweep(
            kinds=[CasKernelKind.FIFO, CasKernelKind.ADD],
            core_counts=[8], critical_sections=[16], successes_per_thread=2,
        )
        serial = SerialExecutor().run(sweep.specs)
        parallel = ParallelExecutor(max_workers=2).run(sweep.specs)
        assert len(serial) == len(parallel) == len(sweep)
        for mine, theirs in zip(serial, parallel):
            assert mine.total_cycles == theirs.total_cycles
            assert mine.thread_cycles == theirs.thread_cycles
            assert mine.stats.to_dict() == theirs.stats.to_dict()

    def test_parallel_preserves_spec_order(self):
        specs = [tightloop_spec(num_cores=cores) for cores in (4, 8, 16)]
        results = ParallelExecutor(max_workers=3).run(specs)
        assert [r.num_cores for r in results] == [4, 8, 16]

    def test_parallel_progress_hook_index_matches_spec(self):
        specs = [tightloop_spec(num_cores=cores) for cores in (4, 8, 16)]
        seen = {}
        ParallelExecutor(max_workers=3).run(
            specs, progress=lambda i, n, spec, result: seen.__setitem__(i, spec)
        )
        assert seen == {0: specs[0], 1: specs[1], 2: specs[2]}

    def test_completed_flag_matches_finished_threads_at_boundary(self):
        baseline = execute_spec(tightloop_spec())
        for budget in (baseline.total_cycles, baseline.total_cycles + 1):
            result = execute_spec(tightloop_spec(max_cycles=budget))
            assert result.completed == (
                result.finished_threads == result.total_threads
            )


def fault_spec(**params):
    return RunSpec(workload="fault_probe", params=params, config="WiSync", num_cores=4)


class TestExecutorFaults:
    """Fault injection: failing grid points must not abort or corrupt a sweep."""

    def test_parallel_yields_successes_then_raises_structured_error(self):
        # Regression: one worker exception used to abort the whole sweep and
        # discard every completed-but-unyielded result.
        specs = [
            tightloop_spec(num_cores=4),
            fault_spec(mode="raise"),
            tightloop_spec(num_cores=8),
        ]
        received = {}
        with pytest.raises(ExecutionError) as excinfo:
            for position, result in ParallelExecutor(max_workers=2).run_iter(specs):
                received[position] = result
        assert sorted(received) == [0, 2]
        assert received[0].completed and received[2].completed
        failures = excinfo.value.failures
        assert len(failures) == 1
        assert failures[0][0] == specs[1]
        assert "fault_probe" in failures[0][1]
        assert "fault_probe" in str(excinfo.value)

    def test_parallel_retries_flaky_spec_once_and_succeeds(self, tmp_path):
        marker = str(tmp_path / "flaky-marker")
        specs = [fault_spec(marker=marker), tightloop_spec(num_cores=8)]
        results = ParallelExecutor(max_workers=2).run(specs)
        assert len(results) == 2
        assert all(result.completed for result in results)
        assert Path(marker).exists()  # the failing first attempt happened

    def test_pool_crasher_does_not_poison_innocent_specs(self):
        # A spec that kills its worker process breaks the shared pool, so
        # innocent in-flight specs fail collaterally (BrokenProcessPool).
        # The retry round must run each spec in an isolated pool: innocents
        # recover, and only the crasher lands in ExecutionError.failures.
        specs = [
            tightloop_spec(num_cores=4),
            fault_spec(mode="exit"),
            tightloop_spec(num_cores=8),
            tightloop_spec(num_cores=16),
        ]
        received = {}
        with pytest.raises(ExecutionError) as excinfo:
            for position, result in ParallelExecutor(max_workers=2).run_iter(specs):
                received[position] = result
        assert sorted(received) == [0, 2, 3]
        assert all(result.completed for result in received.values())
        failures = excinfo.value.failures
        assert [spec for spec, _ in failures] == [specs[1]]

    def test_inline_path_has_the_same_failure_semantics(self):
        # max_workers=1 (and single-spec batches) run in-process but must
        # still capture, retry, and raise ExecutionError — not the raw error.
        with pytest.raises(ExecutionError, match="1 of 1 grid points"):
            ParallelExecutor(max_workers=1).run([fault_spec(mode="raise")])

    def test_inline_retry_then_succeed(self, tmp_path):
        marker = str(tmp_path / "flaky-inline")
        results = ParallelExecutor(max_workers=1).run([fault_spec(marker=marker)])
        assert len(results) == 1 and results[0].completed

    def test_inline_and_pool_paths_share_the_attempt_budget(self, tmp_path):
        # A spec failing twice and succeeding on the third attempt completes
        # on both paths — the inline path is not allowed fewer attempts
        # (initial + shared retry + isolated retry) than the pool path.
        inline_marker = str(tmp_path / "inline-twice")
        results = ParallelExecutor(max_workers=1).run(
            [fault_spec(marker=inline_marker, fail_count=2)]
        )
        assert results[0].completed
        pool_marker = str(tmp_path / "pool-twice")
        results = ParallelExecutor(max_workers=2).run(
            [fault_spec(marker=pool_marker, fail_count=2), tightloop_spec(num_cores=8)]
        )
        assert all(result.completed for result in results)

    def test_run_rejects_duplicate_positions(self):
        # Regression: duplicate positions were silently collapsed by the
        # None-filter in _ExecutorBase.run, masking a broken executor.
        class Duplicating(SerialExecutor):
            def run_iter(self, specs):
                result = execute_spec(specs[0])
                yield 0, result
                yield 0, result

        with pytest.raises(WorkloadError, match="more than once"):
            Duplicating().run([tightloop_spec(), tightloop_spec(num_cores=4)])

    def test_run_rejects_missing_positions(self):
        class Short(SerialExecutor):
            def run_iter(self, specs):
                yield 0, execute_spec(specs[0])

        with pytest.raises(WorkloadError, match=r"no result for position\(s\) \[1\]"):
            Short().run([tightloop_spec(), tightloop_spec(num_cores=4)])

    def test_run_rejects_none_results(self):
        # A (position, None) pair used to slip past position validation and
        # then vanish in a None-filter, silently shortening the result list.
        class Noneish(SerialExecutor):
            def run_iter(self, specs):
                yield 0, None

        with pytest.raises(WorkloadError, match=r"no result \(None\)"):
            Noneish().run([tightloop_spec()])

    def test_run_rejects_out_of_range_positions(self):
        class Negative(SerialExecutor):
            def run_iter(self, specs):
                yield -1, execute_spec(specs[0])

        with pytest.raises(WorkloadError, match="outside"):
            Negative().run([tightloop_spec()])

    def test_fault_probe_modes(self):
        machine = Manycore(wisync(num_cores=4))
        with pytest.raises(WorkloadError, match="injected failure"):
            REGISTRY.build(machine, "fault_probe", {"mode": "raise"})
        with pytest.raises(WorkloadError, match="unknown mode"):
            REGISTRY.build(Manycore(wisync(num_cores=4)), "fault_probe", {"mode": "?"})
        result = execute_spec(fault_spec())
        assert result.completed


class TestSimResultSerialization:
    def test_round_trip_preserves_metrics(self):
        from repro.machine.results import SimResult

        result = execute_spec(tightloop_spec())
        clone = SimResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone.total_cycles == result.total_cycles
        assert clone.thread_cycles == result.thread_cycles
        assert clone.thread_results == result.thread_results
        assert clone.completed == result.completed
        assert clone.wireless_messages == result.wireless_messages
        assert clone.data_channel_utilization() == result.data_channel_utilization()
        assert clone.mean_transfer_latency() == result.mean_transfer_latency()
        assert clone.summary() == result.summary()


class TestCacheAndRunner:
    def test_cache_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = tightloop_spec()
        assert cache.get(spec) is None
        result = execute_spec(spec)
        cache.put(spec, result)
        assert spec in cache
        cached = cache.get(spec)
        assert cached is not None
        assert cached.total_cycles == result.total_cycles
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_corrupt_entry_is_a_miss_and_is_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tightloop_spec()
        cache.entry_path(spec).write_text("{not json")
        assert cache.get(spec) is None
        assert not cache.entry_path(spec).exists()

    def test_stale_version_entry_is_evicted_on_read(self, tmp_path):
        # Regression: a version-mismatched entry was treated as a miss but
        # left on disk forever, inflating len(cache) with dead files.
        cache = ResultCache(tmp_path)
        spec = tightloop_spec()
        cache.put(spec, execute_spec(spec))
        payload = json.loads(cache.entry_path(spec).read_text())
        payload["version"] = -1
        cache.entry_path(spec).write_text(json.dumps(payload))
        assert cache.get(spec) is None
        assert not cache.entry_path(spec).exists()
        assert len(cache) == 0

    def test_prune_sweeps_dead_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        live = tightloop_spec()
        cache.put(live, execute_spec(live))
        stale = tightloop_spec(num_cores=4)
        cache.put(stale, execute_spec(stale))
        payload = json.loads(cache.entry_path(stale).read_text())
        payload["version"] = -1
        cache.entry_path(stale).write_text(json.dumps(payload))
        (tmp_path / "corrupt.json").write_text("{not json")
        assert len(cache) == 3
        assert cache.prune() == 2
        assert len(cache) == 1
        assert cache.get(live) is not None

    def test_prune_sweeps_orphaned_tmp_files(self, tmp_path):
        # Regression: a writer dying between mkstemp and os.replace leaked
        # *.tmp files forever; with distributed multi-host writers sharing
        # the directory that leak is recurring, not theoretical.
        import os
        import time

        cache = ResultCache(tmp_path)
        live = tightloop_spec()
        cache.put(live, execute_spec(live))
        orphan = tmp_path / "tmpdead123.tmp"
        orphan.write_text("{")
        ancient = time.time() - 7200
        os.utime(orphan, (ancient, ancient))
        in_flight = tmp_path / "tmplive456.tmp"
        in_flight.write_text("{")
        assert cache.prune() == 1
        assert not orphan.exists()
        assert in_flight.exists()  # young enough to belong to a live writer
        assert cache.get(live) is not None

    def test_put_tolerates_concurrent_clear_of_its_temp_file(self, tmp_path, monkeypatch):
        # Regression: clear() on another host sweeping an in-flight *.tmp
        # made the writer's os.replace raise FileNotFoundError, aborting a
        # sweep whose result was already simulated.
        import os as os_module

        cache = ResultCache(tmp_path)
        spec = tightloop_spec()
        result = execute_spec(spec)
        real_replace = os_module.replace

        def racing_replace(src, dst):
            os_module.unlink(src)  # the concurrent clear() wins the race
            return real_replace(src, dst)

        monkeypatch.setattr("repro.runner.cache.os.replace", racing_replace)
        cache.put(spec, result)  # must not raise
        assert cache.get(spec) is None  # entry lost to the race, not cached

    def test_clear_removes_tmp_files_too(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tightloop_spec()
        cache.put(spec, execute_spec(spec))
        (tmp_path / "tmpfresh.tmp").write_text("{")
        assert cache.clear() == 2
        assert list(tmp_path.iterdir()) == []

    def test_runner_skips_cached_specs(self, tmp_path):
        sweep = SweepSpec(name="s", specs=(tightloop_spec(), tightloop_spec(num_cores=4)))
        runner = Runner(cache=ResultCache(tmp_path))
        first = runner.run(sweep)
        assert (first.num_simulated, first.num_cached) == (2, 0)
        second = runner.run(sweep)
        assert (second.num_simulated, second.num_cached) == (0, 2)
        for spec in sweep:
            assert first.result_for(spec).total_cycles == second.result_for(spec).total_cycles

    def test_sweep_rejects_duplicate_grid_points(self):
        # Overlapping axes used to double-run (and then silently deduplicate)
        # a grid point; a duplicate spec is now a configuration error.
        spec = tightloop_spec()
        with pytest.raises(ConfigurationError, match="more than once"):
            SweepSpec(name="d", specs=(spec, spec))
        with pytest.raises(ConfigurationError, match="overlapping axes"):
            SweepSpec.grid(
                name="g", workload="tightloop",
                configs=["WiSync"], core_counts=[8, 8],
            )

    def test_run_spec_facade(self):
        result = Runner().run_spec(tightloop_spec())
        assert result.completed
        assert result.num_cores == 8


class TestStreamedProgress:
    def _sweep(self):
        return SweepSpec(
            name="s",
            specs=tuple(tightloop_spec(num_cores=cores) for cores in (4, 8, 16)),
        )

    def test_run_iter_yields_every_grid_point(self):
        iterator = Runner().run_iter(self._sweep())
        events = []
        while True:
            try:
                events.append(next(iterator))
            except StopIteration as stop:
                outcome = stop.value
                break
        assert [event.index for event in events] == [0, 1, 2]
        assert all(event.total == 3 and not event.cached for event in events)
        assert [event.spec.num_cores for event in events] == [4, 8, 16]
        assert outcome.num_simulated == 3
        for event in events:
            assert outcome.result_for(event.spec) is event.result

    def test_progress_hook_sees_cache_hits(self, tmp_path):
        sweep = self._sweep()
        runner = Runner(cache=ResultCache(tmp_path))
        runner.run(sweep)
        events = []
        runner.run(sweep, progress=events.append)
        assert len(events) == 3
        assert all(event.cached for event in events)

    def test_runner_level_hook_streams_through_legacy_experiments(self):
        from repro.experiments import run_fig7

        events = []
        run_fig7(
            core_counts=[8], iterations=2, configs=["WiSync", "Baseline"],
            runner=Runner(progress=events.append),
        )
        assert [event.spec.config for event in events] == ["WiSync", "Baseline"]

    def test_parallel_run_iter_streams_all_positions(self):
        specs = [tightloop_spec(num_cores=cores) for cores in (4, 8, 16)]
        pairs = list(ParallelExecutor(max_workers=3).run_iter(specs))
        assert sorted(position for position, _ in pairs) == [0, 1, 2]
        for position, result in pairs:
            assert result.num_cores == specs[position].num_cores

    def test_runner_detects_duplicate_executor_positions(self):
        class Duplicating(SerialExecutor):
            def run_iter(self, specs):
                result = execute_spec(specs[0])
                yield 0, result
                yield 0, result

        sweep = SweepSpec(
            name="s", specs=(tightloop_spec(), tightloop_spec(num_cores=4))
        )
        with pytest.raises(WorkloadError, match="more than once"):
            Runner(executor=Duplicating()).run(sweep)

    def test_runner_detects_short_executor_yield(self):
        class Short(SerialExecutor):
            def run_iter(self, specs):
                yield 0, execute_spec(specs[0])

        sweep = SweepSpec(
            name="s", specs=(tightloop_spec(), tightloop_spec(num_cores=4))
        )
        with pytest.raises(WorkloadError, match="produced 1 results for 2 specs"):
            Runner(executor=Short()).run(sweep)

    def test_legacy_executor_result_count_mismatch_raises(self):
        # A user-supplied executor without run_iter that returns the wrong
        # number of results must fail with the diagnostic, not an IndexError.
        class Overeager:
            def run(self, specs, progress=None):
                return [execute_spec(spec) for spec in specs] * 2

        with pytest.raises(WorkloadError, match="returned 2 results for 1 specs"):
            Runner(executor=Overeager()).run(
                SweepSpec(name="s", specs=(tightloop_spec(),))
            )

    def test_describe_mentions_progress_and_source(self):
        from repro.runner.runner import SpecProgress

        spec = tightloop_spec()
        result = execute_spec(spec)
        line = SpecProgress(0, 12, spec, result, cached=True).describe()
        assert line.startswith("[ 1/12]")
        assert spec.label() in line
        assert "(cached)" in line


class TestLegacyParity:
    def test_run_fig7_matches_direct_simulation(self):
        from repro.experiments import run_fig7

        series = run_fig7(core_counts=[8], iterations=2, configs=["WiSync"])
        direct = build_tightloop(Manycore(wisync(num_cores=8)), iterations=2).run()
        assert series[8]["WiSync"] == direct.total_cycles / 2

    def test_run_fig7_parallel_matches_serial(self):
        from repro.experiments import run_fig7

        serial = run_fig7(core_counts=[8], iterations=2)
        parallel = run_fig7(
            core_counts=[8], iterations=2,
            runner=Runner(executor=ParallelExecutor(max_workers=2)),
        )
        assert serial == parallel


class TestCli:
    def _repro(self, *argv):
        env = {"PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src")}
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True, text=True, env=env,
        )

    def test_list(self):
        proc = self._repro("list", "--json")
        assert proc.returncode == 0
        inventory = json.loads(proc.stdout)
        assert "fig7" in inventory["experiments"]
        assert "tightloop" in inventory["workloads"]

    def test_run_fig7_with_cache_simulates_once(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        out = str(tmp_path / "out.json")
        first = self._repro(
            "run", "fig7", "--cores", "8", "--iterations", "2",
            "--configs", "WiSync,Baseline+", "--cache", cache_dir, "--json", out, "--quiet",
        )
        assert first.returncode == 0, first.stderr
        assert "2 simulated, 0 cached" in first.stderr
        second = self._repro(
            "run", "fig7", "--cores", "8", "--iterations", "2",
            "--configs", "WiSync,Baseline+", "--cache", cache_dir, "--json", out, "--quiet",
        )
        assert second.returncode == 0, second.stderr
        assert "0 simulated, 2 cached" in second.stderr
        table = json.loads(Path(out).read_text())
        assert set(table["8"]) == {"WiSync", "Baseline+"}
