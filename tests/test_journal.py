"""Broker write-ahead journal tests: file format, replay, restart recovery.

Three layers:

* file level — :class:`BrokerJournal` append/replay semantics: header,
  idempotence, torn-tail tolerance, corruption detection, record aggregation
  into :class:`TaskReplay` states;
* property level — hypothesis sweeps over random record sequences and random
  truncation points (replay is a pure function of the file; a torn tail
  costs exactly the last record);
* broker level — a journaled :class:`Broker` killed mid-sweep and rebuilt
  from the same journal resumes the *same* sweep: completed specs are
  re-emitted without re-running, and the recovered results are bit-identical
  to a serial run (the acceptance bar, also swept by hypothesis over random
  grids and kill points via the embedded chaos drill).
"""

import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import JournalError
from repro.runner import (
    Broker,
    BrokerJournal,
    JournalWarning,
    RunSpec,
    SerialExecutor,
    TaskReplay,
)
from repro.runner.chaos import (
    ChaosSchedule,
    KillEvent,
    run_embedded_drill,
    verify_against_serial,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")


def tightloop_spec(num_cores=8, iterations=2):
    return RunSpec(
        workload="tightloop", params={"iterations": iterations},
        config="WiSync", num_cores=num_cores,
    )


class TestJournalFile:
    def test_missing_journal_replays_empty(self, tmp_path):
        journal = BrokerJournal(tmp_path)
        assert not journal.exists()
        assert journal.replay() == {}

    def test_first_append_writes_the_header(self, tmp_path):
        with BrokerJournal(tmp_path) as journal:
            journal.append({"kind": "assigned", "key": "k", "worker": "w"})
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 2
        header = lines[0]
        assert "wisync-broker-journal" in header

    def test_assigned_then_completed_round_trips(self, tmp_path):
        with BrokerJournal(tmp_path) as journal:
            journal.append({"kind": "assigned", "key": "k", "worker": "w"})
            journal.append(
                {"kind": "completed", "key": "k", "result": {"total_cycles": 7}}
            )
        states = BrokerJournal(tmp_path).replay()
        assert set(states) == {"k"}
        state = states["k"]
        assert state.result == {"total_cycles": 7}
        assert not state.leased
        assert not state.failed

    def test_in_flight_attempt_is_refunded(self, tmp_path):
        # The broker died while the task was leased: its death is not the
        # worker's fault, so the attempt must not be charged on restart.
        with BrokerJournal(tmp_path) as journal:
            journal.append({"kind": "assigned", "key": "k", "worker": "w"})
        state = BrokerJournal(tmp_path).replay()["k"]
        assert state.attempts == 1
        assert state.leased
        assert state.settled_attempts() == 0

    def test_released_lease_is_refunded_too(self, tmp_path):
        with BrokerJournal(tmp_path) as journal:
            journal.append({"kind": "assigned", "key": "k", "worker": "w"})
            journal.append({"kind": "released", "key": "k"})
        state = BrokerJournal(tmp_path).replay()["k"]
        assert state.attempts == 0
        assert not state.leased
        assert state.settled_attempts() == 0

    def test_exclusion_burns_the_attempt_and_sticks(self, tmp_path):
        with BrokerJournal(tmp_path) as journal:
            journal.append({"kind": "assigned", "key": "k", "worker": "w1"})
            journal.append({
                "kind": "excluded", "key": "k",
                "worker": "w1", "reason": "worker crashed",
            })
        state = BrokerJournal(tmp_path).replay()["k"]
        assert state.excluded == {"w1"}
        assert state.errors == ["worker crashed"]
        assert state.attempts == 1
        assert not state.leased
        assert state.settled_attempts() == 1

    def test_checkpoint_adopted_then_cleared_by_completion(self, tmp_path):
        with BrokerJournal(tmp_path) as journal:
            journal.append({"kind": "assigned", "key": "k", "worker": "w"})
            journal.append({
                "kind": "checkpointed", "key": "k",
                "snapshot": {"events_processed": 500},
            })
        state = BrokerJournal(tmp_path).replay()["k"]
        assert state.checkpoint == {"events_processed": 500}
        with BrokerJournal(tmp_path) as journal:
            journal.append(
                {"kind": "completed", "key": "k", "result": {"total_cycles": 1}}
            )
        state = BrokerJournal(tmp_path).replay()["k"]
        assert state.checkpoint is None  # a finished spec needs no resume point

    def test_terminal_state_wins_over_late_records(self, tmp_path):
        # A completed record followed by stale transitions (late heartbeat
        # bookkeeping, a duplicate report) must not reopen the task.
        with BrokerJournal(tmp_path) as journal:
            journal.append(
                {"kind": "completed", "key": "k", "result": {"total_cycles": 3}}
            )
            journal.append({"kind": "assigned", "key": "k", "worker": "w"})
            journal.append({"kind": "failed", "key": "k", "reasons": ["late"]})
        state = BrokerJournal(tmp_path).replay()["k"]
        assert state.result == {"total_cycles": 3}
        assert not state.failed
        assert state.attempts == 0

    def test_failed_record_restores_the_reasons(self, tmp_path):
        with BrokerJournal(tmp_path) as journal:
            journal.append(
                {"kind": "failed", "key": "k", "reasons": ["a", "b"]}
            )
        state = BrokerJournal(tmp_path).replay()["k"]
        assert state.failed
        assert state.errors == ["a", "b"]

    def test_torn_tail_warns_and_drops_only_the_tail(self, tmp_path):
        with BrokerJournal(tmp_path) as journal:
            journal.append({"kind": "assigned", "key": "k", "worker": "w"})
            journal.append(
                {"kind": "completed", "key": "k", "result": {"total_cycles": 1}}
            )
        with open(BrokerJournal(tmp_path).path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "assi')  # killed mid-append: no newline
        with pytest.warns(JournalWarning, match="torn tail"):
            states = BrokerJournal(tmp_path).replay()
        assert states["k"].result == {"total_cycles": 1}

    def test_mid_file_corruption_raises(self, tmp_path):
        with BrokerJournal(tmp_path) as journal:
            journal.append({"kind": "assigned", "key": "k", "worker": "w"})
        path = BrokerJournal(tmp_path).path
        lines = path.read_text().splitlines(keepends=True)
        path.write_text(lines[0] + "not json\n" + lines[1])
        with pytest.raises(JournalError, match="corrupt at line 2"):
            BrokerJournal(tmp_path).replay()

    def test_foreign_header_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"format": "someone-elses-log", "version": 1}\n')
        with pytest.raises(JournalError, match="not a wisync-broker-journal"):
            BrokerJournal(tmp_path).replay()

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"format": "wisync-broker-journal", "version": 99}\n')
        with pytest.raises(JournalError, match="version 99"):
            BrokerJournal(tmp_path).replay()

    def test_unknown_kind_warns_and_is_skipped(self, tmp_path):
        with BrokerJournal(tmp_path) as journal:
            journal.append({"kind": "teleported", "key": "k"})
            journal.append({"kind": "assigned", "key": "k", "worker": "w"})
        with pytest.warns(JournalWarning, match="unrecognized"):
            states = BrokerJournal(tmp_path).replay()
        assert states["k"].attempts == 1

    def test_reopening_appends_without_a_second_header(self, tmp_path):
        with BrokerJournal(tmp_path) as journal:
            journal.append({"kind": "assigned", "key": "k", "worker": "w"})
        with BrokerJournal(tmp_path) as journal:
            journal.append({"kind": "released", "key": "k"})
        lines = BrokerJournal(tmp_path).path.read_text().splitlines()
        assert len(lines) == 3  # header + two records
        assert BrokerJournal(tmp_path).replay()["k"].attempts == 0


_KEYS = ("k-a", "k-b", "k-c")

_RECORDS = st.sampled_from(_KEYS).flatmap(lambda key: st.one_of(
    st.just({"kind": "assigned", "key": key, "worker": "w1"}),
    st.just({"kind": "assigned", "key": key, "worker": "w2"}),
    st.just({"kind": "released", "key": key}),
    st.just({"kind": "excluded", "key": key, "worker": "w1", "reason": "boom"}),
    st.just({"kind": "checkpointed", "key": key, "snapshot": {"events": 10}}),
    st.just({"kind": "completed", "key": key, "result": {"total_cycles": 1}}),
    st.just({"kind": "failed", "key": key, "reasons": ["x"]}),
))


def _write_journal(directory, records):
    with BrokerJournal(directory) as journal:
        for record in records:
            journal.append(record)


class TestReplayProperties:
    @given(records=st.lists(_RECORDS, max_size=25))
    @settings(max_examples=25, deadline=None)
    def test_replay_is_a_pure_idempotent_function_of_the_file(self, records):
        with tempfile.TemporaryDirectory() as directory:
            _write_journal(directory, records)
            first = BrokerJournal(directory).replay()
            second = BrokerJournal(directory).replay()
        assert first == second
        for state in first.values():
            assert isinstance(state, TaskReplay)
            assert state.attempts >= 0
            assert 0 <= state.settled_attempts() <= state.attempts
            if state.result is not None or state.failed:
                assert not state.leased  # terminal tasks hold no lease

    @given(records=st.lists(_RECORDS, min_size=1, max_size=10), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_any_torn_tail_costs_exactly_the_last_record(self, records, data):
        # For every journal and every truncation point inside the last
        # record, replay must warn and produce exactly the state of the
        # journal without that record — no more, no less.
        with tempfile.TemporaryDirectory() as reference:
            _write_journal(reference, records[:-1])
            expected = BrokerJournal(reference).replay()
        with tempfile.TemporaryDirectory() as directory:
            _write_journal(directory, records)
            path = BrokerJournal(directory).path
            raw = path.read_text(encoding="utf-8")
            lines = raw.splitlines(keepends=True)
            last = lines[-1]
            # Cut at least the newline plus one byte of the record: any
            # proper prefix of a serialized JSON object is invalid JSON.
            cut = data.draw(st.integers(min_value=2, max_value=len(last) - 1))
            path.write_text("".join(lines[:-1]) + last[:-cut], encoding="utf-8")
            with pytest.warns(JournalWarning, match="torn tail"):
                got = BrokerJournal(directory).replay()
        assert got == expected


class TestBrokerRestartRecovery:
    def _worker(self, port, *extra):
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--connect", f"127.0.0.1:{port}", *extra],
            env={"PYTHONPATH": SRC},
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )

    def test_restart_reemits_completed_specs_without_rerunning(self, tmp_path):
        # Phase 1: a --max-tasks 1 worker completes exactly one spec, then
        # the broker "dies" (close() drops its sockets; the journal is what
        # survives, exactly as under SIGKILL — fsync'd per record).
        specs = [tightloop_spec(8), tightloop_spec(16), tightloop_spec(4, 50)]
        payloads = [spec.to_dict() for spec in specs]
        first = Broker(
            payloads, journal_dir=str(tmp_path), lease_seconds=10.0
        ).start()
        try:
            proc = self._worker(first.port, "--max-tasks", "1")
            stream = first.events()
            kind, done_position, done_result = next(stream)
            assert kind == "result"
            proc.wait(timeout=30)
        finally:
            first.close()

        # Phase 2: a fresh broker on the same journal replays the completed
        # spec (re-emitted, not re-run) and serves only the remaining two.
        second = Broker(payloads, journal_dir=str(tmp_path), lease_seconds=10.0)
        assert second.stats["replayed"] == 1
        assert second.outstanding() == 2
        second.start()
        try:
            drainer = self._worker(second.port)
            collected = {}
            for kind, position, payload in second.events():
                assert kind == "result"
                collected[position] = payload
            drainer.wait(timeout=30)
        finally:
            second.close()

        assert sorted(collected) == [0, 1, 2]
        # Zero re-runs of the completed spec: only two fresh assignments.
        assert second.stats["assigned"] == 2
        serial = SerialExecutor().run(specs)
        for position, result in collected.items():
            assert result.total_cycles == serial[position].total_cycles
            assert result.events_processed == serial[position].events_processed
            assert result.stats.to_dict() == serial[position].stats.to_dict()
        assert collected[done_position].total_cycles == done_result.total_cycles

    def test_restart_tolerates_a_torn_tail(self, tmp_path):
        specs = [tightloop_spec(8), tightloop_spec(16)]
        payloads = [spec.to_dict() for spec in specs]
        first = Broker(
            payloads, journal_dir=str(tmp_path), lease_seconds=10.0
        ).start()
        try:
            proc = self._worker(first.port, "--max-tasks", "1")
            kind, _, _ = next(first.events())
            assert kind == "result"
            proc.wait(timeout=30)
        finally:
            first.close()
        journal_path = BrokerJournal(tmp_path).path
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "assigned", "key": ')  # died mid-append
        with pytest.warns(JournalWarning, match="torn tail"):
            second = Broker(
                payloads, journal_dir=str(tmp_path), lease_seconds=10.0
            )
        assert second.stats["replayed"] == 1
        assert second.outstanding() == 1

    def test_replaying_twice_is_idempotent_at_the_broker_too(self, tmp_path):
        specs = [tightloop_spec(8)]
        payloads = [spec.to_dict() for spec in specs]
        first = Broker(
            payloads, journal_dir=str(tmp_path), lease_seconds=10.0
        ).start()
        try:
            proc = self._worker(first.port)
            assert next(first.events())[0] == "result"
            proc.wait(timeout=30)
        finally:
            first.close()
        for _ in range(2):  # construct-from-journal twice: same state
            broker = Broker(payloads, journal_dir=str(tmp_path))
            assert broker.stats["replayed"] == 1
            assert broker.outstanding() == 0


class TestRestartRecoveryProperty:
    @given(data=st.data())
    @settings(
        max_examples=3, deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_random_grid_random_kill_point_recovers_bit_identical(self, data):
        # The satellite's acceptance property: for a random tightloop grid
        # and a random kill point, kill-broker -> restart-with-journal ->
        # rejoin yields results bit-identical to serial, and the surviving
        # journal replays idempotently.
        grid = data.draw(st.lists(
            st.tuples(st.sampled_from([20, 60, 120]), st.sampled_from([8, 16])),
            min_size=2, max_size=4, unique=True,
        ))
        kill_at = data.draw(st.floats(min_value=0.05, max_value=1.2))
        specs = [
            tightloop_spec(num_cores, iterations)
            for iterations, num_cores in grid
        ]
        schedule = ChaosSchedule(
            seed=0, kills=(KillEvent(target="broker", at=kill_at),)
        )
        with tempfile.TemporaryDirectory() as journal_dir:
            report = run_embedded_drill(
                specs, schedule, journal_dir,
                pool=2, lease_seconds=10.0, timeout=120.0,
            )
            journal = BrokerJournal(journal_dir)
            if journal.exists():
                assert journal.replay() == journal.replay()
        problems = verify_against_serial(specs, report)
        assert problems == [], f"kill@{kill_at:.2f}s: {problems}"
