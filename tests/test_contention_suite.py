"""Tests for the contention-scenario suite and its sweep/CLI plumbing."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.experiments.scenarios import (
    CONTENTION_LEVELS,
    WIRELESS_CONFIGS,
    contention_params,
    run_scenarios,
    scenario_sweep,
)
from repro.machine.configs import baseline, baseline_plus, wisync, wisync_not
from repro.machine.manycore import Manycore
from repro.runner.executor import backoff_variant, build_config_for, execute_spec
from repro.runner.registry import REGISTRY
from repro.runner.spec import RunSpec
from repro.sync.api import SyncFactory
from repro.sync.rwlock import WRITER_HELD
from repro.workloads.contention_suite import SCENARIOS, scenario_info, scenario_names

CONFIG_BUILDERS = {
    "Baseline": baseline,
    "Baseline+": baseline_plus,
    "WiSyncNoT": wisync_not,
    "WiSync": wisync,
}


# ---------------------------------------------------------------------------
# The scenarios themselves
# ---------------------------------------------------------------------------
class TestScenarioWorkloads:
    def test_catalog_matches_registry(self):
        assert len(SCENARIOS) >= 5
        for name in scenario_names():
            assert name in REGISTRY
            info = scenario_info(name)
            assert info.summary and info.example
            assert "num_threads" in info.knobs_dict()

    def test_unknown_scenario_raises(self):
        with pytest.raises(WorkloadError, match="unknown scenario"):
            scenario_info("does-not-exist")

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("config", sorted(CONFIG_BUILDERS))
    def test_runs_to_completion_on_every_config(self, scenario, config):
        machine = Manycore(CONFIG_BUILDERS[config](num_cores=8))
        handle = REGISTRY.build(machine, scenario, {})
        result = handle.run(max_cycles=2_000_000)
        assert result.completed, f"{scenario} truncated on {config}"
        assert result.finished_threads == handle.num_threads

    @pytest.mark.parametrize("cores", [1, 3, 8])
    def test_odd_and_single_core_counts(self, cores):
        # Ring wrap-around, unpaired pipeline threads, and self-channels are
        # the deadlock-prone edges.
        for scenario in ("pc_ring", "mixed_phases", "work_steal"):
            machine = Manycore(wisync_not(num_cores=cores))
            result = REGISTRY.build(machine, scenario, {}).run(max_cycles=2_000_000)
            assert result.completed, (scenario, cores)

    def test_pc_ring_checksum(self):
        machine = Manycore(wisync(num_cores=4))
        handle = REGISTRY.build(machine, "pc_ring", {"items": 5})
        result = handle.run()
        # Every thread consumes exactly `items` payloads whose fourth word is
        # item+1, so each per-thread checksum is 1+2+...+items.
        assert result.thread_results == [15, 15, 15, 15]

    def test_work_steal_conserves_tasks(self):
        machine = Manycore(wisync(num_cores=8))
        handle = REGISTRY.build(
            machine, "work_steal", {"tasks_per_thread": 4, "seed_stride": 4}
        )
        result = handle.run()
        assert result.completed
        # Only threads 0 and 4 are seeded (4*4 tasks each); every task is
        # processed exactly once, wherever it was stolen to.
        assert sum(result.thread_results) == handle.metadata["total_tasks"] == 32

    def test_work_steal_stealing_happens_under_skew(self):
        machine = Manycore(wisync(num_cores=8))
        handle = REGISTRY.build(
            machine, "work_steal", {"tasks_per_thread": 4, "seed_stride": 8}
        )
        result = handle.run()
        # All work starts on thread 0; with 8 threads and 32 tasks somebody
        # other than thread 0 must end up processing some of it.
        assert sum(result.thread_results[1:]) > 0

    def test_rwlock_operation_counts(self):
        machine = Manycore(baseline(num_cores=6))
        handle = REGISTRY.build(
            machine, "rwlock", {"operations": 7, "write_fraction": 0.5}
        )
        result = handle.run()
        for reads, writes in result.thread_results:
            assert reads + writes == 7

    def test_rwlock_pure_modes(self):
        for fraction in (0.0, 1.0):
            machine = Manycore(wisync(num_cores=4))
            handle = REGISTRY.build(
                machine, "rwlock", {"operations": 3, "write_fraction": fraction}
            )
            assert handle.run().completed

    def test_knob_validation(self):
        machine = Manycore(wisync(num_cores=4))
        with pytest.raises(WorkloadError):
            REGISTRY.build(machine, "pc_ring", {"items": 0})
        with pytest.raises(WorkloadError):
            REGISTRY.build(machine, "rwlock", {"write_fraction": 1.5})
        with pytest.raises(WorkloadError):
            REGISTRY.build(machine, "work_steal", {"seed_stride": 0})
        with pytest.raises(WorkloadError):
            REGISTRY.build(machine, "barrier_storm", {"phases": 0})

    def test_deterministic_across_runs(self):
        spec = RunSpec(
            workload="mixed_phases", params=(("phases", 4),),
            config="WiSync", num_cores=8,
        )
        first, second = execute_spec(spec), execute_spec(spec)
        assert first.total_cycles == second.total_cycles
        assert first.stats.to_dict() == second.stats.to_dict()


# ---------------------------------------------------------------------------
# The rwlock primitive
# ---------------------------------------------------------------------------
class TestReadersWriterLock:
    def _run_threads(self, config, body_factory, num_threads):
        machine = Manycore(config(num_cores=num_threads))
        program = machine.new_program("rwlock-test")
        sync = SyncFactory(program)
        rwlock = sync.create_rwlock()
        trace = []
        for _ in range(num_threads):
            program.add_thread(body_factory(rwlock, trace))
        result = machine.run()
        assert result.completed
        return trace

    @pytest.mark.parametrize("config", [baseline, wisync])
    def test_writers_are_mutually_exclusive(self, config):
        from repro.isa.operations import Compute

        depth = {"value": 0}

        def factory(rwlock, trace):
            def body(ctx):
                for _ in range(3):
                    yield from rwlock.acquire_write(ctx)
                    depth["value"] += 1
                    trace.append(depth["value"])
                    yield Compute(20)
                    depth["value"] -= 1
                    yield from rwlock.release_write(ctx)
            return body

        trace = self._run_threads(config, factory, 4)
        assert len(trace) == 12
        assert set(trace) == {1}, "two writers overlapped"

    @pytest.mark.parametrize("config", [baseline, wisync])
    def test_readers_overlap_but_exclude_writers(self, config):
        from repro.isa.operations import Compute

        state = {"readers": 0, "writers": 0, "max_readers": 0}

        def factory(rwlock, trace):
            def body(ctx):
                if ctx.thread_id == 0:
                    yield from rwlock.acquire_write(ctx)
                    state["writers"] += 1
                    trace.append(("w", state["readers"], state["writers"]))
                    yield Compute(30)
                    state["writers"] -= 1
                    yield from rwlock.release_write(ctx)
                else:
                    yield from rwlock.acquire_read(ctx)
                    state["readers"] += 1
                    state["max_readers"] = max(state["max_readers"], state["readers"])
                    trace.append(("r", state["readers"], state["writers"]))
                    # Hold long enough that reader sections overlap even with
                    # the Baseline's coherence-serialized CAS acquisitions.
                    yield Compute(500)
                    state["readers"] -= 1
                    yield from rwlock.release_read(ctx)
            return body

        trace = self._run_threads(config, factory, 6)
        for kind, readers, writers in trace:
            if kind == "w":
                assert readers == 0, "writer entered with readers inside"
            else:
                assert writers == 0, "reader entered with a writer inside"
        assert state["max_readers"] > 1, "readers never overlapped"

    def test_writer_sentinel_headroom(self):
        # The sentinel must dwarf any plausible reader count.
        assert WRITER_HELD > 1 << 20


# ---------------------------------------------------------------------------
# The sweep builder
# ---------------------------------------------------------------------------
class TestScenarioSweep:
    def test_every_level_covers_every_scenario(self):
        for level, presets in CONTENTION_LEVELS.items():
            assert sorted(presets) == scenario_names(), level

    def test_unknown_level_and_scenario_raise(self):
        with pytest.raises(ConfigurationError, match="contention level"):
            contention_params("pc_ring", "extreme")
        with pytest.raises(ConfigurationError, match="preset"):
            contention_params("nope", "low")

    def test_empty_axis_raises_clean_error(self):
        # `--backoffs ,` on the CLI parses to an empty list; that must be a
        # ConfigurationError (exit 2), not an IndexError or an empty sweep.
        with pytest.raises(ConfigurationError, match="backoffs"):
            scenario_sweep(backoffs=[])
        with pytest.raises(ConfigurationError, match="scenarios"):
            scenario_sweep(scenarios=[])
        with pytest.raises(ConfigurationError, match="configs"):
            run_scenarios(configs=[])

    def test_backoff_axis_only_on_wireless_configs(self):
        sweep = scenario_sweep(
            scenarios=["barrier_storm"], core_counts=[8],
            configs=["Baseline", "WiSync"], contention=["high"],
            backoffs=["broadcast_aware", "exponential"],
        )
        by_config = {}
        for spec in sweep:
            by_config.setdefault(spec.config, []).append(spec.variant)
        assert by_config["Baseline"] == [None]
        assert by_config["WiSync"] == [None, "backoff=exponential"]

    def test_grid_has_no_duplicates(self):
        # SweepSpec would raise on duplicates; the full default grid builds.
        sweep = scenario_sweep(backoffs=["broadcast_aware", "exponential", "fixed"])
        assert len(sweep) == len(set(sweep.specs))

    def test_backoff_variant_changes_machine_config(self):
        spec = RunSpec(
            workload="barrier_storm", config="WiSync", num_cores=8,
            variant=backoff_variant("exponential"),
        )
        config = build_config_for(spec)
        assert config.backoff.kind == "exponential"
        assert "backoff=exponential" in config.name

    def test_unknown_backoff_variant_raises(self):
        spec = RunSpec(
            workload="barrier_storm", config="WiSync", num_cores=8,
            variant=backoff_variant("quadratic"),
        )
        with pytest.raises(ConfigurationError):
            build_config_for(spec)

    def test_backoff_policy_changes_contended_timing(self):
        base = dict(
            workload="barrier_storm",
            params=tuple(contention_params("barrier_storm", "high").items()),
            config="WiSyncNoT", num_cores=16,
        )
        default = execute_spec(RunSpec(**base))
        fixed = execute_spec(RunSpec(**base, variant=backoff_variant("fixed")))
        assert default.total_cycles != fixed.total_cycles

    def test_run_scenarios_table_shape(self):
        table = run_scenarios(
            scenarios=["pc_ring"], core_counts=[8],
            configs=["Baseline", "WiSync"], contention=["low"],
            backoffs=["broadcast_aware", "exponential"],
        )
        assert set(table) == {
            ("pc_ring", "low", 8, "broadcast_aware"),
            ("pc_ring", "low", 8, "exponential"),
        }
        # The MAC-free Baseline is backoff-independent: same result per row.
        rows = list(table.values())
        assert rows[0]["Baseline"] == rows[1]["Baseline"]
        for row in rows:
            assert set(row) == {"Baseline", "WiSync"}


# ---------------------------------------------------------------------------
# CLI + profile integration
# ---------------------------------------------------------------------------
class TestScenarioCli:
    def _repro(self, *argv):
        env = {"PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src")}
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True, text=True, env=env,
        )

    def test_scenarios_listing(self):
        proc = self._repro("scenarios", "--json")
        assert proc.returncode == 0, proc.stderr
        catalog = json.loads(proc.stdout)
        assert set(catalog) == set(scenario_names())
        for entry in catalog.values():
            assert {"summary", "knobs", "example"} <= set(entry)

    def test_run_scenarios_streams_progress(self):
        proc = self._repro(
            "run", "scenarios", "--cores", "8", "--configs", "WiSync",
            "--contention", "high", "--progress", "--quiet",
        )
        assert proc.returncode == 0, proc.stderr
        progress_lines = [
            line for line in proc.stderr.splitlines() if line.startswith("[")
        ]
        # One line per grid point: 5 scenarios x 1 config x 1 level.
        assert len(progress_lines) == 5
        assert all("(simulated)" in line for line in progress_lines)
        covered = {line.split("] ", 1)[1].split("[", 1)[0] for line in progress_lines}
        assert covered == set(scenario_names())

    def test_run_scenarios_progress_reports_cache_hits(self, tmp_path):
        cache = str(tmp_path / "cache")
        args = (
            "run", "scenarios", "--cores", "8", "--configs", "WiSync",
            "--scenarios", "barrier_storm", "--contention", "low",
            "--cache", cache, "--progress", "--quiet",
        )
        first = self._repro(*args)
        assert first.returncode == 0, first.stderr
        assert "(simulated)" in first.stderr
        second = self._repro(*args)
        assert second.returncode == 0, second.stderr
        assert "(cached)" in second.stderr
        assert "(simulated)" not in second.stderr

    def test_profile_scenarios_quick(self):
        from repro.runner.profile import run_profile

        record = run_profile("scenarios", quick=True, repeats=1)
        assert record["experiment"] == "scenarios"
        assert record["grid_points"] == 3
        assert record["events"] > 0
        assert record["events_per_sec"] > 0
