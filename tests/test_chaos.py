"""Chaos drills, worker supervision, deadlines, and broker-redial tests.

The chaos sections execute seeded fault schedules (broker SIGKILL-equivalent
restarts, worker SIGKILLs) against a live journaled sweep and hold the
fabric to the one invariant that matters: results bit-identical to a serial
run.  ``REPRO_CHAOS_SCHEDULES`` scales the number of seeded schedules (CI
sets 25; the tier-1 default stays small), and ``REPRO_CHAOS_FULL=1`` enables
the heavyweight subprocess drill — real SIGKILLs against a real ``repro run
--bind --journal`` sweep host, relaunched with ``--resume``.
"""

import json
import os
import random
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.errors import ConfigurationError, PartialSweepError
from repro.runner import (
    Broker,
    DistributedExecutor,
    RunSpec,
    SerialExecutor,
    WorkerSupervisor,
    backoff_delays,
)
from repro.runner.chaos import (
    ChaosSchedule,
    KillEvent,
    results_identical,
    run_embedded_drill,
    run_subprocess_drill,
    verify_against_serial,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Seeded schedules per chaos test; CI raises this to 25.
CHAOS_SCHEDULES = int(os.environ.get("REPRO_CHAOS_SCHEDULES", "3"))


def tightloop_spec(num_cores=8, iterations=2):
    return RunSpec(
        workload="tightloop", params={"iterations": iterations},
        config="WiSync", num_cores=num_cores,
    )


def drill_grid():
    return [
        tightloop_spec(num_cores, iterations)
        for iterations in (60, 120)
        for num_cores in (8, 16)
    ]


class TestChaosSchedule:
    def test_same_seed_same_schedule(self):
        assert ChaosSchedule.generate(7) == ChaosSchedule.generate(7)

    def test_one_kill_per_requested_target(self):
        schedule = ChaosSchedule.generate(0, targets=("broker", "worker"))
        assert sorted(kill.target for kill in schedule.kills) == [
            "broker", "worker",
        ]

    def test_unknown_target_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown chaos kill"):
            ChaosSchedule.generate(0, targets=("rack",))

    def test_describe_names_the_seed_and_kills(self):
        text = ChaosSchedule.generate(3).describe()
        assert "seed 3" in text
        assert "broker@" in text


class TestEmbeddedDrill:
    @pytest.mark.parametrize("seed", range(CHAOS_SCHEDULES))
    def test_seeded_schedule_is_bit_identical_to_serial(self, seed, tmp_path):
        specs = drill_grid()
        schedule = ChaosSchedule.generate(
            seed, targets=("broker", "worker"), window=(0.2, 1.5), workers=2
        )
        report = run_embedded_drill(
            specs, schedule, tmp_path / "journal",
            pool=2, lease_seconds=10.0, checkpoint_every=2000, timeout=120.0,
        )
        problems = verify_against_serial(specs, report)
        assert problems == [], f"{schedule.describe()}: {problems}"
        assert report.all_completed(len(specs))

    def test_results_identical_rejects_cycle_divergence(self):
        mine, theirs = SerialExecutor().run(
            [tightloop_spec(8), tightloop_spec(16)]
        )
        assert results_identical(mine, mine)
        assert not results_identical(mine, theirs)


@pytest.mark.skipif(
    not os.environ.get("REPRO_CHAOS_FULL"),
    reason="set REPRO_CHAOS_FULL=1 for the subprocess SIGKILL drill",
)
class TestSubprocessDrill:
    def test_repro_chaos_seed0_survives_broker_and_worker_kills(self, tmp_path):
        messages = []
        code = run_subprocess_drill(
            experiment="fig7", seed=0, kills=("broker", "worker"),
            workers=2, work_dir=tmp_path, timeout=600.0,
            echo=messages.append,
        )
        assert code == 0, "\n".join(messages)


class TestWorkerSupervisor:
    def test_killed_worker_is_respawned_and_the_sweep_completes(self):
        specs = drill_grid()
        broker = Broker(
            [spec.to_dict() for spec in specs], lease_seconds=10.0
        ).start()
        supervisor = WorkerSupervisor(
            "127.0.0.1", broker.port, 1,
            heartbeat=0.2, backoff_base=0.1, backoff_cap=0.5,
        )
        try:
            deadline = time.monotonic() + 30
            while broker.stats["assigned"] == 0:
                assert time.monotonic() < deadline, "task never assigned"
                time.sleep(0.02)
            supervisor.kill(0)  # SIGKILL mid-lease; the supervisor recovers
            collected = {
                position: payload
                for kind, position, payload in broker.events()
                if kind == "result"
            }
        finally:
            supervisor.close()
            broker.close()
        assert supervisor.respawns >= 1
        serial = SerialExecutor().run(specs)
        assert sorted(collected) == list(range(len(specs)))
        for position, result in collected.items():
            assert results_identical(result, serial[position])

    def test_circuit_breaker_parks_a_flapping_slot(self):
        # exit-on-task dies seconds after every spawn; after max_rapid_failures
        # consecutive rapid deaths the breaker opens instead of burning the
        # sweep's attempt budget with doomed respawns.
        broker = Broker(
            [tightloop_spec(4).to_dict()], lease_seconds=5.0
        ).start()
        supervisor = WorkerSupervisor(
            "127.0.0.1", broker.port, 1,
            faults=["exit-on-task"], respawn_faulted=True,
            max_rapid_failures=2, backoff_base=0.1, backoff_cap=0.2,
        )
        try:
            deadline = time.monotonic() + 30
            while not supervisor.sick():
                assert time.monotonic() < deadline, "breaker never opened"
                time.sleep(0.05)
            assert supervisor.respawns >= 1
            while not supervisor.gave_up():
                assert time.monotonic() < deadline, "sick slot still pending"
                time.sleep(0.05)
        finally:
            supervisor.close()
            broker.close()

    def test_faulted_slot_stays_dead_by_default(self):
        # Fault-injection tests rely on a killed worker *staying* dead;
        # respawning is opt-in (respawn_faulted / `repro workers --fault`).
        broker = Broker(
            [tightloop_spec(4).to_dict()], lease_seconds=5.0
        ).start()
        supervisor = WorkerSupervisor(
            "127.0.0.1", broker.port, 1, faults=["exit-on-task"]
        )
        try:
            deadline = time.monotonic() + 30
            while not supervisor.gave_up():
                assert time.monotonic() < deadline, "corpse never abandoned"
                time.sleep(0.05)
            assert supervisor.respawns == 0
            assert not supervisor.sick()
        finally:
            supervisor.close()
            broker.close()

    def test_pool_requires_at_least_one_worker(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            WorkerSupervisor("127.0.0.1", 1, 0)


class TestBackoff:
    def test_delays_jitter_double_and_cap(self):
        delays = backoff_delays(0.1, 0.4, rng=random.Random(7))
        values = [next(delays) for _ in range(8)]
        assert all(value > 0 for value in values)
        # Jitter is at most 1.5x the capped base delay.
        assert max(values) <= 0.4 * 1.5
        # The underlying schedule doubles: late delays dwarf the first.
        assert max(values[3:]) > values[0]

    def test_rejects_non_positive_base_or_cap(self):
        with pytest.raises(ConfigurationError, match="positive"):
            backoff_delays(0.0, 1.0)
        with pytest.raises(ConfigurationError, match="positive"):
            backoff_delays(0.5, -1.0)


class TestDeadlines:
    def _slow_spec(self):
        return tightloop_spec(16, iterations=2000)  # ~2-3s of wall clock

    def test_serial_spec_deadline_degrades_gracefully(self):
        fast, slow = tightloop_spec(8), self._slow_spec()
        executor = SerialExecutor(checkpoint_every=1000, spec_deadline=0.4)
        received = {}
        with pytest.raises(PartialSweepError) as excinfo:
            for position, result in executor.run_iter([fast, slow]):
                received[position] = result
        assert sorted(received) == [0]  # the fast spec's result survived
        assert [spec for spec, _ in excinfo.value.timed_out] == [slow]
        assert "degraded gracefully" in str(excinfo.value)
        assert "deadline exceeded" in excinfo.value.timed_out[0][1]

    def test_serial_sweep_budget_skips_the_remainder(self):
        fast, slow, tail = tightloop_spec(8), self._slow_spec(), tightloop_spec(4)
        executor = SerialExecutor(checkpoint_every=1000, sweep_deadline=0.4)
        received = {}
        with pytest.raises(PartialSweepError) as excinfo:
            for position, result in executor.run_iter([fast, slow, tail]):
                received[position] = result
        assert sorted(received) == [0]
        timed_out = excinfo.value.timed_out
        assert [spec for spec, _ in timed_out] == [slow, tail]
        assert all("budget exhausted" in reason for _, reason in timed_out)

    def test_serial_preemption_persists_a_resume_checkpoint(self, tmp_path):
        from repro.snapshot import checkpoint_path

        slow = self._slow_spec()
        executor = SerialExecutor(
            checkpoint_every=1000, spec_deadline=0.3,
            checkpoint_dir=str(tmp_path),
        )
        with pytest.raises(PartialSweepError):
            list(executor.run_iter([slow]))
        assert Path(checkpoint_path(str(tmp_path), slow)).exists()

    def test_serial_rejects_non_positive_deadlines(self):
        with pytest.raises(ConfigurationError, match="spec_deadline"):
            SerialExecutor(spec_deadline=0.0)
        with pytest.raises(ConfigurationError, match="sweep_deadline"):
            SerialExecutor(sweep_deadline=-1.0)

    def test_distributed_spec_deadline_degrades_gracefully(self):
        fast, slow = tightloop_spec(8), self._slow_spec()
        executor = DistributedExecutor(
            workers=1, lease_seconds=10.0, heartbeat=0.2, spec_deadline=0.5
        )
        received = {}
        with pytest.raises(PartialSweepError) as excinfo:
            for position, result in executor.run_iter([fast, slow]):
                received[position] = result
        assert 0 in received
        assert slow in [spec for spec, _ in excinfo.value.timed_out]
        assert executor.last_stats["timed_out"] >= 1
        assert executor.last_stats["completed"] >= 1

    def test_distributed_sweep_budget_fails_all_pending(self):
        specs = [tightloop_spec(8), self._slow_spec(),
                 tightloop_spec(4, iterations=2000)]
        executor = DistributedExecutor(
            workers=1, lease_seconds=10.0, heartbeat=0.2, sweep_deadline=0.6
        )
        received = {}
        with pytest.raises(PartialSweepError) as excinfo:
            for position, result in executor.run_iter(specs):
                received[position] = result
        assert 0 in received
        assert len(excinfo.value.timed_out) >= 1
        assert executor.last_stats["timed_out"] >= 1


class TestWorkerRedial:
    def test_idle_worker_rejoins_a_restarted_broker(self):
        # Satellite (b): a worker that loses the broker while *idle* must
        # redial first, not treat the EOF as a drained sweep.  A scripted
        # two-incarnation broker makes the sequence deterministic: the first
        # incarnation dies mid-idle, the second serves a real task.
        from repro.runner.distributed import run_worker

        server = socket.create_server(("127.0.0.1", 0))
        port = server.getsockname()[1]
        spec_payload = tightloop_spec(4).to_dict()
        box = {}

        def broker_script():
            # Incarnation 1: handshake, one idle round, then die at idle.
            conn, _ = server.accept()
            reader = conn.makefile("r", encoding="utf-8")
            box["hello"] = json.loads(reader.readline())
            conn.sendall(b'{"type": "welcome", "lease_seconds": 10.0}\n')
            json.loads(reader.readline())  # next
            conn.sendall(b'{"type": "idle", "delay": 0.05}\n')
            json.loads(reader.readline())  # next
            # shutdown() before close(): the makefile reader holds a dup'd
            # FD, so close() alone would not deliver the EOF a dead broker's
            # kernel sends.
            conn.shutdown(socket.SHUT_RDWR)
            conn.close()  # SIGKILL'd broker reads as a clean EOF at idle
            # Incarnation 2: the worker redials the same address; serve a
            # real task, collect its result, then drain the worker.
            conn, _ = server.accept()
            reader = conn.makefile("r", encoding="utf-8")
            box["rejoin_hello"] = json.loads(reader.readline())
            conn.sendall(b'{"type": "welcome", "lease_seconds": 10.0}\n')
            json.loads(reader.readline())  # next
            conn.sendall((json.dumps({
                "type": "task", "task": 0, "payload": spec_payload,
            }) + "\n").encode("utf-8"))
            while True:  # skip heartbeats until the result lands
                message = json.loads(reader.readline())
                if message.get("type") == "result":
                    box["result"] = message
                    break
            json.loads(reader.readline())  # next
            conn.sendall(b'{"type": "drain"}\n')
            conn.close()

        script = threading.Thread(target=broker_script, daemon=True)
        script.start()
        try:
            completed = run_worker(
                "127.0.0.1", port, heartbeat=5.0, redial=10.0
            )
        finally:
            server.close()
        script.join(timeout=10)
        assert not script.is_alive(), "broker script never saw the rejoin"
        assert completed == 1
        assert box["result"]["task"] == 0
        # Same worker name across redials: broker-side exclusions persist.
        assert box["rejoin_hello"]["worker"] == box["hello"]["worker"]

    def test_idle_broker_loss_without_redial_stays_a_clean_drain(self):
        from repro.runner.distributed import run_worker

        server = socket.create_server(("127.0.0.1", 0))
        port = server.getsockname()[1]

        def broker_script():
            conn, _ = server.accept()
            reader = conn.makefile("r", encoding="utf-8")
            json.loads(reader.readline())  # hello
            conn.sendall(b'{"type": "welcome", "lease_seconds": 10.0}\n')
            json.loads(reader.readline())  # next
            conn.shutdown(socket.SHUT_RDWR)
            conn.close()

        script = threading.Thread(target=broker_script, daemon=True)
        script.start()
        try:
            completed = run_worker("127.0.0.1", port, heartbeat=5.0)
        finally:
            server.close()
        assert completed == 0  # drained, no error: nothing was lost


class TestCliSurface:
    def _repro(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True, text=True, env={"PYTHONPATH": SRC},
        )

    def test_parser_accepts_chaos_and_workers_commands(self):
        from repro.runner.cli import build_parser

        args = build_parser().parse_args(
            ["chaos", "fig7", "--seed", "3", "--kills", "broker,worker"]
        )
        assert args.command == "chaos"
        assert args.seed == 3
        assert args.kills == ["broker", "worker"]
        args = build_parser().parse_args(
            ["workers", "--connect", "sweephost:7787", "--pool", "4"]
        )
        assert args.command == "workers"
        assert args.pool == 4

    def test_journal_requires_a_broker(self):
        proc = self._repro("run", "fig7", "--cores", "8", "--journal")
        assert proc.returncode == 2
        assert "--journal" in proc.stderr
        assert "--distributed" in proc.stderr

    def test_journal_requires_a_run_directory(self):
        proc = self._repro(
            "run", "fig7", "--cores", "8", "--distributed", "2",
            "--journal", "--no-manifest",
        )
        assert proc.returncode == 2
        assert "--no-manifest" in proc.stderr

    def test_deadlines_not_supported_with_parallel(self):
        proc = self._repro(
            "run", "fig7", "--cores", "8", "--parallel", "2",
            "--spec-deadline", "1.0",
        )
        assert proc.returncode == 2
        assert "--spec-deadline" in proc.stderr
