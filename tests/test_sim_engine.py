"""Tests for the discrete-event engine, RNG, statistics, and tracing."""

import pytest

from repro.errors import AnalysisError, SimulationError
from repro.sim.engine import Simulator
from repro.sim.process import SimProcess, Timeout, WaitCondition
from repro.sim.rng import DeterministicRng
from repro.sim.stats import (
    Counter,
    Histogram,
    StatsRegistry,
    UtilizationTracker,
    arithmetic_mean,
    geometric_mean,
)
from repro.sim.trace import Tracer


class TestSimulator:
    def test_time_starts_at_zero(self, sim):
        assert sim.now == 0

    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(10, order.append, "b")
        sim.schedule(5, order.append, "a")
        sim.schedule(20, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_cycle_events_fire_in_schedule_order(self, sim):
        order = []
        sim.schedule(5, order.append, 1)
        sim.schedule(5, order.append, 2)
        sim.schedule(5, order.append, 3)
        sim.run()
        assert order == [1, 2, 3]

    def test_priority_orders_within_cycle(self, sim):
        order = []
        sim.schedule(5, order.append, "late", priority=10)
        sim.schedule(5, order.append, "early", priority=0)
        sim.run()
        assert order == ["early", "late"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(5, fired.append, 1)
        event.cancel()
        sim.run()
        assert fired == []

    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(5, fired.append, "early")
        sim.schedule(50, fired.append, "late")
        sim.run(until=10)
        assert fired == ["early"]
        assert sim.now == 10

    def test_run_max_events(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(i + 1, fired.append, i)
        sim.run(max_events=3)
        assert len(fired) == 3

    def test_events_processed_counter(self, sim):
        sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        sim.run()
        assert sim.events_processed == 2

    def test_events_can_schedule_more_events(self, sim):
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 3:
                sim.schedule(1, chain, depth + 1)

        sim.schedule(0, chain, 0)
        sim.run()
        assert seen == [0, 1, 2, 3]
        assert sim.now == 3

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_drain_detects_runaway(self, sim):
        def forever():
            sim.schedule(1, forever)

        sim.schedule(0, forever)
        with pytest.raises(SimulationError):
            sim.drain(max_events=100)

    def test_pending_events_excludes_cancelled(self, sim):
        events = [sim.schedule(5, lambda: None) for _ in range(10)]
        assert sim.pending_events == 10
        for event in events[:4]:
            event.cancel()
        assert sim.pending_events == 6

    def test_double_cancel_counted_once(self, sim):
        event = sim.schedule(5, lambda: None)
        keeper = sim.schedule(6, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending_events == 1
        sim.run()
        assert sim.events_processed == 1
        assert keeper.cancelled is False

    def test_cancel_after_fire_does_not_corrupt_queue(self, sim):
        fired = []
        event = sim.schedule(1, fired.append, "a")
        sim.schedule(2, fired.append, "b")
        sim.run(max_events=1)
        event.cancel()  # already fired; must not affect accounting
        assert sim.pending_events == 1
        sim.run()
        assert fired == ["a", "b"]

    def test_cancelled_events_are_compacted(self, sim):
        threshold = sim.COMPACT_THRESHOLD
        events = [sim.schedule(10, lambda: None) for _ in range(2 * threshold)]
        for event in events[: threshold + 1]:
            event.cancel()
        # Compaction triggered: cancelled entries physically left the heap.
        assert len(sim._queue) < 2 * threshold
        assert sim.pending_events == threshold - 1
        assert sim._cancelled == 0

    def test_compaction_preserves_fire_order(self, sim):
        threshold = sim.COMPACT_THRESHOLD
        order = []
        keepers = []
        for index in range(2 * threshold):
            event = sim.schedule(index % 7, order.append, index)
            if index % 2:
                keepers.append(index)
            else:
                event.cancel()
        sim.run()
        expected = sorted(keepers, key=lambda i: (i % 7, i))
        assert order == expected

    def test_stop_ends_run_mid_queue(self, sim):
        fired = []
        sim.schedule(1, fired.append, "a")
        sim.schedule(2, lambda: sim.stop())
        sim.schedule(3, fired.append, "late")
        sim.run()
        assert fired == ["a"]
        assert sim.pending_events == 1
        sim.run()  # stop does not persist across runs
        assert fired == ["a", "late"]

    def test_drain_ignores_stop_requests(self, sim):
        fired = []
        sim.schedule(1, fired.append, "a")
        sim.schedule(2, lambda: sim.stop())
        sim.schedule(3, fired.append, "b")
        assert sim.drain() == 3
        assert fired == ["a", "b"]
        assert sim.pending_events == 0

    def test_stop_at_fires_the_boundary_event(self, sim):
        fired = []
        sim.schedule(5, fired.append, 5)
        sim.schedule(10, fired.append, 10)
        sim.schedule(15, fired.append, 15)
        sim.run(stop_at=10)
        # Unlike until=, stop_at lets the event that reaches the bound fire.
        assert fired == [5, 10]
        assert sim.now == 10


class TestSimProcess:
    def test_timeout_advances_time(self, sim):
        log = []

        def proc():
            yield Timeout(5)
            log.append(sim.now)
            yield Timeout(7)
            log.append(sim.now)

        SimProcess(sim, proc(), "p").start()
        sim.run()
        assert log == [5, 12]

    def test_process_result_recorded(self, sim):
        def proc():
            yield Timeout(1)
            return 42

        process = SimProcess(sim, proc(), "p").start()
        sim.run()
        assert process.finished
        assert process.result == 42

    def test_wait_condition_wakes_waiters(self, sim):
        condition = WaitCondition()
        results = []

        def waiter():
            value = yield condition
            results.append((sim.now, value))

        def notifier():
            yield Timeout(9)
            condition.notify("done")

        SimProcess(sim, waiter(), "w").start()
        SimProcess(sim, notifier(), "n").start()
        sim.run()
        assert results == [(9, "done")]

    def test_already_fired_condition_resumes_immediately(self, sim):
        condition = WaitCondition()
        condition.notify("early")
        results = []

        def waiter():
            value = yield condition
            results.append(value)

        SimProcess(sim, waiter(), "w").start()
        sim.run()
        assert results == ["early"]

    def test_integer_yield_is_a_timeout(self, sim):
        times = []

        def proc():
            yield 3
            times.append(sim.now)

        SimProcess(sim, proc(), "p").start()
        sim.run()
        assert times == [3]

    def test_unsupported_yield_raises(self, sim):
        def proc():
            yield "nonsense"

        SimProcess(sim, proc(), "p").start()
        with pytest.raises(SimulationError):
            sim.run()


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(7, "x")
        b = DeterministicRng(7, "x")
        assert [a.randint(0, 100) for _ in range(20)] == [b.randint(0, 100) for _ in range(20)]

    def test_different_names_differ(self):
        a = DeterministicRng(7, "x")
        b = DeterministicRng(7, "y")
        assert [a.randint(0, 10 ** 9) for _ in range(5)] != [b.randint(0, 10 ** 9) for _ in range(5)]

    def test_child_streams_are_independent_of_creation_order(self):
        parent1 = DeterministicRng(7, "m")
        parent2 = DeterministicRng(7, "m")
        a = parent1.child("a")
        _ = parent1.child("b")
        a2 = parent2.child("a")
        assert a.randint(0, 10 ** 9) == a2.randint(0, 10 ** 9)

    def test_jitter_bounds(self, rng):
        for _ in range(100):
            value = rng.jitter(100, fraction=0.1)
            assert 90 <= value <= 110

    def test_jitter_of_zero_mean(self, rng):
        assert rng.jitter(0) == 0

    def test_shuffle_preserves_elements(self, rng):
        items = list(range(10))
        shuffled = rng.shuffle(items)
        assert sorted(shuffled) == items
        assert items == list(range(10))


class TestStats:
    def test_counter(self):
        counter = Counter("c")
        counter.add()
        counter.add(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0

    def test_histogram_statistics(self):
        histogram = Histogram("h")
        for value in (1, 2, 3, 4):
            histogram.record(value)
        assert histogram.count == 4
        assert histogram.mean == 2.5
        assert histogram.minimum == 1
        assert histogram.maximum == 4
        assert histogram.percentile(0.5) in (2, 3)

    def test_empty_histogram(self):
        histogram = Histogram("h")
        assert histogram.mean == 0.0
        assert histogram.percentile(0.9) == 0.0

    def test_percentile_cache_invalidated_by_record(self):
        histogram = Histogram("h")
        for value in (5, 1, 3):
            histogram.record(value)
        assert histogram.percentile(0.0) == 1
        assert histogram.percentile(1.0) == 5  # served from the cached sort
        histogram.record(0)
        assert histogram.percentile(0.0) == 0  # record() must invalidate
        histogram.record(9)
        assert histogram.percentile(1.0) == 9

    def test_repeated_percentiles_sort_once(self, monkeypatch):
        histogram = Histogram("h")
        for value in range(100):
            histogram.record(value)
        calls = []
        import repro.sim.stats as stats_module
        real_sorted = sorted
        monkeypatch.setattr(
            stats_module, "sorted", lambda it: calls.append(1) or real_sorted(it),
            raising=False,
        )
        for fraction in (0.1, 0.5, 0.9, 0.99):
            histogram.percentile(fraction)
        assert len(calls) == 1

    def test_percentile_survives_direct_sample_extension(self):
        # merge() extends .samples in place; the cached view must not go stale.
        a = Histogram("a")
        b = Histogram("b")
        for value in (1, 2, 3):
            a.record(value)
        assert a.percentile(1.0) == 3
        b.record(10)
        registry_a = StatsRegistry(histograms={"h": a})
        registry_b = StatsRegistry(histograms={"h": b})
        registry_a.merge(registry_b)
        assert registry_a.histogram("h").percentile(1.0) == 10

    def test_utilization_tracker(self):
        tracker = UtilizationTracker("u")
        tracker.add_busy(30)
        tracker.add_busy(20)
        assert tracker.busy_cycles == 50
        assert tracker.utilization(100) == 0.5
        assert tracker.utilization(0) == 0.0

    def test_utilization_rejects_negative(self):
        with pytest.raises(SimulationError):
            UtilizationTracker("u").add_busy(-1)

    def test_registry_creates_and_reuses(self, stats):
        assert stats.counter("a") is stats.counter("a")
        assert stats.histogram("b") is stats.histogram("b")
        assert stats.utilization("c") is stats.utilization("c")

    def test_registry_merge(self):
        a = StatsRegistry()
        b = StatsRegistry()
        a.counter("x").add(2)
        b.counter("x").add(3)
        b.histogram("h").record(1.0)
        a.merge(b)
        assert a.counter_value("x") == 5
        assert a.histogram("h").count == 1

    def test_snapshot_flattens(self, stats):
        stats.counter("n").add(7)
        stats.histogram("h").record(2.0)
        snap = stats.snapshot()
        assert snap["counter/n"] == 7
        assert snap["hist/h/count"] == 1

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(AnalysisError):
            geometric_mean([1.0, 0.0])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1, 2, 3]) == 2.0
        assert arithmetic_mean([]) == 0.0


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.emit(1, "a", "kind")
        assert tracer.records == []

    def test_enabled_tracer_records(self):
        tracer = Tracer(enabled=True)
        tracer.emit(1, "a", "read", "x")
        tracer.emit(2, "b", "write", "y")
        assert len(tracer.records) == 2
        assert tracer.records[0].kind == "read"

    def test_filter_by_kind_and_source(self):
        tracer = Tracer(enabled=True)
        tracer.emit(1, "a", "read")
        tracer.emit(2, "a", "write")
        tracer.emit(3, "b", "read")
        assert len(tracer.filter(kind="read")) == 2
        assert len(tracer.filter(kind="read", source="b")) == 1

    def test_capacity_limit(self):
        tracer = Tracer(enabled=True, capacity=2)
        for i in range(5):
            tracer.emit(i, "a", "k")
        assert len(tracer.records) == 2

    def test_kinds_listing_and_clear(self):
        tracer = Tracer(enabled=True)
        tracer.emit(1, "a", "z")
        tracer.emit(1, "a", "b")
        assert list(tracer.kinds()) == ["b", "z"]
        tracer.clear()
        assert tracer.records == []
