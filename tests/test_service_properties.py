"""Property-based tests (hypothesis) for the sweep service's fair-share
scheduler and the JobStore invariants built on top of it.

Three contracts from the service design:

* **Determinism** — replaying the same submissions and slot requests yields
  the same interleaving, on the bare :class:`FairShareScheduler` and on a
  full :class:`JobStore`.  The service's bit-identity guarantee sits on top
  of this.
* **No starvation** — a job with pending work is served within roughly one
  round of the share weights; passes never drift apart by more than the
  largest stride.
* **Cancellation refunds** — cancelling a job refunds each leased spec
  exactly once, no matter how many specs were in flight, and a second
  cancel is a no-op.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runner import RunSpec, SweepSpec
from repro.runner.executor import execute_spec
from repro.service import STRIDE_SCALE, FairShareScheduler, JobStore, parse_task_id

COMMON_SETTINGS = settings(max_examples=50, deadline=None,
                           suppress_health_check=[HealthCheck.too_slow])

#: Any valid result payload satisfies ``JobStore.complete``; the store never
#: cross-checks it against the spec (the simulator's determinism does that).
_RESULT = execute_spec(
    RunSpec(workload="tightloop", params={"iterations": 2},
            config="Baseline", num_cores=4)
).to_dict()


def unique_spec(tag):
    """Globally unique specs so cross-job coalescing never kicks in."""
    return RunSpec(
        workload="tightloop", params={"iterations": 2 + tag},
        config="WiSync", num_cores=4,
    )


def build_store(job_sizes):
    """One JobStore with ``len(job_sizes)`` jobs of the given spec counts."""
    store = JobStore()
    tag = 0
    for index, (size, priority) in enumerate(job_sizes):
        specs = tuple(unique_spec(tag + offset) for offset in range(size))
        tag += size
        store.submit(
            SweepSpec(name=f"job{index}", specs=specs),
            job_id=f"job-{index}", priority=priority,
        )
    return store


# --------------------------------------------------------------------------
# Scheduler-level properties
# --------------------------------------------------------------------------
priorities = st.integers(min_value=1, max_value=10)

#: A mix of scheduler operations: add a job, charge the current winner, or
#: remove the current winner.  Weighted toward charges so schedules get deep.
ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"), priorities),
        st.tuples(st.just("charge"), st.just(0)),
        st.tuples(st.just("charge"), st.just(0)),
        st.tuples(st.just("remove"), st.just(0)),
    ),
    min_size=1, max_size=60,
)


def replay(op_list):
    """Run an op list against a fresh scheduler; return the winner trace."""
    scheduler = FairShareScheduler()
    jobs = []
    trace = []
    next_id = 0
    for op, arg in op_list:
        if op == "add":
            job_id = f"j{next_id}"
            next_id += 1
            scheduler.add(job_id, priority=arg)
            jobs.append(job_id)
        elif not jobs:
            continue
        else:
            winner = scheduler.order(jobs)[0]
            trace.append(winner)
            if op == "charge":
                scheduler.charge(winner)
            else:
                scheduler.remove(winner)
                jobs.remove(winner)
    return trace


@COMMON_SETTINGS
@given(ops)
def test_scheduler_is_deterministic_under_replay(op_list):
    assert replay(op_list) == replay(op_list)


@COMMON_SETTINGS
@given(st.lists(priorities, min_size=1, max_size=6),
       st.integers(min_value=1, max_value=8))
def test_slots_divide_proportionally_to_priority(job_priorities, rounds):
    # Every job always has work; after k full rounds (one round = sum of
    # priorities slots) each job's slot count is within one slot per
    # competitor of its exact entitlement k * priority.
    scheduler = FairShareScheduler()
    jobs = {}
    for index, priority in enumerate(job_priorities):
        job_id = f"j{index}"
        scheduler.add(job_id, priority=priority)
        jobs[job_id] = priority
    counts = {job_id: 0 for job_id in jobs}
    for _ in range(rounds * sum(job_priorities)):
        winner = scheduler.order(list(jobs))[0]
        counts[winner] += 1
        scheduler.charge(winner)
    slack = len(jobs)
    for job_id, priority in jobs.items():
        entitled = rounds * priority
        assert abs(counts[job_id] - entitled) <= slack


@COMMON_SETTINGS
@given(st.lists(priorities, min_size=2, max_size=6))
def test_no_starvation_within_one_round(job_priorities):
    # Two bounds: (a) pass values never drift apart by more than the largest
    # stride, and (b) the gap between consecutive slots for any job never
    # exceeds its round share (total/priority) plus one slot per competitor.
    scheduler = FairShareScheduler()
    jobs = {}
    for index, priority in enumerate(job_priorities):
        job_id = f"j{index}"
        scheduler.add(job_id, priority=priority)
        jobs[job_id] = priority
    last_seen = {job_id: 0 for job_id in jobs}
    total = sum(job_priorities)
    for slot in range(1, 4 * total + 1):
        winner = scheduler.order(list(jobs))[0]
        scheduler.charge(winner)
        gap = slot - last_seen[winner]
        last_seen[winner] = slot
        bound = -(-total // jobs[winner]) + len(jobs)  # ceil + slack
        assert gap <= bound, f"{winner} starved for {gap} slots (bound {bound})"
        passes = [scheduler._jobs[job_id][0] for job_id in jobs]
        assert max(passes) - min(passes) <= STRIDE_SCALE


# --------------------------------------------------------------------------
# JobStore-level properties
# --------------------------------------------------------------------------
job_mixes = st.lists(
    st.tuples(st.integers(min_value=1, max_value=5), priorities),
    min_size=1, max_size=4,
)


@COMMON_SETTINGS
@given(job_mixes, st.integers(min_value=0, max_value=30))
def test_jobstore_assignment_order_is_deterministic(job_sizes, drives):
    def assignment_trace():
        store = build_store(job_sizes)
        store.claim_worker("w")
        trace = []
        for _ in range(drives):
            message = store.assign("w")
            if message["type"] != "task":
                break
            parsed = parse_task_id(message["task"])
            trace.append(parsed)
            job_id, position = parsed
            store.complete(job_id, position, "w", dict(_RESULT))
        return trace

    assert assignment_trace() == assignment_trace()


@COMMON_SETTINGS
@given(job_mixes, st.integers(min_value=0, max_value=12), st.data())
def test_cancellation_refunds_leased_specs_exactly_once(
    job_sizes, leases, data
):
    store = build_store(job_sizes)
    for worker in range(leases):  # one lease per worker, all left in flight
        store.claim_worker(f"w{worker}")
        store.assign(f"w{worker}")
    victim = data.draw(
        st.sampled_from([f"job-{i}" for i in range(len(job_sizes))])
    )
    leased_before = sum(
        1 for entry in store.job_detail(victim)["specs"]
        if entry["state"] == "leased"
    )
    refunded_before = store.stats["refunded"]
    summary = store.cancel(victim)
    assert summary["state"] == "cancelled"
    assert summary["refunded"] == leased_before
    assert store.stats["refunded"] == refunded_before + leased_before
    # Every spec of the job is now terminal; none is still queued or leased.
    assert all(
        entry["state"] in ("done", "failed", "cancelled")
        for entry in store.job_detail(victim)["specs"]
    )
    # A second cancel is a no-op: no double refund, no state change.
    assert store.cancel(victim) is None
    assert store.stats["refunded"] == refunded_before + leased_before
    assert store.job_summary(victim)["refunded"] == leased_before
