"""Tests for the MetricFrame analysis API, reports, and frame comparison.

Three layers:

* property tests (hypothesis) — JSON/CSV round-trips are lossless for every
  column type, pivot/group_by obey their shape invariants;
* unit tests — relational ops, derived metrics, sweep-frame construction
  (cached flags, operation counts, param/extra name collisions), compare
  semantics and thresholds;
* a golden check — ``repro report fig7`` reproduces, byte for byte, the
  table the legacy dict-shaping code produced on the golden sweep.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.compare import (
    bench_frame,
    compare_frames,
    frame_from_payload,
    metric_direction,
)
from repro.analysis.frame import COLUMN_KINDS, COLUMN_TYPES, Column, MetricFrame
from repro.errors import AnalysisError
from repro.experiments.fig7_tightloop import FIG7_REPORT, fig7_sweep, format_fig7
from repro.experiments.scenarios import scenario_frame, scenario_sweep
from repro.runner import ResultCache, Runner, RunSpec, SweepSpec

COMMON_SETTINGS = settings(max_examples=50, deadline=None,
                           suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
_JSON_VALUES = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 53), max_value=2 ** 53),
    st.text(max_size=8),
    st.lists(st.integers(min_value=-100, max_value=100), max_size=4),
    st.dictionaries(st.text(max_size=4), st.integers(min_value=-100, max_value=100), max_size=3),
)

_VALUES_BY_TYPE = {
    "int": st.integers(min_value=-(2 ** 62), max_value=2 ** 62),
    "float": st.floats(allow_nan=False, allow_infinity=False),
    "str": st.text(max_size=20),
    "bool": st.booleans(),
    "json": _JSON_VALUES,
}

_NAMES = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True)


@st.composite
def frames(draw):
    """Random frames over every column type/kind, with nullable cells."""
    n_cols = draw(st.integers(min_value=1, max_value=5))
    names = draw(st.lists(_NAMES, min_size=n_cols, max_size=n_cols, unique=True))
    schema = tuple(
        Column(name, draw(st.sampled_from(COLUMN_TYPES)), draw(st.sampled_from(COLUMN_KINDS)))
        for name in names
    )
    n_rows = draw(st.integers(min_value=0, max_value=6))
    rows = [
        {
            column.name: draw(st.none() | _VALUES_BY_TYPE[column.type])
            for column in schema
        }
        for _ in range(n_rows)
    ]
    return MetricFrame.from_rows(schema, rows)


@st.composite
def grid_frames(draw):
    """Dense (a x b) grids with one float metric — pivot/group_by fodder."""
    a_values = draw(st.lists(st.integers(min_value=0, max_value=30),
                             min_size=1, max_size=4, unique=True))
    b_values = draw(st.lists(st.sampled_from(["w", "x", "y", "z"]),
                             min_size=1, max_size=4, unique=True))
    schema = (Column("a", "int", "dim"), Column("b", "str", "dim"),
              Column("v", "float", "metric"))
    rows = [
        {"a": a, "b": b,
         "v": draw(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))}
        for a in a_values for b in b_values
    ]
    return MetricFrame.from_rows(schema, rows), a_values, b_values


# ---------------------------------------------------------------------------
# Round-trip properties
# ---------------------------------------------------------------------------
class TestRoundTrips:
    @COMMON_SETTINGS
    @given(frames())
    def test_json_round_trip_is_lossless(self, frame):
        clone = MetricFrame.from_json(frame.to_json())
        assert clone == frame
        # Through an actual json.dumps/loads cycle too (what --json writes).
        clone2 = MetricFrame.from_json_dict(json.loads(json.dumps(frame.to_json_dict())))
        assert clone2 == frame

    @COMMON_SETTINGS
    @given(frames())
    def test_csv_round_trip_is_lossless(self, frame):
        clone = MetricFrame.from_csv(frame.to_csv())
        assert clone == frame
        assert clone.schema == frame.schema

    def test_csv_distinguishes_none_empty_and_backslash_strings(self):
        schema = (Column("s", "str", "dim"),)
        frame = MetricFrame.from_rows(
            schema, [{"s": None}, {"s": ""}, {"s": "\\N"}, {"s": "a\\b"}, {"s": "x,y\n\"q\""}]
        )
        clone = MetricFrame.from_csv(frame.to_csv())
        assert clone.column("s") == (None, "", "\\N", "a\\b", 'x,y\n"q"')

    def test_from_json_rejects_foreign_payload(self):
        with pytest.raises(AnalysisError, match="format"):
            MetricFrame.from_json_dict({"events": 1})


# ---------------------------------------------------------------------------
# Shape invariants
# ---------------------------------------------------------------------------
class TestShapeInvariants:
    @COMMON_SETTINGS
    @given(grid_frames())
    def test_pivot_covers_the_grid_exactly(self, data):
        frame, a_values, b_values = data
        pivot = frame.pivot(("a",), "b", "v")
        assert len(pivot.index_keys) == len(a_values)
        assert list(pivot.labels) == list(b_values)
        assert len(pivot.cells) == len(frame)
        table = pivot.to_dict()
        assert set(table) == set(a_values)  # scalar keys for a 1-column index
        for row in table.values():
            assert set(row) == set(b_values)

    @COMMON_SETTINGS
    @given(grid_frames())
    def test_group_by_partitions_rows(self, data):
        frame, a_values, _ = data
        grouped = frame.group_by(("a",), {"n": ("v", "count"), "total": ("v", "sum")})
        assert len(grouped) == len(a_values)
        assert list(grouped.column("a")) == list(a_values)  # first-seen order
        assert sum(grouped.column("n")) == len(frame)
        assert sum(grouped.column("total")) == pytest.approx(sum(frame.column("v")))

    @COMMON_SETTINGS
    @given(grid_frames())
    def test_where_select_preserve_schema_and_rows(self, data):
        frame, a_values, b_values = data
        picked = frame.where(a=a_values[0])
        assert len(picked) == len(b_values)
        assert picked.schema == frame.schema
        narrowed = frame.select("b", "v")
        assert narrowed.column_names == ("b", "v")
        assert len(narrowed) == len(frame)

    def test_group_by_type_preserving_aggregations(self):
        frame = small_frame()
        grouped = frame.group_by(
            ("cores",),
            {"best": ("config", "first"), "total": ("cycles", "sum"),
             "worst": ("cycles", "max")},
        )
        assert grouped.column_def("best").type == "str"
        assert grouped.column_def("total").type == "int"
        assert grouped.column("best") == ("Baseline", "Baseline")
        assert grouped.column("total") == (5000, 10500)
        assert grouped.column("worst") == (4000, 9000)

    def test_pivot_rejects_duplicate_cells(self):
        schema = (Column("a", "int", "dim"), Column("v", "float", "metric"))
        frame = MetricFrame.from_rows(schema, [{"a": 1, "v": 1.0}, {"a": 1, "v": 2.0}])
        with pytest.raises(AnalysisError, match="more than one row"):
            frame.pivot(("a",), "a", "v")


# ---------------------------------------------------------------------------
# Relational ops and derived metrics
# ---------------------------------------------------------------------------
def small_frame():
    schema = (
        Column("config", "str", "dim"), Column("cores", "int", "dim"),
        Column("cycles", "int", "metric"), Column("operations", "float", "metric"),
    )
    rows = [
        {"config": "Baseline", "cores": 16, "cycles": 4000, "operations": 10.0},
        {"config": "WiSync", "cores": 16, "cycles": 1000, "operations": 10.0},
        {"config": "Baseline", "cores": 32, "cycles": 9000, "operations": 20.0},
        {"config": "WiSync", "cores": 32, "cycles": 1500, "operations": 20.0},
    ]
    return MetricFrame.from_rows(schema, rows)


class TestOps:
    def test_speedup_over_joins_on_remaining_dims(self):
        frame = small_frame().speedup_over("Baseline")
        by_key = {(row["config"], row["cores"]): row["speedup"] for row in frame.rows()}
        assert by_key[("WiSync", 16)] == 4.0
        assert by_key[("WiSync", 32)] == 6.0
        assert by_key[("Baseline", 16)] == 1.0

    def test_speedup_over_missing_baseline_raises(self):
        frame = small_frame().where(config="WiSync")
        with pytest.raises(AnalysisError, match="no baseline"):
            frame.speedup_over("Baseline")

    def test_cycles_per_op_and_ops_per_kcycle(self):
        frame = small_frame().cycles_per_op().ops_per_kcycle()
        first = frame.row(0)
        assert first["cycles_per_op"] == 400.0
        assert first["ops_per_kcycle"] == 2.5

    def test_derive_rejects_existing_column(self):
        with pytest.raises(AnalysisError, match="already exists"):
            small_frame().derive("cycles", lambda row: 0.0)

    def test_explode_replicates_matching_rows(self):
        frame = small_frame().explode(
            "config", ["A", "B"], where=lambda row: row["config"] == "Baseline"
        )
        assert len(frame) == 6
        assert frame.unique("config") == ("A", "B", "WiSync")

    def test_sort_by_and_unique(self):
        frame = small_frame().sort_by("cycles", reverse=True)
        assert list(frame.column("cycles")) == [9000, 4000, 1500, 1000]
        assert frame.unique("cores") == (32, 16)

    def test_geomean_and_where_membership(self):
        frame = small_frame().where(config=("WiSync",))
        assert frame.geomean("operations") == pytest.approx((10.0 * 20.0) ** 0.5)

    def test_concat_requires_identical_schema(self):
        frame = small_frame()
        assert len(frame.concat(frame)) == 8
        with pytest.raises(AnalysisError, match="schema"):
            frame.concat(frame.select("config", "cycles"))


# ---------------------------------------------------------------------------
# Frames from sweeps
# ---------------------------------------------------------------------------
def tightloop_sweep():
    return SweepSpec(
        name="s",
        specs=(
            RunSpec(workload="tightloop", params={"iterations": 2},
                    config="WiSync", num_cores=8),
            RunSpec(workload="tightloop", params={"iterations": 2},
                    config="Baseline+", num_cores=8),
        ),
    )


class TestSweepFrames:
    def test_frame_rows_carry_spec_axes_and_metrics(self):
        outcome = Runner().run(tightloop_sweep())
        frame = outcome.frame()
        assert len(frame) == 2
        row = frame.row(0)
        assert row["workload"] == "tightloop"
        assert row["config"] == "WiSync"
        assert row["cores"] == 8 and row["seed"] == 2016
        assert row["iterations"] == 2
        assert row["cycles"] == outcome.result_for(tightloop_sweep().specs[0]).total_cycles
        assert row["events"] > 0
        assert row["completed"] is True and row["cached"] is False
        assert row["wall_seconds"] > 0
        assert frame.events_per_sec().row(0)["events_per_sec"] > 0

    def test_cached_flags_survive_into_the_frame(self, tmp_path):
        runner = Runner(cache=ResultCache(tmp_path))
        first = runner.run(tightloop_sweep()).frame()
        second = runner.run(tightloop_sweep()).frame()
        assert set(first.column("cached")) == {False}
        assert set(second.column("cached")) == {True}
        # Everything except provenance is identical.
        assert first.select("config", "cycles", "events") == \
            second.select("config", "cycles", "events")

    def test_scenario_frame_normalizes_cycles_per_op(self):
        sweep = scenario_sweep(
            scenarios=["rwlock"], core_counts=[8],
            configs=["Baseline", "WiSync"], contention=["low", "high"],
        )
        frame = scenario_frame(Runner().run(sweep).frame())
        # rwlock's `operations` KNOB collides with the completed-op METRIC:
        # the param moves to param_operations, the metric keeps the name.
        assert "param_operations" in frame.column_names
        for row in frame.rows():
            assert row["contention"] in ("low", "high")
            assert row["operations"] == 8 * row["param_operations"]
            assert row["cycles_per_op"] == pytest.approx(row["cycles"] / row["operations"])

    def test_truncated_runs_get_no_operations_stamp(self):
        from repro.runner.executor import execute_spec

        spec = RunSpec(workload="pc_ring", params={"items": 8, "think_cycles": 30},
                       config="WiSync", num_cores=16, max_cycles=200)
        result = execute_spec(spec)
        assert not result.completed
        # The planned count would make the cut-off run look spuriously cheap
        # per op; a truncated run must carry no completed-operations claim.
        assert "operations" not in result.extra

    def test_custom_scenario_params_render_as_custom_contention(self):
        from repro.experiments.scenarios import scenarios_report

        sweep = SweepSpec(
            name="scenarios",
            specs=(
                RunSpec(workload="pc_ring", params={"items": 4, "think_cycles": 400},
                        config="WiSync", num_cores=8),
                RunSpec(workload="pc_ring", params={"items": 5, "think_cycles": 77},
                        config="WiSync", num_cores=8),
            ),
        )
        frame = scenario_frame(Runner().run(sweep).frame())
        assert set(frame.column("contention")) == {"low", "custom"}
        rendered = scenarios_report().render(frame, prepared=True)
        assert "custom" in rendered  # sortable alongside the preset levels

    def test_sweep_frame_round_trips_through_json_and_csv(self):
        frame = Runner().run(tightloop_sweep()).frame()
        assert MetricFrame.from_json(frame.to_json()) == frame
        assert MetricFrame.from_csv(frame.to_csv()) == frame


# ---------------------------------------------------------------------------
# compare_frames
# ---------------------------------------------------------------------------
class TestCompare:
    def test_identical_frames_pass_any_threshold(self):
        frame = small_frame()
        comparison = compare_frames(frame, frame, default_threshold=0.0)
        assert comparison.ok
        assert {delta.change for delta in comparison.deltas} == {0.0}

    def test_direction_aware_regression(self):
        base = small_frame()
        slower = MetricFrame.from_rows(
            base.schema,
            [{**row, "cycles": row["cycles"] * 2} for row in base.rows()],
        )
        comparison = compare_frames(base, slower, metrics=("cycles",),
                                    thresholds={"cycles": 0.5})
        assert not comparison.ok
        assert "cycles regression" in comparison.failures[0]
        # An *improvement* in a lower-is-better metric never fails.
        improved = compare_frames(slower, base, metrics=("cycles",),
                                  thresholds={"cycles": 0.5})
        assert improved.ok

    def test_higher_is_better_metrics_gate_on_drops(self):
        assert metric_direction("events_per_sec") == "higher"
        assert metric_direction("cycles") == "lower"
        fast = bench_frame({"experiment": "fig7", "grid_points": 1, "events": 100,
                            "wall_seconds": 1.0, "events_per_sec": 1000.0})
        slow = bench_frame({"experiment": "fig7", "grid_points": 1, "events": 100,
                            "wall_seconds": 1.0, "events_per_sec": 500.0})
        failing = compare_frames(fast, slow, metrics=("events_per_sec",),
                                 thresholds={"events_per_sec": 0.30})
        assert not failing.ok and "below" in failing.failures[0]
        passing = compare_frames(fast, slow, metrics=("events_per_sec",),
                                 thresholds={"events_per_sec": 0.60})
        assert passing.ok

    def test_threshold_on_uncompared_metric_raises(self):
        # A typo'd gate (--threshold cyclez=0.01) must fail loudly, not pass
        # forever while appearing to guard.
        frame = small_frame()
        with pytest.raises(AnalysisError, match="cyclez"):
            compare_frames(frame, frame, thresholds={"cyclez": 0.01})
        with pytest.raises(AnalysisError, match="not being compared"):
            compare_frames(frame, frame, metrics=("cycles",),
                           thresholds={"operations": 0.01})

    def test_regression_from_zero_baseline_is_caught(self):
        schema = (Column("config", "str", "dim"), Column("collisions", "int", "metric"))
        base = MetricFrame.from_rows(schema, [{"config": "A", "collisions": 0}])
        worse = MetricFrame.from_rows(schema, [{"config": "A", "collisions": 500}])
        comparison = compare_frames(base, worse, thresholds={"collisions": 0.5})
        assert not comparison.ok
        assert comparison.worst("collisions").change == float("inf")
        # Zero staying zero is not a regression.
        assert compare_frames(base, base, thresholds={"collisions": 0.5}).ok

    def test_non_numeric_metrics_rejected_cleanly(self):
        frame = small_frame()
        with pytest.raises(AnalysisError, match="not a numeric column"):
            compare_frames(frame, frame, metrics=("config",))

    def test_thread_counts_never_fail_the_blanket_gate(self):
        # finished_threads going UP (a truncation fix) is an improvement; it
        # must not trip --max-regression, and by default it is bookkeeping
        # that the comparison skips entirely.
        schema = (Column("config", "str", "dim"),
                  Column("finished_threads", "int", "metric"),
                  Column("cycles", "int", "metric"))
        base = MetricFrame.from_rows(schema, [{"config": "A", "finished_threads": 15,
                                               "cycles": 100}])
        fixed = MetricFrame.from_rows(schema, [{"config": "A", "finished_threads": 16,
                                                "cycles": 100}])
        comparison = compare_frames(base, fixed, default_threshold=0.05)
        assert comparison.ok
        assert "finished_threads" not in comparison.metrics()
        explicit = compare_frames(base, fixed, metrics=("finished_threads",),
                                  thresholds={"finished_threads": 0.05})
        assert explicit.ok  # higher is better: an increase never regresses

    def test_explicit_gate_with_no_comparable_rows_fails(self):
        schema = (Column("config", "str", "dim"), Column("cycles_per_op", "float", "metric"))
        frame = MetricFrame.from_rows(schema, [{"config": "A", "cycles_per_op": None}])
        comparison = compare_frames(frame, frame, metrics=("cycles_per_op",),
                                    thresholds={"cycles_per_op": 0.05})
        assert not comparison.ok
        assert "no comparable rows" in comparison.failures[0]

    def test_disjoint_frames_raise(self):
        a = bench_frame({"experiment": "fig7", "grid_points": 1, "events": 1,
                         "wall_seconds": 1.0, "events_per_sec": 1.0})
        b = bench_frame({"experiment": "fig8", "grid_points": 1, "events": 1,
                         "wall_seconds": 1.0, "events_per_sec": 1.0})
        with pytest.raises(AnalysisError, match="no overlapping rows"):
            compare_frames(a, b)

    def test_payload_autodetection(self):
        frame = small_frame()
        assert frame_from_payload(frame.to_json_dict()) == frame
        bench = frame_from_payload({"experiment": "fig7", "grid_points": 1, "events": 5,
                                    "wall_seconds": 2.0, "events_per_sec": 2.5})
        assert bench.row(0)["events_per_sec"] == 2.5
        with pytest.raises(AnalysisError, match="unrecognized payload"):
            frame_from_payload({"hello": "world"})

    def test_profile_gate_routes_through_compare(self, tmp_path):
        from repro.runner.profile import compare_to_baseline

        record = {"experiment": "fig7", "quick": True, "grid_points": 1,
                  "events": 100, "wall_seconds": 1.0, "events_per_sec": 500.0}
        baseline_path = tmp_path / "BENCH_fig7.json"
        baseline_path.write_text(json.dumps({**record, "events_per_sec": 1000.0}))
        message = compare_to_baseline(record, str(baseline_path), 0.30)
        assert message is not None and "perf regression" in message
        assert compare_to_baseline(record, str(baseline_path), 0.60) is None


# ---------------------------------------------------------------------------
# Golden: `repro report fig7` == the pre-refactor table, byte for byte
# ---------------------------------------------------------------------------
#: Output of the legacy (PR 3) dict-shaping fig7 pipeline on the golden
#: sweep (core_counts=[16, 32], iterations=3), captured before the
#: MetricFrame refactor.  `repro report fig7` must reproduce it exactly.
GOLDEN_FIG7_TEXT = (
    "Figure 7: TightLoop cycles/iteration\n"
    "cores  Baseline  Baseline+  WiSyncNoT  WiSync\n"
    "-----  --------  ---------  ---------  ------\n"
    "16     9,090     1,676      1,146      960   \n"
    "32     46,472    2,222      1,827      1,134 "
)

GOLDEN_FIG7_VALUES = {
    16: {"Baseline": 9089.666666666666, "Baseline+": 1675.6666666666667,
         "WiSyncNoT": 1145.6666666666667, "WiSync": 960.3333333333334},
    32: {"Baseline": 46472.0, "Baseline+": 2222.0,
         "WiSyncNoT": 1827.3333333333333, "WiSync": 1133.6666666666667},
}


class TestReportGolden:
    @pytest.fixture(scope="class")
    def fig7_frame(self):
        return Runner().run(fig7_sweep(core_counts=[16, 32], iterations=3)).frame()

    def test_report_reproduces_legacy_table_text(self, fig7_frame):
        assert FIG7_REPORT.render(fig7_frame) == GOLDEN_FIG7_TEXT

    def test_report_reproduces_legacy_values_exactly(self, fig7_frame):
        assert FIG7_REPORT.table(fig7_frame) == GOLDEN_FIG7_VALUES

    def test_legacy_format_path_agrees_with_report_path(self, fig7_frame):
        assert format_fig7(FIG7_REPORT.table(fig7_frame)) == GOLDEN_FIG7_TEXT


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------
class TestReportCompareCli:
    def _repro(self, *argv):
        env = {"PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src")}
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True, text=True, env=env,
        )

    def test_report_renders_from_cache_and_writes_frame(self, tmp_path):
        cache = str(tmp_path / "cache")
        out = tmp_path / "frame.json"
        csv_out = tmp_path / "frame.csv"
        first = self._repro(
            "report", "fig7", "--cores", "8", "--iterations", "2",
            "--configs", "WiSync,Baseline+", "--cache", cache,
            "--json", str(out), "--csv", str(csv_out),
        )
        assert first.returncode == 0, first.stderr
        assert "Figure 7: TightLoop cycles/iteration" in first.stdout
        assert "2 simulated, 0 cached" in first.stderr
        frame = MetricFrame.from_json(out.read_text())
        assert len(frame) == 2
        assert "cycles_per_iteration" in frame.column_names
        assert MetricFrame.from_csv(csv_out.read_text()) == frame
        second = self._repro(
            "report", "fig7", "--cores", "8", "--iterations", "2",
            "--configs", "WiSync,Baseline+", "--cache", cache, "--quiet",
        )
        assert second.returncode == 0, second.stderr
        assert "0 simulated, 2 cached" in second.stderr

    def test_compare_gates_frames(self, tmp_path):
        cache = str(tmp_path / "cache")
        a = tmp_path / "a.json"
        args = ("report", "fig7", "--cores", "8", "--iterations", "2",
                "--configs", "WiSync", "--cache", cache, "--quiet")
        assert self._repro(*args, "--json", str(a)).returncode == 0
        same = self._repro("compare", str(a), str(a), "--max-regression", "0.01")
        assert same.returncode == 0, same.stderr
        assert "compare OK" in same.stderr
        # Inject a 2x cycles regression into the candidate frame.
        payload = json.loads(a.read_text())
        payload["columns"]["cycles"] = [2 * c for c in payload["columns"]["cycles"]]
        b = tmp_path / "b.json"
        b.write_text(json.dumps(payload))
        worse = self._repro("compare", str(a), str(b),
                            "--threshold", "cycles=0.5", "--json", "-", "--quiet")
        assert worse.returncode == 1
        assert "cycles regression" in worse.stderr
        structured = json.loads(worse.stdout)
        assert structured["failures"]

    def test_compare_bench_records(self):
        proc = self._repro("compare", "BENCH_fig7.json", "BENCH_fig7.json",
                           "--metrics", "events_per_sec", "--max-regression", "0.3")
        assert proc.returncode == 0, proc.stderr
