"""Tests for the OS model: processes, scheduling, migration restrictions."""

import pytest

from repro.errors import ConfigurationError, ReproError, ToneBarrierError
from repro.osmodel.process import ProcessTable
from repro.osmodel.scheduler import Scheduler


class TestProcessTable:
    def test_spawn_assigns_increasing_pids(self):
        table = ProcessTable()
        first = table.spawn("a")
        second = table.spawn("b")
        assert second.pid == first.pid + 1
        assert len(table) == 2

    def test_get_and_exists(self):
        table = ProcessTable()
        process = table.spawn("a")
        assert table.exists(process.pid)
        assert table.get(process.pid) is process
        assert not table.exists(999)
        with pytest.raises(ReproError):
            table.get(999)

    def test_terminate_marks_dead(self):
        table = ProcessTable()
        process = table.spawn("a")
        table.terminate(process.pid)
        assert not process.alive
        assert table.live_processes() == []

    def test_pid_space_exhaustion(self):
        table = ProcessTable(max_pid=2)
        table.spawn("a")
        table.spawn("b")
        with pytest.raises(ReproError):
            table.spawn("c")

    def test_thread_and_allocation_bookkeeping(self):
        table = ProcessTable()
        process = table.spawn("a")
        process.add_thread(3)
        process.record_allocation(17)
        assert process.thread_ids == [3]
        assert process.bm_allocations == [17]


class TestScheduler:
    def test_round_robin_placement_balances_load(self):
        scheduler = Scheduler(num_cores=4)
        cores = [scheduler.place(tid, pid=1).core_id for tid in range(8)]
        assert sorted(cores) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_explicit_placement(self):
        scheduler = Scheduler(num_cores=4)
        placement = scheduler.place(0, pid=1, core_id=3)
        assert placement.core_id == 3
        assert scheduler.threads_on(3) == [0]

    def test_out_of_range_core_rejected(self):
        scheduler = Scheduler(num_cores=2)
        with pytest.raises(ConfigurationError):
            scheduler.place(0, pid=1, core_id=7)

    def test_preempt_and_resume(self):
        scheduler = Scheduler(num_cores=2)
        scheduler.place(0, pid=1)
        scheduler.preempt(0)
        assert scheduler.placement(0).preempted
        scheduler.resume(0)
        assert not scheduler.placement(0).preempted
        assert scheduler.preemptions == 1

    def test_migration_allowed_without_tone_barriers(self):
        scheduler = Scheduler(num_cores=4)
        scheduler.place(0, pid=1, core_id=0)
        assert scheduler.can_migrate(0)
        placement = scheduler.migrate(0, 3)
        assert placement.core_id == 3
        assert scheduler.migrations == 1

    def test_tone_barrier_participation_blocks_migration(self):
        scheduler = Scheduler(num_cores=4)
        scheduler.place(0, pid=1, core_id=0)
        scheduler.register_tone_barrier(0, bm_addr=5)
        assert not scheduler.can_migrate(0)
        with pytest.raises(ToneBarrierError):
            scheduler.migrate(0, 1)

    def test_two_threads_on_same_core_cannot_share_tone_barrier(self):
        scheduler = Scheduler(num_cores=2)
        scheduler.place(0, pid=1, core_id=0)
        scheduler.place(1, pid=1, core_id=0)
        scheduler.register_tone_barrier(0, bm_addr=5)
        with pytest.raises(ToneBarrierError):
            scheduler.register_tone_barrier(1, bm_addr=5)

    def test_same_tone_barrier_on_different_cores_is_fine(self):
        scheduler = Scheduler(num_cores=2)
        scheduler.place(0, pid=1, core_id=0)
        scheduler.place(1, pid=1, core_id=1)
        scheduler.register_tone_barrier(0, bm_addr=5)
        scheduler.register_tone_barrier(1, bm_addr=5)
        assert not scheduler.can_migrate(0)

    def test_migrate_to_invalid_core_rejected(self):
        scheduler = Scheduler(num_cores=2)
        scheduler.place(0, pid=1)
        with pytest.raises(ConfigurationError):
            scheduler.migrate(0, 9)
