"""Checkpoint/restore subsystem tests (``repro.snapshot``).

The acceptance bar everywhere in this file is *bit-identity*: running a spec
to completion must equal snapshotting it mid-flight, restoring, and
continuing — on ``total_cycles``, ``events_processed``, per-thread cycles,
and the full stats snapshot.  The property test draws random fig7/scenario
grid points; the golden test pins the round trip against the same
``tests/golden_runs.json`` numbers the optimization tests use.

Fault handling mirrors the ResultCache contract: a corrupt, stale-versioned,
truncated, or wrong-spec checkpoint is discarded with a structured
:class:`SnapshotWarning` and the run starts from scratch — never a crash,
never a silently wrong continuation.

The distributed drills exercise the real wire path: genuine ``repro worker``
subprocesses checkpoint into a live broker, get SIGTERM'd (clean release) or
SIGKILL'd (lease expiry + shipped-checkpoint resume), and the sweep must
still finish bit-identical to serial.
"""

import json
import signal
import time
import warnings
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from goldens import GOLDEN_PATH, golden_specs
from repro.errors import ConfigurationError, SnapshotError
from repro.experiments.scenarios import scenario_sweep
from repro.runner import Broker, RunSpec, SerialExecutor
from repro.runner.cli import main
from repro.runner.distributed import DistributedExecutor, LocalCluster
from repro.runner.executor import execute_spec
from repro.sim.rng import DeterministicRng
from repro.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    STRATEGY_NATIVE,
    ExecutionPreempted,
    RunManifest,
    Snapshot,
    SnapshotWarning,
    SpecExecution,
    available_runs,
    checkpoint_path,
    execute_with_checkpoints,
    load_snapshot,
    parse_document,
    resume_to_completion,
    run_prefix,
    save_snapshot,
    snapshot_after,
    snapshot_document,
    try_load_snapshot,
)


def tight(iterations=60, num_cores=16, seed=0):
    return RunSpec(
        workload="tightloop", params={"iterations": iterations},
        config="WiSync", num_cores=num_cores, seed=seed,
    )


def assert_identical(mine, theirs):
    """The bit-identity bar: every simulated quantity, not just the headline."""
    assert mine.total_cycles == theirs.total_cycles
    assert mine.events_processed == theirs.events_processed
    assert mine.thread_cycles == theirs.thread_cycles
    assert mine.completed == theirs.completed
    assert mine.stats.to_dict() == theirs.stats.to_dict()
    assert mine.extra.get("operations") == theirs.extra.get("operations")


# ---------------------------------------------------------------------------
# RNG state capture (satellite: getstate/setstate regression)
# ---------------------------------------------------------------------------
class TestRngState:
    def _tree(self):
        root = DeterministicRng(11, "machine")
        fabric = root.child("fabric")
        macs = [fabric.child(f"mac{i}") for i in range(3)]
        return root, fabric, macs

    def _interleaved_draws(self, root, fabric, macs):
        # Deliberately interleave streams and primitives: the regression this
        # pins is save/restore in the *middle* of mixed draw sequences, not
        # just at stream construction time.
        out = []
        for i in range(5):
            out.append(root.randint(0, 1000))
            out.append(macs[i % 3].expovariate(0.5))
            out.append(fabric.random())
            out.append(macs[(i + 1) % 3].jitter(40))
            out.append(fabric.choice(["a", "b", "c", "d"]))
        return out

    def test_interleaved_draws_identical_across_save_restore(self):
        root, fabric, macs = self._tree()
        self._interleaved_draws(root, fabric, macs)  # burn a prefix
        state = root.tree_getstate()
        want = self._interleaved_draws(root, fabric, macs)

        fresh_root, fresh_fabric, fresh_macs = self._tree()
        fresh_root.tree_setstate(state)
        got = self._interleaved_draws(fresh_root, fresh_fabric, fresh_macs)
        assert got == want

    def test_getstate_is_json_safe(self):
        root, fabric, macs = self._tree()
        self._interleaved_draws(root, fabric, macs)
        state = root.tree_getstate()
        rebuilt_root, rf, rm = self._tree()
        rebuilt_root.tree_setstate(json.loads(json.dumps(state)))
        assert self._interleaved_draws(rebuilt_root, rf, rm) == \
            self._interleaved_draws(root, fabric, macs)

    def test_setstate_rejects_foreign_stream(self):
        a = DeterministicRng(1, "machine")
        b = DeterministicRng(1, "machine").child("fabric")
        with pytest.raises(SnapshotError, match="cannot be applied"):
            b.setstate(a.getstate())

    def test_setstate_rejects_foreign_root_seed(self):
        a = DeterministicRng(1, "machine")
        b = DeterministicRng(2, "machine")
        with pytest.raises(SnapshotError, match="cannot be applied"):
            b.setstate(a.getstate())

    def test_setstate_rejects_malformed_state(self):
        rng = DeterministicRng(1, "machine")
        payload = rng.getstate()
        payload["state"] = ["not", "a", "twister"]
        with pytest.raises(SnapshotError, match="malformed rng state"):
            rng.setstate(payload)

    def test_tree_setstate_rejects_missing_stream_state(self):
        root = DeterministicRng(1, "machine")
        state = root.tree_getstate()
        root.child("fabric")  # restored machine derived a stream never captured
        with pytest.raises(SnapshotError, match="no captured rng state"):
            root.tree_setstate(state)

    def test_tree_setstate_rejects_leftover_states(self):
        root = DeterministicRng(1, "machine")
        root.child("fabric")
        state = root.tree_getstate()
        bare = DeterministicRng(1, "machine")
        with pytest.raises(SnapshotError, match="no matching"):
            bare.tree_setstate(state)

    def test_tree_getstate_rejects_duplicate_names(self):
        root = DeterministicRng(1, "machine")
        root.child("fabric")
        root.child("fabric")  # same name, independent stream
        with pytest.raises(SnapshotError, match="not unique"):
            root.tree_getstate()


# ---------------------------------------------------------------------------
# Snapshot document format: versioning + integrity
# ---------------------------------------------------------------------------
class TestSnapshotFormat:
    def _snapshot(self):
        return snapshot_after(tight(), 2000)

    def test_document_round_trip(self):
        snapshot = self._snapshot()
        assert parse_document(snapshot_document(snapshot)) == snapshot

    def test_file_round_trip(self, tmp_path):
        snapshot = self._snapshot()
        path = tmp_path / "point.snapshot.json"
        save_snapshot(snapshot, path)
        assert load_snapshot(path) == snapshot

    def test_tampered_body_fails_integrity_check(self):
        document = snapshot_document(self._snapshot())
        document["snapshot"]["events_processed"] += 1
        with pytest.raises(SnapshotError, match="integrity"):
            parse_document(document)

    def test_stale_version_rejected(self):
        document = snapshot_document(self._snapshot())
        document["version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(SnapshotError, match="unsupported snapshot version"):
            parse_document(document)

    def test_foreign_format_rejected(self):
        with pytest.raises(SnapshotError, match="is not a"):
            parse_document({"format": "something-else", "version": 1})
        assert SNAPSHOT_FORMAT == "wisync-snapshot"

    def test_non_dict_rejected(self):
        with pytest.raises(SnapshotError, match="not a snapshot document"):
            parse_document(["nope"])

    def test_negative_event_count_rejected(self):
        with pytest.raises(SnapshotError, match="negative"):
            Snapshot(spec=tight(), events_processed=-1, clock=0)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SnapshotError, match="unknown snapshot strategy"):
            Snapshot(spec=tight(), events_processed=1, clock=1, strategy="psychic")

    def test_spec_key_drift_detected(self):
        # A spec whose serialization no longer hashes to the recorded key
        # means RunSpec.key() semantics moved underneath the checkpoint.
        body = self._snapshot().to_dict()
        body["spec_key"] = "0" * 64
        with pytest.raises(SnapshotError, match="spec_key"):
            Snapshot.from_dict(body)

    def test_try_load_missing_file_is_silent(self, tmp_path):
        assert try_load_snapshot(tmp_path / "absent.json") == (None, None)

    def test_try_load_corrupt_file_returns_reason(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{ not json", encoding="utf-8")
        snapshot, reason = try_load_snapshot(path)
        assert snapshot is None
        assert "not valid JSON" in reason

    def test_try_load_valid_file(self, tmp_path):
        want = self._snapshot()
        path = save_snapshot(want, tmp_path / "good.json")
        assert try_load_snapshot(path) == (want, None)

    def test_describe_summarizes_the_capture(self):
        snapshot = self._snapshot()
        summary = snapshot.describe()
        assert summary["events_processed"] == 2000
        assert summary["strategy"] == "native"
        assert summary["spec_key"] == snapshot.spec.key()
        assert summary["rng_streams"] > 0


# ---------------------------------------------------------------------------
# Capture / restore bit-identity
# ---------------------------------------------------------------------------
class TestCaptureRestore:
    def test_midpoint_snapshot_restore_continue_is_bit_identical(self):
        spec = tight()
        full = execute_spec(spec)
        snapshot = snapshot_after(spec, full.events_processed // 2)
        resumed = resume_to_completion(snapshot)
        assert_identical(resumed, full)

    def test_snapshot_round_trips_through_disk(self, tmp_path):
        spec = tight()
        full = execute_spec(spec)
        path = save_snapshot(snapshot_after(spec, 3000), tmp_path / "mid.json")
        assert_identical(resume_to_completion(load_snapshot(path)), full)

    def test_repeated_checkpointing_is_bit_identical(self):
        spec = tight()
        full = execute_spec(spec)
        captured = []
        execution = SpecExecution(spec)
        sliced = execution.run_to_completion(
            checkpoint_every=1500, on_checkpoint=captured.append
        )
        assert_identical(sliced, full)
        assert len(captured) >= 2
        assert [c.events_processed for c in captured] == sorted(
            c.events_processed for c in captured
        )
        # Every intermediate checkpoint is itself a valid restore point.
        assert_identical(resume_to_completion(captured[-1]), full)

    def test_nothing_left_to_snapshot_is_a_clear_error(self):
        spec = tight(iterations=2, num_cores=4)
        with pytest.raises(SnapshotError, match="nothing left to snapshot"):
            run_prefix(spec, 10_000_000)

    def test_capture_after_completion_is_rejected(self):
        execution = SpecExecution(tight(iterations=2, num_cores=4))
        execution.run_to_completion()
        with pytest.raises(SnapshotError, match="nothing to checkpoint"):
            execution.capture()

    def test_native_strategy_without_payload_is_rejected(self):
        snapshot = Snapshot(
            spec=tight(), events_processed=100, clock=100,
            strategy=STRATEGY_NATIVE,
        )
        with pytest.raises(SnapshotError, match="no machine payload"):
            SpecExecution.from_snapshot(snapshot)

    def test_native_verification_catches_drift(self):
        real = snapshot_after(tight(), 2000)
        native = dict(real.native)
        rng = {name: dict(state) for name, state in native["rng"].items()}
        name = sorted(rng)[0]
        rng[name] = dict(rng[name], state=[3, [0] * 625, None])
        native["rng"] = rng
        tampered = Snapshot(
            spec=real.spec, events_processed=real.events_processed,
            clock=real.clock, native=native,
        )
        with pytest.raises(SnapshotError, match="diverged.*rng"):
            SpecExecution.from_snapshot(tampered)

    def test_replay_past_the_end_of_the_run_is_divergence(self):
        spec = tight(iterations=2, num_cores=4)
        impossible = Snapshot(
            spec=spec, events_processed=10_000_000, clock=0,
        )
        with pytest.raises(SnapshotError, match="replay diverged"):
            SpecExecution.from_snapshot(impossible)


# ---------------------------------------------------------------------------
# Property: restore-continue == uninterrupted, for random grid points
# ---------------------------------------------------------------------------
FIG7_SPECS = st.builds(
    tight,
    iterations=st.integers(min_value=2, max_value=5),
    num_cores=st.sampled_from([4, 8, 16]),
    seed=st.integers(min_value=0, max_value=3),
)


def _scenario_spec(scenario, level, backoff):
    sweep = scenario_sweep(
        scenarios=[scenario], core_counts=[8], configs=["WiSync"],
        contention=[level], backoffs=[backoff],
    )
    return sweep.specs[0]


SCENARIO_SPECS = st.builds(
    _scenario_spec,
    scenario=st.sampled_from(["barrier_storm", "work_steal"]),
    level=st.sampled_from(["low", "high"]),
    backoff=st.sampled_from(["broadcast_aware", "exponential"]),
)


class TestSnapshotProperty:
    @settings(
        max_examples=8, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        spec=st.one_of(FIG7_SPECS, SCENARIO_SPECS),
        tenths=st.integers(min_value=1, max_value=9),
    )
    def test_restore_continue_equals_uninterrupted(self, spec, tenths):
        full = execute_spec(spec)
        cut = max(1, full.events_processed * tenths // 10)
        if cut >= full.events_processed:
            cut = full.events_processed - 1
        snapshot = snapshot_after(spec, cut)
        assert snapshot.events_processed == cut
        resumed = resume_to_completion(snapshot)
        assert_identical(resumed, full)


# ---------------------------------------------------------------------------
# Golden pinning: the round trip reproduces the pre-optimization numbers
# ---------------------------------------------------------------------------
def _golden_subset():
    """One spec per experiment family keeps the pinned round trip fast."""
    specs = golden_specs()
    by_family = {}
    for spec in specs:
        by_family.setdefault(spec.workload, spec)
    return list(by_family.values())


@pytest.mark.parametrize("spec", _golden_subset(), ids=lambda spec: spec.label())
def test_snapshot_round_trip_matches_golden(spec):
    with open(GOLDEN_PATH, "r", encoding="utf-8") as stream:
        want = json.load(stream)[spec.key()]
    baseline_events = want["events_processed"]
    snapshot = snapshot_after(spec, max(1, baseline_events // 2))
    resumed = resume_to_completion(snapshot)
    assert resumed.total_cycles == want["total_cycles"]
    assert resumed.events_processed == baseline_events
    assert resumed.stats.snapshot() == want["snapshot"]


# ---------------------------------------------------------------------------
# Checkpoint files: resume, corruption fallback, cleanup
# ---------------------------------------------------------------------------
class TestCheckpointedExecution:
    def test_checkpointed_run_writes_then_cleans_up(self, tmp_path):
        spec = tight()
        seen = []
        result = execute_with_checkpoints(
            spec, checkpoint_every=1500, checkpoint_dir=tmp_path,
            on_checkpoint=lambda snap: seen.append(
                checkpoint_path(tmp_path, spec).exists()
            ),
        )
        assert_identical(result, execute_spec(spec))
        assert seen and all(seen)  # file present at every checkpoint...
        assert not checkpoint_path(tmp_path, spec).exists()  # ...gone at the end

    def test_resumes_from_existing_checkpoint_file(self, tmp_path, monkeypatch):
        spec = tight()
        save_snapshot(snapshot_after(spec, 3000), checkpoint_path(tmp_path, spec))

        restored = []
        original = SpecExecution.from_snapshot.__func__

        def spy(cls, snapshot, **kwargs):
            restored.append(snapshot.events_processed)
            return original(cls, snapshot, **kwargs)

        monkeypatch.setattr(
            SpecExecution, "from_snapshot", classmethod(spy)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", SnapshotWarning)
            result = execute_spec(spec, checkpoint_dir=str(tmp_path))
        assert restored == [3000]
        assert_identical(result, execute_spec(spec))
        assert not checkpoint_path(tmp_path, spec).exists()

    @pytest.mark.parametrize(
        "corruption, reason",
        [
            ("not-json", "not valid JSON"),
            ("stale-version", "unsupported snapshot version"),
            ("bad-hash", "integrity"),
            ("wrong-spec", "different spec"),
        ],
    )
    def test_unusable_checkpoint_warns_and_falls_back(
        self, tmp_path, corruption, reason
    ):
        spec = tight()
        path = checkpoint_path(tmp_path, spec)
        if corruption == "not-json":
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text("{ truncated", encoding="utf-8")
        elif corruption == "wrong-spec":
            save_snapshot(snapshot_after(tight(seed=7), 2000), path)
        else:
            document = snapshot_document(snapshot_after(spec, 2000))
            if corruption == "stale-version":
                document["version"] = SNAPSHOT_VERSION + 1
            else:
                document["snapshot"]["clock"] += 1
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(document), encoding="utf-8")

        with pytest.warns(SnapshotWarning, match=reason):
            result = execute_spec(spec, checkpoint_dir=str(tmp_path))
        # ResultCache-style eviction: warn, delete, run from scratch — and
        # the from-scratch result is still the correct one.
        assert_identical(result, execute_spec(spec))
        assert not path.exists()

    def test_drifted_native_payload_warns_and_falls_back(self, tmp_path):
        spec = tight()
        real = snapshot_after(spec, 2000)
        native = dict(real.native, finished_threads=999)
        save_snapshot(
            Snapshot(
                spec=spec, events_processed=real.events_processed,
                clock=real.clock, native=native,
            ),
            checkpoint_path(tmp_path, spec),
        )
        with pytest.warns(SnapshotWarning, match="diverged"):
            result = execute_spec(spec, checkpoint_dir=str(tmp_path))
        assert_identical(result, execute_spec(spec))

    def test_preemption_persists_a_final_snapshot(self, tmp_path):
        spec = tight()
        execution_events = []

        def should_stop():
            return bool(execution_events) and execution_events[-1] >= 3000

        with pytest.raises(ExecutionPreempted) as preempted:
            execute_with_checkpoints(
                spec, checkpoint_every=1000, checkpoint_dir=tmp_path,
                should_stop=should_stop,
                on_checkpoint=lambda s: execution_events.append(s.events_processed),
            )
        path = checkpoint_path(tmp_path, spec)
        assert path.exists()
        assert load_snapshot(path) == preempted.value.snapshot
        # The preempted run resumes to a bit-identical completion.
        resumed = execute_spec(spec, checkpoint_dir=str(tmp_path))
        assert_identical(resumed, execute_spec(spec))
        assert not path.exists()

    def test_checkpoint_every_must_be_positive(self):
        with pytest.raises(SnapshotError, match="positive"):
            SpecExecution(tight()).run_to_completion(checkpoint_every=0)


# ---------------------------------------------------------------------------
# Run manifests: repro run --resume bookkeeping
# ---------------------------------------------------------------------------
class TestRunManifest:
    def test_create_load_round_trip(self, tmp_path):
        manifest = RunManifest.create(
            "fig7", {"cores": [8], "iterations": 2}, runs_dir=tmp_path,
            run_id="r1",
        )
        loaded = RunManifest.load("r1", runs_dir=tmp_path)
        assert loaded.experiment == "fig7"
        assert loaded.args == {"cores": [8], "iterations": 2}
        assert loaded.status == "running"
        assert loaded.checkpoint_dir.is_dir()
        assert loaded.cache_dir() == str(manifest.results_dir)

    def test_duplicate_run_id_is_rejected_with_resume_hint(self, tmp_path):
        RunManifest.create("fig7", {}, runs_dir=tmp_path, run_id="r1")
        with pytest.raises(SnapshotError, match="--resume r1"):
            RunManifest.create("fig7", {}, runs_dir=tmp_path, run_id="r1")

    def test_missing_run_lists_known_runs(self, tmp_path):
        RunManifest.create("fig7", {}, runs_dir=tmp_path, run_id="seen")
        with pytest.raises(SnapshotError, match="known runs: seen"):
            RunManifest.load("absent", runs_dir=tmp_path)

    def test_record_result_and_status_write_through(self, tmp_path):
        manifest = RunManifest.create("fig7", {}, runs_dir=tmp_path, run_id="r1")
        spec = tight()
        manifest.record_result(spec, cached=False)
        manifest.mark_status("completed")
        loaded = RunManifest.load("r1", runs_dir=tmp_path)
        assert loaded.completed[spec.key()] == {
            "label": spec.label(), "cached": False,
        }
        assert loaded.status == "completed"

    def test_available_runs_and_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        RunManifest.create("fig7", {}, run_id="b")
        RunManifest.create("fig7", {}, run_id="a")
        assert available_runs() == ["a", "b"]


class TestRunResumeCli:
    def _run(self, *argv):
        return main(list(argv))

    def test_resumed_sweep_is_bit_identical_and_all_cached(self, tmp_path):
        out1, out2 = tmp_path / "first.json", tmp_path / "resumed.json"
        runs = str(tmp_path / "runs")
        base = [
            "run", "fig7", "--cores", "8", "--iterations", "2",
            "--configs", "WiSync", "--runs-dir", runs,
        ]
        assert self._run(*base, "--run-id", "t1", "--json", str(out1)) == 0
        assert self._run(
            "run", "--resume", "t1", "--runs-dir", runs, "--json", str(out2)
        ) == 0
        assert json.loads(out1.read_text()) == json.loads(out2.read_text())
        manifest = RunManifest.load("t1", runs_dir=runs)
        assert manifest.status == "completed"
        assert all(entry["cached"] for entry in
                   RunManifest.load("t1", runs_dir=runs).completed.values())

    def test_run_without_experiment_or_resume_is_an_error(self, tmp_path):
        assert self._run("run", "--runs-dir", str(tmp_path)) == 2

    def test_resume_conflicts_with_run_id(self, tmp_path):
        assert self._run(
            "run", "--resume", "t1", "--run-id", "t2",
            "--runs-dir", str(tmp_path),
        ) == 2

    def test_resume_rejects_experiment_mismatch(self, tmp_path):
        runs = str(tmp_path / "runs")
        RunManifest.create("fig7", {}, runs_dir=runs, run_id="t1")
        assert self._run("run", "fig9", "--resume", "t1", "--runs-dir", runs) == 2

    def test_no_manifest_conflicts_with_checkpointing(self):
        assert self._run(
            "run", "fig7", "--no-manifest", "--checkpoint-every", "1000",
        ) == 2

    def test_parallel_execution_rejects_checkpointing(self, tmp_path):
        assert self._run(
            "run", "fig7", "--parallel", "2", "--checkpoint-every", "1000",
            "--runs-dir", str(tmp_path),
        ) == 2


class TestSnapshotCli:
    def test_save_inspect_restore_round_trip(self, tmp_path, capsys):
        path = tmp_path / "mid.snapshot.json"
        assert main([
            "snapshot", "save", "--workload", "tightloop",
            "--param", "iterations=60", "--cores", "16",
            "--events", "3000", "--output", str(path),
        ]) == 0
        assert path.exists()

        assert main(["snapshot", "inspect", str(path)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["events_processed"] == 3000
        assert summary["strategy"] == "native"

        result_path = tmp_path / "result.json"
        assert main([
            "snapshot", "restore", str(path), "--json", str(result_path),
        ]) == 0
        payload = json.loads(result_path.read_text())
        baseline = execute_spec(tight(seed=2016))  # the CLI's default seed
        assert payload["total_cycles"] == baseline.total_cycles
        assert payload["events_processed"] == baseline.events_processed

    def test_restore_of_tampered_file_fails_cleanly(self, tmp_path):
        path = tmp_path / "mid.snapshot.json"
        save_snapshot(snapshot_after(tight(), 2000), path)
        document = json.loads(path.read_text())
        document["snapshot"]["clock"] += 1
        path.write_text(json.dumps(document))
        assert main(["snapshot", "restore", str(path)]) == 2


# ---------------------------------------------------------------------------
# Broker checkpoint protocol (in-process state machine)
# ---------------------------------------------------------------------------
class TestBrokerCheckpointProtocol:
    def _broker(self, spec, **kwargs):
        broker = Broker([spec.to_dict()], lease_seconds=10.0, **kwargs)
        broker._workers = {"a", "b"}
        return broker

    def test_rejects_non_positive_checkpoint_every(self):
        with pytest.raises(ConfigurationError, match="positive"):
            Broker([tight().to_dict()], checkpoint_every=0)

    def test_checkpoint_stored_and_replayed_to_next_assignee(self):
        spec = tight()
        document = snapshot_document(snapshot_after(spec, 2000))
        broker = self._broker(spec, checkpoint_every=2000)
        assert broker._assign("a")["type"] == "task"
        broker._store_checkpoint(0, "a", document)
        assert broker.stats["checkpoints"] == 1
        broker._release(0, "a", document)
        assert broker.stats["released"] == 1
        # The refunded attempt means a clean release never burns retry budget.
        assert broker._tasks[0].attempts == 0
        reassigned = broker._assign("b")
        assert reassigned["type"] == "task"
        assert reassigned["checkpoint_every"] == 2000
        assert parse_document(reassigned["checkpoint"]).events_processed == 2000
        assert broker.stats["resumed"] == 1

    def test_checkpoint_from_non_lease_holder_is_ignored(self):
        spec = tight()
        broker = self._broker(spec)
        broker._assign("a")
        broker._store_checkpoint(
            0, "b", snapshot_document(snapshot_after(spec, 2000))
        )
        assert broker.stats["checkpoints"] == 0
        assert broker._tasks[0].checkpoint is None

    def test_corrupt_shipment_keeps_the_previous_checkpoint(self):
        spec = tight()
        broker = self._broker(spec)
        broker._assign("a")
        good = snapshot_document(snapshot_after(spec, 2000))
        broker._store_checkpoint(0, "a", good)
        bad = snapshot_document(snapshot_after(spec, 3000))
        bad["sha256"] = "0" * 64
        broker._store_checkpoint(0, "a", bad)
        assert broker.stats["checkpoints"] == 1
        assert broker._tasks[0].checkpoint.events_processed == 2000

    def test_wrong_spec_shipment_is_ignored(self):
        spec = tight()
        broker = self._broker(spec)
        broker._assign("a")
        foreign = snapshot_document(snapshot_after(tight(seed=9), 2000))
        broker._store_checkpoint(0, "a", foreign)
        assert broker._tasks[0].checkpoint is None

    def test_checkpoints_preloaded_from_disk(self, tmp_path):
        spec = tight()
        save_snapshot(snapshot_after(spec, 2500), checkpoint_path(tmp_path, spec))
        broker = self._broker(spec, checkpoint_dir=str(tmp_path))
        assert broker._tasks[0].checkpoint.events_processed == 2500
        message = broker._assign("a")
        assert parse_document(message["checkpoint"]).events_processed == 2500

    def test_completion_deletes_the_persisted_checkpoint(self, tmp_path):
        spec = tight()
        broker = self._broker(spec, checkpoint_every=2000,
                              checkpoint_dir=str(tmp_path))
        broker._assign("a")
        broker._store_checkpoint(
            0, "a", snapshot_document(snapshot_after(spec, 2000))
        )
        assert checkpoint_path(tmp_path, spec).exists()
        broker._complete(0, "a", execute_spec(spec).to_dict())
        assert not checkpoint_path(tmp_path, spec).exists()
        assert broker._tasks[0].checkpoint is None


# ---------------------------------------------------------------------------
# Distributed drills over the real wire path
# ---------------------------------------------------------------------------
def _wait_for(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestDistributedCheckpointing:
    def test_checkpointed_sweep_is_bit_identical_to_serial(self, tmp_path):
        specs = [tight(iterations=120), tight(iterations=120, seed=1)]
        serial = SerialExecutor().run(specs)
        executor = DistributedExecutor(
            workers=1, lease_seconds=10.0, checkpoint_every=2000,
            checkpoint_dir=str(tmp_path),
        )
        distributed = executor.run(specs)
        for mine, theirs in zip(serial, distributed):
            assert_identical(mine, theirs)
        assert executor.last_stats["checkpoints"] >= 1
        assert executor.last_stats["failed"] == 0
        assert list(tmp_path.glob("*.ckpt.json")) == []  # cleaned on completion

    def test_sigterm_worker_releases_then_replacement_resumes(self):
        # The preemptible-worker drill: SIGTERM mid-spec must produce a clean
        # `release` (exit 0, attempt refunded, snapshot shipped), and the
        # replacement worker must continue from the shipped checkpoint to a
        # bit-identical result.
        spec = tight(iterations=400)
        serial = execute_spec(spec)
        broker = Broker(
            [spec.to_dict()], lease_seconds=10.0, checkpoint_every=2000
        ).start()
        try:
            first = LocalCluster("127.0.0.1", broker.port, 1, heartbeat=0.1)
            try:
                assert _wait_for(lambda: broker.stats["checkpoints"] >= 1)
                first.procs[0].send_signal(signal.SIGTERM)
                assert first.procs[0].wait(timeout=30) == 0
                assert _wait_for(lambda: broker.stats["released"] >= 1, timeout=5)
            finally:
                first.close()
            assert broker.outstanding() == 1  # released, not completed
            with LocalCluster("127.0.0.1", broker.port, 1, heartbeat=0.1):
                events = list(broker.events())
        finally:
            broker.close()
        (kind, position, payload), = events
        assert (kind, position) == ("result", 0)
        assert broker.stats["released"] == 1
        assert broker.stats["resumed"] >= 1
        assert broker.stats["failed"] == 0
        assert_identical(payload, serial)

    def test_sigkilled_worker_resumes_from_shipped_checkpoint(self):
        # The harsher drill: SIGKILL gives the worker no chance to release.
        # The broker already holds its last shipped checkpoint, so the
        # replacement continues mid-spec instead of from zero.
        spec = tight(iterations=400)
        serial = execute_spec(spec)
        broker = Broker(
            [spec.to_dict()], lease_seconds=10.0, checkpoint_every=2000
        ).start()
        try:
            first = LocalCluster("127.0.0.1", broker.port, 1, heartbeat=0.1)
            try:
                assert _wait_for(lambda: broker.stats["checkpoints"] >= 1)
                first.kill(0)
            finally:
                first.close()
            assert _wait_for(lambda: broker.stats["requeued"] >= 1)
            with LocalCluster("127.0.0.1", broker.port, 1, heartbeat=0.1):
                events = list(broker.events())
        finally:
            broker.close()
        (kind, position, payload), = events
        assert (kind, position) == ("result", 0)
        assert broker.stats["resumed"] >= 1
        assert broker.stats["failed"] == 0
        assert_identical(payload, serial)
