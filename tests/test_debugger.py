"""Tests for the auto-snapshot ring and the ``repro debug`` time-travel layer.

The contract under test: banked moments form a bounded, unambiguous ring
(one entry per event count, oldest dropped first); travelling backward
restores the newest banked moment at or before the target and re-advances;
and — because every restore is verified and every advance is deterministic —
revisiting an event count observes bit-identical machine state no matter
how the debugger got there.
"""

import json

import pytest

from repro.errors import ReproError, SnapshotError
from repro.runner import RunSpec
from repro.runner.cli import main
from repro.runner.executor import execute_spec
from repro.snapshot import (
    STRATEGY_NATIVE,
    CheckpointRing,
    load_snapshot,
    ring_path,
    ring_paths,
    snapshot_after,
)
from repro.snapshot.debugger import (
    DebugSession,
    TimeTravelDebugger,
    script_commands,
)


def tight(iterations=60, num_cores=16, seed=0):
    return RunSpec(
        workload="tightloop", params={"iterations": iterations},
        config="WiSync", num_cores=num_cores, seed=seed,
    )


# ---------------------------------------------------------------------------
# CheckpointRing
# ---------------------------------------------------------------------------
class TestCheckpointRing:
    def _snapshots(self, spec, cuts):
        return {cut: snapshot_after(spec, cut) for cut in cuts}

    def test_capacity_prunes_oldest(self):
        spec = tight()
        snaps = self._snapshots(spec, [1000, 2000, 3000, 4000])
        ring = CheckpointRing(3)
        for cut in sorted(snaps):
            ring.push(snaps[cut])
        assert [e.events for e in ring.entries()] == [2000, 3000, 4000]
        assert len(ring) == 3

    def test_push_supersedes_stale_futures(self):
        # After travelling backward and re-advancing, re-captured moments
        # replace the old entries at or past the new event count.
        spec = tight()
        snaps = self._snapshots(spec, [1000, 2000, 3000])
        ring = CheckpointRing(8)
        for cut in [1000, 2000, 3000]:
            ring.push(snaps[cut])
        ring.push(snaps[2000])
        assert [e.events for e in ring.entries()] == [1000, 2000]

    def test_disk_ring_unlinks_dropped_files(self, tmp_path):
        spec = tight()
        snaps = self._snapshots(spec, [1000, 2000, 3000])
        ring = CheckpointRing(2, directory=tmp_path, keep_in_memory=False)
        for cut in sorted(snaps):
            ring.push(snaps[cut])
        assert ring_paths(tmp_path, spec) == [
            ring_path(tmp_path, spec, 2000),
            ring_path(tmp_path, spec, 3000),
        ]
        # Disk-only entries reload (and re-validate) their snapshot.
        entry = ring.newest_at_or_before(2500)
        assert entry.events == 2000 and entry.snapshot is None
        assert entry.load().events_processed == 2000

    def test_ring_files_are_plain_snapshots(self, tmp_path):
        spec = tight()
        ring = CheckpointRing(2, directory=tmp_path)
        ring.push(snapshot_after(spec, 1500))
        loaded = load_snapshot(ring_path(tmp_path, spec, 1500))
        assert loaded.events_processed == 1500
        assert loaded.strategy == STRATEGY_NATIVE

    def test_newest_at_or_before(self):
        spec = tight()
        ring = CheckpointRing(4)
        for cut in [1000, 2000]:
            ring.push(snapshot_after(spec, cut))
        assert ring.newest_at_or_before(999) is None
        assert ring.newest_at_or_before(1000).events == 1000
        assert ring.newest_at_or_before(5000).events == 2000

    def test_rejects_degenerate_configurations(self):
        with pytest.raises(SnapshotError, match="capacity must be >= 1"):
            CheckpointRing(0)
        with pytest.raises(SnapshotError, match="neither a directory nor"):
            CheckpointRing(4, directory=None, keep_in_memory=False)


# ---------------------------------------------------------------------------
# TimeTravelDebugger
# ---------------------------------------------------------------------------
class TestTimeTravelDebugger:
    def test_step_banks_interval_checkpoints(self):
        debugger = TimeTravelDebugger(spec=tight(), interval=1000, capacity=8)
        debugger.step(3000)
        assert debugger.events == 3000
        assert debugger.inspect()["ring"] == [1000, 2000, 3000]
        assert debugger.last_restore is None

    def test_back_restores_natively_and_revisit_is_bit_identical(self):
        debugger = TimeTravelDebugger(spec=tight(), interval=1000, capacity=8)
        debugger.step(3000)
        seen_clock = debugger.clock
        seen_stats = debugger.stats()
        hop = debugger.back()
        assert hop == {
            "target": 2000, "events": 2000, "launched_from": 2000,
            "restored": STRATEGY_NATIVE,
        }
        assert debugger.last_restore == STRATEGY_NATIVE
        debugger.goto(3000)
        assert debugger.clock == seen_clock
        assert debugger.stats() == seen_stats

    def test_goto_backward_launches_from_best_banked_moment(self):
        debugger = TimeTravelDebugger(spec=tight(), interval=1000, capacity=8)
        debugger.step(4000)
        hop = debugger.goto(2500)
        assert hop["launched_from"] == 2000
        assert hop["restored"] == STRATEGY_NATIVE
        assert debugger.events == 2500

    def test_back_past_the_ring_lands_on_genesis(self):
        debugger = TimeTravelDebugger(spec=tight(), interval=1000, capacity=8)
        debugger.step(2000)
        hop = debugger.back(10)
        assert hop["launched_from"] == 0
        assert debugger.events == 0

    def test_goto_below_genesis_is_an_error(self):
        snapshot = snapshot_after(tight(), 2000)
        debugger = TimeTravelDebugger(snapshot=snapshot, interval=1000)
        with pytest.raises(ReproError, match="starts at event 2000"):
            debugger.goto(1999)

    def test_result_after_time_travel_matches_uninterrupted(self):
        spec = tight()
        full = execute_spec(spec)
        debugger = TimeTravelDebugger(spec=spec, interval=1000, capacity=8)
        debugger.step(3000)
        debugger.back(2)
        debugger.run()
        assert debugger.complete()
        result = debugger.result()
        assert result["total_cycles"] == full.total_cycles
        assert result["events_processed"] == full.events_processed

    def test_result_before_completion_is_an_error(self):
        debugger = TimeTravelDebugger(spec=tight(), interval=1000)
        debugger.step(1000)
        with pytest.raises(ReproError, match="still in flight"):
            debugger.result()

    def test_threads_view_shows_frame_stacks(self):
        debugger = TimeTravelDebugger(spec=tight(), interval=1000)
        debugger.step(2000)
        rows = debugger.threads()
        assert rows
        bodies = " ".join(row["body"] for row in rows)
        assert "tightloop.body@" in bodies

    def test_save_writes_a_restorable_snapshot(self, tmp_path):
        debugger = TimeTravelDebugger(spec=tight(), interval=1000)
        debugger.step(2000)
        path = tmp_path / "moment.ckpt.json"
        saved = debugger.save(str(path))
        assert saved.strategy == STRATEGY_NATIVE
        assert load_snapshot(path).events_processed == 2000

    def test_requires_exactly_one_starting_point(self):
        with pytest.raises(ReproError, match="exactly one"):
            TimeTravelDebugger()
        with pytest.raises(ReproError, match="exactly one"):
            TimeTravelDebugger(
                spec=tight(), snapshot=snapshot_after(tight(), 1000)
            )


# ---------------------------------------------------------------------------
# DebugSession command interpreter
# ---------------------------------------------------------------------------
class TestDebugSession:
    def _session(self, **kwargs):
        lines = []
        debugger = TimeTravelDebugger(
            spec=tight(), interval=1000, capacity=8, **kwargs
        )
        return DebugSession(debugger, emit=lines.append), lines

    def test_script_commands_split(self):
        assert script_commands("step 100; back ;; quit") == [
            "step 100", "back", "quit",
        ]

    def test_unique_prefixes_resolve(self):
        session, lines = self._session()
        session.execute("g 1500")  # only 'goto' starts with g
        assert session.debugger.events == 1500
        session.execute("i")
        assert json.loads(lines[-1])["events"] == 1500

    def test_ambiguous_prefix_is_reported(self):
        session, lines = self._session()
        assert session.execute("s 100") is True  # save/stats/step collide
        assert "ambiguous" in lines[-1]
        assert session.debugger.events == 0  # nothing moved

    def test_unknown_command_is_reported(self):
        session, lines = self._session()
        assert session.execute("warp 9") is True
        assert "unknown command" in lines[-1]

    def test_errors_are_printed_not_raised(self):
        session, lines = self._session()
        session.run(["goto -5", "quit"])
        assert any("error:" in line for line in lines)

    def test_scripted_session_time_travels(self):
        session, lines = self._session()
        exit_code = session.run(script_commands(
            "step 3000; back; inspect; continue; result; quit"
        ))
        assert exit_code == 0
        text = "\n".join(lines)
        assert "travelled via native restore of checkpoint @2000" in text
        assert '"last_restore": "native"' in text
        assert '"completed": true' in text


# ---------------------------------------------------------------------------
# CLI plumbing: repro debug --exec and repro run --auto-snapshot
# ---------------------------------------------------------------------------
class TestDebugCli:
    def test_debug_exec_from_spec(self, capsys):
        exit_code = main([
            "debug", "--workload", "tightloop", "--param", "iterations=60",
            "--cores", "16", "--interval", "1000",
            "--exec", "step 3000; back; quit",
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "debugging [tightloop[iterations=60]" in out
        assert "travelled via native restore of checkpoint @2000" in out

    def test_debug_from_ring_file(self, tmp_path, capsys):
        spec = tight()
        ring = CheckpointRing(2, directory=tmp_path)
        ring.push(snapshot_after(spec, 2000))
        path = ring_path(tmp_path, spec, 2000)
        exit_code = main([
            "debug", "--from", str(path), "--interval", "1000",
            "--exec", "inspect; quit",
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert '"genesis": 2000' in out

    def test_debug_needs_exactly_one_source(self, capsys):
        assert main(["debug"]) != 0
        assert main([
            "debug", "--workload", "tightloop", "--from", "x.json",
        ]) != 0

    def test_run_auto_snapshot_banks_ring_files(self, tmp_path, capsys):
        exit_code = main([
            "run", "fig7", "--configs", "WiSync", "--cores", "16",
            "--iterations", "200", "--checkpoint-every", "3000",
            "--auto-snapshot", "2", "--run-id", "drill",
            "--runs-dir", str(tmp_path), "--quiet",
        ])
        assert exit_code == 0
        checkpoints = tmp_path / "drill" / "checkpoints"
        ring_files = sorted(checkpoints.glob("*.ring-*.ckpt.json"))
        # The trail survives completion, pruned to the last K per spec...
        assert ring_files
        by_spec = {}
        for path in ring_files:
            by_spec.setdefault(path.name.split(".ring-")[0], []).append(path)
        assert all(len(paths) <= 2 for paths in by_spec.values())
        # ...while the single-cursor checkpoint files are gone.
        assert not [
            p for p in checkpoints.glob("*.ckpt.json") if ".ring-" not in p.name
        ]
        # Any ring file boots the debugger.
        exit_code = main([
            "debug", "--from", str(ring_files[-1]), "--exec", "inspect; quit",
        ])
        assert exit_code == 0

    def test_auto_snapshot_validation(self, tmp_path, capsys):
        # Needs --checkpoint-every to have anything to bank.
        assert main([
            "run", "fig7", "--quick", "--auto-snapshot", "4",
            "--runs-dir", str(tmp_path), "--quiet",
        ]) != 0
        # Needs a manifest for the checkpoints/ directory.
        assert main([
            "run", "fig7", "--quick", "--auto-snapshot", "4",
            "--checkpoint-every", "3000", "--no-manifest", "--quiet",
        ]) != 0
