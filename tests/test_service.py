"""Tests for the multi-tenant sweep service (`repro serve`).

Unit layers drive the :class:`JobStore` state machine directly (no sockets);
the socket layer exercises the real TCP plane with raw JSON-lines clients;
the e2e layer runs whole sweeps through HTTP + live workers and holds the
results to the paper contract: bit-identical to :class:`SerialExecutor`,
with the short-circuit/coalescing counters proving overlapping submissions
never reach a worker twice.
"""

import json
import socket
import threading
import time

import pytest

from repro.errors import ConfigurationError, ExecutionError, ServiceError
from repro.experiments.fig7_tightloop import fig7_sweep
from repro.machine.results import SimResult
from repro.runner import ResultCache, Runner, RunSpec, SerialExecutor, SweepSpec
from repro.runner.chaos import results_identical
from repro.runner.distributed import run_worker
from repro.runner.executor import execute_spec
from repro.runner.journal import ServiceJournal
from repro.runner.service_client import ServiceClient, ServiceExecutor
from repro.service import (
    JOB_CANCELLED,
    JOB_COMPLETED,
    JOB_FAILED,
    JOB_QUEUED,
    JobStore,
    SweepService,
    format_task_id,
    parse_task_id,
)


def tightloop_spec(num_cores=8, iterations=2):
    return RunSpec(
        workload="tightloop", params={"iterations": iterations},
        config="WiSync", num_cores=num_cores,
    )


def small_sweep(name="unit", cores=(4, 8), iterations=2):
    return SweepSpec(
        name=name,
        specs=tuple(tightloop_spec(c, iterations) for c in cores),
    )


def finish(store, message, worker):
    """Execute an assigned task message like a real worker would."""
    assert message["type"] == "task"
    job_id, position = parse_task_id(message["task"])
    result = execute_spec(RunSpec.from_dict(message["payload"])).to_dict()
    store.complete(job_id, position, worker, result)
    return job_id, position


class TestTaskId:
    def test_roundtrip(self):
        assert parse_task_id(format_task_id("job-1", 7)) == ("job-1", 7)

    def test_job_ids_containing_slashes_roundtrip(self):
        assert parse_task_id(format_task_id("a/b", 0)) == ("a/b", 0)

    def test_foreign_ids_are_rejected(self):
        assert parse_task_id(3) is None
        assert parse_task_id("no-separator") is None
        assert parse_task_id("job/x") is None
        assert parse_task_id("/3") is None


class TestJobStoreBasics:
    def test_submit_assign_complete_roundtrip(self):
        store = JobStore()
        job = store.submit(small_sweep())
        assert job["state"] == JOB_QUEUED and job["total"] == 2
        store.claim_worker("w")
        for _ in range(2):
            finish(store, store.assign("w"), "w")
        summary = store.job_summary(job["job"])
        assert summary["state"] == JOB_COMPLETED
        assert summary["done"] == 2
        assert store.assign("w")["type"] == "idle"  # never drains

    def test_empty_sweep_is_rejected(self):
        with pytest.raises(ConfigurationError, match="no specs"):
            JobStore().submit(SweepSpec(name="empty"))

    def test_duplicate_job_id_is_rejected(self):
        store = JobStore()
        store.submit(small_sweep(), job_id="fixed")
        with pytest.raises(ServiceError, match="already registered"):
            store.submit(small_sweep(), job_id="fixed")

    def test_bad_priority_is_rejected(self):
        with pytest.raises(ConfigurationError, match="priority"):
            JobStore().submit(small_sweep(), priority=0)

    def test_worker_name_collisions_get_ordinals(self):
        store = JobStore()
        assert store.claim_worker("host-1") == "host-1"
        assert store.claim_worker("host-1") == "host-1#2"
        assert store.claim_worker("host-1") == "host-1#3"
        store.drop_worker("host-1#2")
        assert store.claim_worker("host-1") == "host-1#2"

    def test_per_job_exclusion_does_not_leak_across_jobs(self):
        # One tenant's crashing spec excludes the worker for *that* spec
        # only: the other job's identical-core spec still assigns to it.
        store = JobStore(max_attempts=2)
        a = store.submit(small_sweep("a", cores=(4,)))
        b = store.submit(small_sweep("b", cores=(8,)))
        store.claim_worker("w")
        store.claim_worker("v")
        message = store.assign("w")
        job_id, position = parse_task_id(message["task"])
        assert job_id == a["job"]
        store.error(job_id, position, "w", "boom")
        # Job a's spec now excludes w; job b's spec must not.
        message = store.assign("w")
        assert parse_task_id(message["task"])[0] == b["job"]


class TestFairShare:
    def test_priority_weights_the_interleaving(self):
        store = JobStore()
        # Distinct iteration counts keep the two grids from coalescing.
        lo = store.submit(
            small_sweep("lo", cores=(4, 8, 16), iterations=2), priority=1
        )
        hi = store.submit(
            small_sweep("hi", cores=(4, 8, 16), iterations=3), priority=2
        )
        store.claim_worker("w")
        order = []
        for _ in range(6):
            message = store.assign("w")
            job_id, position = parse_task_id(message["task"])
            order.append("hi" if job_id == hi["job"] else "lo")
            store.complete(
                job_id, position, "w",
                execute_spec(RunSpec.from_dict(message["payload"])).to_dict(),
            )
        # Priority 2 gets two slots for every one of priority 1 while both
        # queues are non-empty (hi drains after its 3 specs), and the
        # schedule is deterministic.
        assert order == ["lo", "hi", "hi", "lo", "hi", "lo"]

    def test_cross_job_coalescing_runs_the_spec_once(self):
        store = JobStore()
        a = store.submit(small_sweep("a", cores=(4,)))
        b = store.submit(small_sweep("b", cores=(4,)))  # identical spec
        store.claim_worker("w")
        finish(store, store.assign("w"), "w")
        assert store.assign("w")["type"] == "idle"  # nothing left to run
        for job in (a, b):
            summary = store.job_summary(job["job"])
            assert summary["state"] == JOB_COMPLETED
        assert store.job_summary(b["job"])["coalesced"] == 1
        assert store.stats["assigned"] == 1
        results_a = store.job_results(a["job"])["runs"]
        results_b = store.job_results(b["job"])["runs"]
        assert results_a[0]["result"] == results_b[0]["result"]

    def test_failed_head_promotes_follower_with_fresh_budget(self):
        store = JobStore(max_attempts=1)
        a = store.submit(small_sweep("a", cores=(4,)))
        b = store.submit(small_sweep("b", cores=(4,)))
        store.claim_worker("w")
        message = store.assign("w")
        job_id, position = parse_task_id(message["task"])
        assert job_id == a["job"]
        store.error(job_id, position, "w", "boom")
        assert store.job_summary(a["job"])["state"] == JOB_FAILED
        # The follower re-runs under its own (fresh) attempt budget.
        message = store.assign("w")
        assert parse_task_id(message["task"])[0] == b["job"]
        finish(store, message, "w")
        assert store.job_summary(b["job"])["state"] == JOB_COMPLETED


class TestCacheShortCircuit:
    def test_cached_spec_never_reaches_a_worker(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = tightloop_spec(4)
        cache.put(spec, execute_spec(spec))
        store = JobStore(cache=cache)
        job = store.submit(small_sweep(cores=(4, 8)))
        summary = store.job_summary(job["job"])
        assert summary["short_circuited"] == 1
        assert summary["done"] == 1 and summary["pending"] == 1
        store.claim_worker("w")
        message = store.assign("w")
        assert RunSpec.from_dict(message["payload"]).num_cores == 8
        finish(store, message, "w")
        assert store.job_summary(job["job"])["state"] == JOB_COMPLETED
        assert store.stats["assigned"] == 1
        # The results payload marks which runs were answered from cache.
        runs = store.job_results(job["job"])["runs"]
        assert [run["cached"] for run in runs] == [True, False]

    def test_completed_results_are_banked_for_the_next_job(self, tmp_path):
        store = JobStore(cache=ResultCache(tmp_path / "cache"))
        store.submit(small_sweep("first", cores=(4,)))
        store.claim_worker("w")
        finish(store, store.assign("w"), "w")
        second = store.submit(small_sweep("second", cores=(4,)))
        assert store.job_summary(second["job"])["state"] == JOB_COMPLETED
        assert store.job_summary(second["job"])["short_circuited"] == 1
        assert store.stats["assigned"] == 1


class TestCancellation:
    def test_cancel_drops_queued_and_refunds_leased_once(self):
        store = JobStore()
        job = store.submit(small_sweep(cores=(4, 8)))
        store.claim_worker("w")
        message = store.assign("w")
        cancelled = store.cancel(job["job"])
        assert cancelled["state"] == JOB_CANCELLED
        assert cancelled["refunded"] == 1  # the leased spec, exactly once
        assert cancelled["cancelled"] == 2
        assert store.queue_depth() == 0
        # Cancelling again reports "nothing to do".
        assert store.cancel(job["job"]) is None
        # The straggler's eventual report lands on a terminal task:
        # counted as a duplicate, not a crash, and not a state change.
        job_id, position = parse_task_id(message["task"])
        result = execute_spec(RunSpec.from_dict(message["payload"])).to_dict()
        store.complete(job_id, position, "w", result)
        assert store.stats["duplicates"] == 1
        assert store.job_summary(job["job"])["state"] == JOB_CANCELLED

    def test_cancelled_heads_follower_is_promoted(self):
        store = JobStore()
        a = store.submit(small_sweep("a", cores=(4,)))
        b = store.submit(small_sweep("b", cores=(4,)))
        store.claim_worker("w")
        message = store.assign("w")
        assert parse_task_id(message["task"])[0] == a["job"]
        store.cancel(a["job"])
        message = store.assign("w")
        assert parse_task_id(message["task"])[0] == b["job"]
        finish(store, message, "w")
        assert store.job_summary(b["job"])["state"] == JOB_COMPLETED

    def test_straggler_result_completes_the_promoted_successor(self, tmp_path):
        # Job a's lease is cancelled while job b re-runs the same key: the
        # straggler's valid result is banked and completes b immediately.
        store = JobStore(cache=ResultCache(tmp_path / "cache"))
        a = store.submit(small_sweep("a", cores=(4,)))
        b = store.submit(small_sweep("b", cores=(4,)))
        store.claim_worker("w")
        message = store.assign("w")
        store.cancel(a["job"])
        job_id, position = parse_task_id(message["task"])
        result = execute_spec(RunSpec.from_dict(message["payload"])).to_dict()
        store.complete(job_id, position, "w", result)
        assert store.job_summary(b["job"])["state"] == JOB_COMPLETED
        assert store.stats["assigned"] == 1


class TestRecovery:
    def test_restart_replays_jobs_and_refunds_inflight(self, tmp_path):
        journal = ServiceJournal(tmp_path / "journal")
        store = JobStore(journal=journal)
        job = store.submit(small_sweep(cores=(4, 8)), name="night", priority=3)
        store.claim_worker("w")
        finish(store, store.assign("w"), "w")   # one spec done
        store.assign("w")                       # one spec in flight at death
        # SIGKILL: no graceful close; a fresh store replays the same dir.
        restarted = JobStore(journal=ServiceJournal(tmp_path / "journal"))
        assert restarted.recover() == 1
        summary = restarted.job_summary(job["job"])
        assert summary["name"] == "night"
        assert summary["priority"] == 3
        assert summary["done"] == 1      # finished spec re-emitted, not re-run
        assert summary["pending"] == 1   # in-flight lease refunded to ready
        assert restarted.stats["replayed"] == 1
        task = restarted._jobs[job["job"]].tasks[1]
        assert task.attempts == 0        # broker death is not worker fault
        restarted.claim_worker("w")
        finish(restarted, restarted.assign("w"), "w")
        assert restarted.job_summary(job["job"])["state"] == JOB_COMPLETED

    def test_cancelled_job_stays_cancelled_after_restart(self, tmp_path):
        store = JobStore(journal=ServiceJournal(tmp_path / "journal"))
        job = store.submit(small_sweep())
        store.cancel(job["job"])
        restarted = JobStore(journal=ServiceJournal(tmp_path / "journal"))
        assert restarted.recover() == 1
        assert restarted.job_summary(job["job"])["state"] == JOB_CANCELLED
        assert restarted.queue_depth() == 0

    def test_recovery_does_not_rejournal(self, tmp_path):
        store = JobStore(journal=ServiceJournal(tmp_path / "journal"))
        store.submit(small_sweep())
        path = tmp_path / "journal" / "journal.jsonl"
        before = path.read_text()
        restarted = JobStore(journal=ServiceJournal(tmp_path / "journal"))
        restarted.recover()
        assert path.read_text() == before


class TestServiceBrokerSocket:
    def _hello(self, port, payload):
        sock = socket.create_connection(("127.0.0.1", port))
        reader = sock.makefile("r", encoding="utf-8")
        sock.sendall((json.dumps(payload) + "\n").encode())
        reply = json.loads(reader.readline())
        return sock, reader, reply

    def test_bad_token_is_rejected(self):
        with SweepService(token="sekrit") as svc:
            sock, _, reply = self._hello(
                svc.worker_address[1],
                {"type": "hello", "worker": "spy", "token": "wrong"},
            )
            assert reply["type"] == "reject"
            sock.close()

    def test_welcome_assigns_unique_worker_names(self):
        with SweepService() as svc:
            port = svc.worker_address[1]
            sock1, _, reply1 = self._hello(port, {"type": "hello", "worker": "twin"})
            sock2, _, reply2 = self._hello(port, {"type": "hello", "worker": "twin"})
            assert reply1["worker"] == "twin"
            assert reply2["worker"] == "twin#2"
            sock1.close()
            sock2.close()

    def test_idle_reply_never_drains(self):
        with SweepService() as svc:
            sock, reader, _ = self._hello(
                svc.worker_address[1], {"type": "hello", "worker": "w"}
            )
            sock.sendall(b'{"type": "next"}\n')
            assert json.loads(reader.readline())["type"] == "idle"
            sock.close()


def _poll_terminal(client, job_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        summary = client.job(job_id)
        if summary["state"] in ("completed", "failed", "cancelled"):
            return summary
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not settle in {timeout}s")


class TestHttpApi:
    def test_statuses_and_streaming(self, tmp_path):
        with SweepService(cache_dir=str(tmp_path / "cache")) as svc:
            client = ServiceClient(svc.http_url)
            assert client.healthz() == {"status": "ok"}
            with pytest.raises(ServiceError, match="404"):
                client.job("nope")
            with pytest.raises(ServiceError, match="404"):
                client.cancel("nope")
            with pytest.raises(ServiceError, match="400"):
                client.submit(SweepSpec(name="empty"))
            job = client.submit(small_sweep(), name="probe", priority=2)
            assert job["name"] == "probe"
            # Results on a non-terminal job: 409 unless ?partial=1.
            with pytest.raises(ServiceError, match="409"):
                client.results(job["job"])
            partial = client.results(job["job"], partial=True)
            assert partial["runs"] == []
            assert [j["job"] for j in client.jobs()] == [job["job"]]
            stats = client.stats()
            assert stats["queue_depth"] == 2
            assert stats["service"]["jobs_submitted"] == 1
            cancelled = client.cancel(job["job"])
            assert cancelled["state"] == "cancelled"
            with pytest.raises(ServiceError, match="409"):
                client.cancel(job["job"])

    def test_http_auth_is_enforced(self):
        with SweepService(token="sekrit") as svc:
            open_client = ServiceClient(svc.http_url)
            assert open_client.healthz() == {"status": "ok"}  # always open
            with pytest.raises(ServiceError, match="401"):
                open_client.jobs()
            assert ServiceClient(svc.http_url, token="sekrit").jobs() == []

    def test_client_rejects_non_http_url(self):
        with pytest.raises(ConfigurationError, match="http"):
            ServiceClient("sweephost:7788")


class TestEndToEnd:
    def test_two_clients_overlapping_grids_bit_identical(self, tmp_path):
        # The acceptance scenario: one daemon, two concurrent HTTP clients
        # with overlapping fig7-quick grids, results bit-identical to
        # SerialExecutor, and the overlap never reaches a worker twice.
        sweep_a = fig7_sweep(core_counts=[8, 16], iterations=2)
        sweep_b = fig7_sweep(core_counts=[16, 32], iterations=2)
        overlap = {s.key() for s in sweep_a} & {s.key() for s in sweep_b}
        unique = {s.key() for s in sweep_a} | {s.key() for s in sweep_b}
        assert overlap  # the scenario requires overlapping grids
        with SweepService(cache_dir=str(tmp_path / "cache")) as svc:
            host, port = svc.worker_address
            workers = [
                threading.Thread(
                    target=run_worker, args=(host, port),
                    kwargs={"max_tasks": len(unique)}, daemon=True,
                )
                for _ in range(2)
            ]
            for worker in workers:
                worker.start()
            outcome = {}

            def submit(name, sweep):
                executor = ServiceExecutor(
                    svc.http_url, name=name, poll_seconds=0.05
                )
                outcome[name] = executor.run(list(sweep.specs))

            threads = [
                threading.Thread(target=submit, args=("a", sweep_a)),
                threading.Thread(target=submit, args=("b", sweep_b)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=180)
                assert not thread.is_alive()
            stats = svc.store.stats_snapshot()["service"]
        serial = SerialExecutor()
        for name, sweep in (("a", sweep_a), ("b", sweep_b)):
            expected = serial.run(list(sweep.specs))
            assert len(outcome[name]) == len(expected)
            assert all(
                results_identical(mine, theirs)
                for mine, theirs in zip(outcome[name], expected)
            )
        # Every unique spec ran exactly once; every overlapping spec was
        # answered broker-side (coalesced mid-flight or cache-hit).
        assert stats["assigned"] == len(unique)
        assert stats["coalesced"] + stats["short_circuited"] == len(overlap)

    def test_resubmission_is_all_short_circuit(self, tmp_path):
        sweep = small_sweep(cores=(4, 8))
        with SweepService(cache_dir=str(tmp_path / "cache")) as svc:
            host, port = svc.worker_address
            threading.Thread(
                target=run_worker, args=(host, port),
                kwargs={"max_tasks": 2}, daemon=True,
            ).start()
            client = ServiceClient(svc.http_url)
            first = client.submit(sweep)
            _poll_terminal(client, first["job"])
            second = client.submit(sweep)
            assert second["state"] == "completed"  # settled at submit time
            assert second["short_circuited"] == 2
            first_runs = client.results(first["job"])["runs"]
            second_runs = client.results(second["job"])["runs"]
            assert [r["result"] for r in first_runs] == [
                r["result"] for r in second_runs
            ]
            assert svc.store.stats["assigned"] == 2

    def test_daemon_restart_resumes_queued_job(self, tmp_path):
        # Submit with no workers connected, tear the daemon down, restart on
        # the same journal/cache directories: the job must come back and
        # then run to a result bit-identical to serial.
        sweep = small_sweep(cores=(4, 8))
        dirs = dict(
            journal_dir=str(tmp_path / "journal"),
            cache_dir=str(tmp_path / "cache"),
        )
        with SweepService(**dirs) as svc:
            job = ServiceClient(svc.http_url).submit(sweep, name="survivor")
        with SweepService(**dirs) as svc:
            assert svc.recovered_jobs == 1
            client = ServiceClient(svc.http_url)
            assert client.job(job["job"])["name"] == "survivor"
            host, port = svc.worker_address
            threading.Thread(
                target=run_worker, args=(host, port),
                kwargs={"max_tasks": 2}, daemon=True,
            ).start()
            summary = _poll_terminal(client, job["job"])
            assert summary["state"] == "completed"
            runs = client.results(job["job"])["runs"]
        expected = SerialExecutor().run(list(sweep.specs))
        assert all(
            results_identical(SimResult.from_dict(run["result"]), theirs)
            for run, theirs in zip(runs, expected)
        )

    def test_worker_token_end_to_end(self):
        with SweepService(token="sekrit") as svc:
            host, port = svc.worker_address
            with pytest.raises(ExecutionError, match="rejected"):
                run_worker(host, port, token="wrong")
            client = ServiceClient(svc.http_url, token="sekrit")
            job = client.submit(small_sweep(cores=(4,)))
            threading.Thread(
                target=run_worker, args=(host, port),
                kwargs={"token": "sekrit", "max_tasks": 1}, daemon=True,
            ).start()
            assert _poll_terminal(client, job["job"])["state"] == "completed"


class TestServiceExecutorContract:
    def test_runner_cache_and_manifest_path_composes(self, tmp_path):
        # `repro run --submit` rides the normal Runner path: the local cache
        # filters the grid before submission, so a second run submits nothing.
        sweep = small_sweep(cores=(4, 8))
        with SweepService() as svc:
            host, port = svc.worker_address
            threading.Thread(
                target=run_worker, args=(host, port),
                kwargs={"max_tasks": 2}, daemon=True,
            ).start()
            cache = ResultCache(tmp_path / "cache")
            runner = Runner(
                executor=ServiceExecutor(svc.http_url, poll_seconds=0.05),
                cache=cache,
            )
            first = runner.run(sweep)
            jobs_seen = len(svc.store.list_jobs())
            second = runner.run(sweep)
            assert len(svc.store.list_jobs()) == jobs_seen  # all local hits
        expected = SerialExecutor().run(list(sweep.specs))
        for sweep_result in (first, second):
            assert all(
                results_identical(mine, theirs)
                for (_, mine), theirs in zip(sweep_result, expected)
            )

    def test_failures_surface_after_successes(self):
        specs = [
            tightloop_spec(4),
            RunSpec(
                workload="fault_probe", params={"fail_times": 99},
                config="WiSync", num_cores=4,
            ),
        ]
        with SweepService() as svc:
            host, port = svc.worker_address
            threading.Thread(
                target=run_worker, args=(host, port), daemon=True,
            ).start()
            executor = ServiceExecutor(svc.http_url, poll_seconds=0.05)
            yielded = []
            with pytest.raises(ExecutionError, match="failed after retries"):
                for position, result in executor.run_iter(specs):
                    yielded.append(position)
            assert yielded == [0]  # the good spec still came through

    def test_abandoned_generator_cancels_the_job(self, tmp_path):
        # A client that walks away (Ctrl-C mid-iteration) must not leave its
        # job competing for the shared pool: the generator's cleanup path
        # withdraws it.  Pre-bank one spec in the service cache so the first
        # ``next()`` yields immediately; the second spec has no workers and
        # would hang forever if the close didn't cancel.
        cache = ResultCache(tmp_path / "cache")
        done_spec = tightloop_spec(4)
        cache.put(done_spec, execute_spec(done_spec))
        with SweepService(cache_dir=str(tmp_path / "cache")) as svc:
            executor = ServiceExecutor(svc.http_url, poll_seconds=0.05)
            iterator = executor.run_iter([done_spec, tightloop_spec(8)])
            position, result = next(iterator)
            assert position == 0
            iterator.close()  # walk away with one spec still pending
            jobs = ServiceClient(svc.http_url).jobs()
            assert len(jobs) == 1
            assert jobs[0]["state"] == "cancelled"

    def test_executor_rejects_bad_poll(self):
        with pytest.raises(ConfigurationError, match="poll"):
            ServiceExecutor("http://localhost:1", poll_seconds=0)


class TestCli:
    def test_run_submit_is_exclusive_with_local_executors(self, tmp_path):
        from repro.runner.cli import main

        assert main([
            "run", "fig7", "--quick", "--submit", "http://localhost:1",
            "--parallel", "2", "--no-manifest",
        ]) == 2  # ReproError -> exit 2

    def test_jobs_verbs_against_live_service(self, tmp_path, capsys):
        from repro.runner.cli import main

        with SweepService() as svc:
            job = ServiceClient(svc.http_url).submit(
                small_sweep(), name="cli-probe"
            )
            assert main(["jobs", "list", svc.http_url]) == 0
            listed = capsys.readouterr().out
            assert job["job"] in listed and "cli-probe" in listed
            assert main(["jobs", "show", svc.http_url, job["job"]]) == 0
            shown = capsys.readouterr().out
            assert "tightloop" in shown
            assert main(["jobs", "cancel", svc.http_url, job["job"]]) == 0
            assert "cancelled" in capsys.readouterr().out
            assert main(["jobs", "show", svc.http_url, "missing"]) == 2
            assert "404" in capsys.readouterr().err
