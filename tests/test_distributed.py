"""Fault-injection and wire-path tests for the distributed sweep executor.

Every test here exercises real sockets: the broker binds an ephemeral
localhost port and the workers are genuine ``python -m repro worker``
subprocesses (via :class:`LocalCluster`), so handshake, leases, heartbeats,
retry, exclusion, and drain all run over the actual JSON-lines-over-TCP
protocol.
"""

import json
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import ConfigurationError, ExecutionError
from repro.experiments.fig7_tightloop import fig7_sweep
from repro.runner import (
    Broker,
    DistributedExecutor,
    ResultCache,
    Runner,
    RunSpec,
    SerialExecutor,
)
from repro.runner.distributed import parse_address

SRC = str(Path(__file__).resolve().parent.parent / "src")


def quick_fig7():
    return fig7_sweep(core_counts=[8, 16], iterations=2)


def tightloop_spec(num_cores=8):
    return RunSpec(
        workload="tightloop", params={"iterations": 2},
        config="WiSync", num_cores=num_cores,
    )


def fault_spec(**params):
    return RunSpec(workload="fault_probe", params=params, config="WiSync", num_cores=4)


class TestParseAddress:
    def test_host_and_port(self):
        assert parse_address("sweephost:7787") == ("sweephost", 7787)

    def test_empty_host_means_localhost(self):
        assert parse_address(":7787") == ("127.0.0.1", 7787)

    def test_rejects_missing_port(self):
        with pytest.raises(ConfigurationError, match="HOST:PORT"):
            parse_address("sweephost")


class TestBroker:
    def test_fully_excluded_task_is_still_assignable(self):
        # Liveness: a task whose excluded set covers every connected worker
        # has nobody left to serve it; best-effort assignment beats wedging
        # the sweep forever while all workers poll "idle".
        broker = Broker([tightloop_spec(4).to_dict()], lease_seconds=10.0)
        broker._workers = {"a", "b"}
        broker._tasks[0].excluded = {"a", "b"}
        reply = broker._assign("a")
        assert reply["type"] == "task"

    def test_partially_excluded_task_waits_for_an_eligible_worker(self):
        broker = Broker([tightloop_spec(4).to_dict()], lease_seconds=10.0)
        broker._workers = {"a", "b"}
        broker._tasks[0].excluded = {"a"}
        assert broker._assign("a")["type"] == "idle"
        assert broker._assign("b")["type"] == "task"

    def test_broker_survives_malformed_messages(self):
        # One structurally invalid line (JSON array, missing fields, non-int
        # task id) must not kill the handler thread — the same connection
        # must still complete a normal handshake and assignment afterwards.
        broker = Broker([tightloop_spec(4).to_dict()], lease_seconds=10.0)
        broker.start()
        try:
            sock = socket.create_connection(("127.0.0.1", broker.port))
            reader = sock.makefile("r", encoding="utf-8")
            sock.sendall(
                b'[1, 2, 3]\n'
                b'{"type": "result"}\n'
                b'{"type": "heartbeat", "task": "abc"}\n'
                b'{"type": "hello", "worker": "probe"}\n'
            )
            assert json.loads(reader.readline())["type"] == "welcome"
            sock.sendall(b'{"type": "next"}\n')
            assert json.loads(reader.readline())["type"] == "task"
            sock.close()
        finally:
            broker.close()

    def test_invalid_result_payload_requeues_instead_of_crashing(self):
        # A wrong-shape result dict (version-skewed worker) must be treated
        # as a worker error — requeue with exclusion — not crash the sweep
        # host's event loop after the task already went terminal.
        broker = Broker([tightloop_spec(4).to_dict()], lease_seconds=10.0)
        broker.start()
        try:
            sock = socket.create_connection(("127.0.0.1", broker.port))
            reader = sock.makefile("r", encoding="utf-8")
            sock.sendall(b'{"type": "hello", "worker": "skewed"}\n')
            assert json.loads(reader.readline())["type"] == "welcome"
            sock.sendall(b'{"type": "next"}\n')
            assert json.loads(reader.readline())["type"] == "task"
            sock.sendall(b'{"type": "result", "task": 0, "result": {}}\n')
            # The spec must be assignable again (best-effort fallback: we are
            # the only connected worker, even though we are now excluded).
            sock.sendall(b'{"type": "next"}\n')
            assert json.loads(reader.readline())["type"] == "task"
            sock.close()
        finally:
            broker.close()
        # Two requeues: the invalid payload, then the disconnect while
        # holding the re-assigned lease when the test closes its socket.
        assert broker.stats["requeued"] == 2
        assert broker.stats["completed"] == 0

    def test_worker_rejects_non_positive_heartbeat(self):
        from repro.runner.distributed import run_worker

        with pytest.raises(ConfigurationError, match="heartbeat"):
            run_worker("127.0.0.1", 1, heartbeat=0.0)
        with pytest.raises(ConfigurationError, match="heartbeat"):
            DistributedExecutor(workers=1, heartbeat=-1.0)

    def test_bind_conflict_raises_configuration_error(self):
        blocker = socket.create_server(("127.0.0.1", 0))
        port = blocker.getsockname()[1]
        try:
            with pytest.raises(ConfigurationError, match="cannot bind"):
                Broker([], port=port).start()
        finally:
            blocker.close()


class TestQuickAxes:
    def test_quick_fills_unset_axes_only(self):
        from repro.runner.cli import _apply_quick, build_parser

        args = build_parser().parse_args(["run", "fig7", "--quick"])
        _apply_quick(args)
        assert args.cores == [8, 16]
        assert args.iterations == 2

    def test_quick_respects_explicit_flags_even_at_default_values(self):
        # Regression: --quick used to clobber an explicit --iterations 5
        # because it could not tell it apart from the parser default.
        from repro.runner.cli import _apply_quick, build_parser

        args = build_parser().parse_args(
            ["run", "fig7", "--quick", "--iterations", "5", "--cores", "32"]
        )
        _apply_quick(args)
        assert args.iterations == 5
        assert args.cores == [32]


class TestDistributedExecutor:
    def test_fig7_quick_bit_identical_to_serial(self):
        # The acceptance bar: a fig7 quick grid through two localhost
        # workers must reproduce the serial cycle counts bit-for-bit.
        sweep = quick_fig7()
        serial = SerialExecutor().run(sweep.specs)
        executor = DistributedExecutor(workers=2, lease_seconds=10.0)
        distributed = executor.run(sweep.specs)
        assert len(distributed) == len(serial) == len(sweep)
        for mine, theirs in zip(serial, distributed):
            assert mine.total_cycles == theirs.total_cycles
            assert mine.events_processed == theirs.events_processed
            assert mine.thread_cycles == theirs.thread_cycles
            assert mine.stats.to_dict() == theirs.stats.to_dict()
        assert executor.last_stats["completed"] == len(sweep)
        assert executor.last_stats["failed"] == 0

    def test_worker_killed_mid_spec_completes_via_retry(self):
        # One of the two workers dies (os._exit) the moment its first task
        # is assigned — i.e. while holding a lease.  The broker must detect
        # the dropped connection, requeue with the dead worker excluded, and
        # the surviving worker must finish the sweep bit-identically.
        sweep = quick_fig7()
        serial = SerialExecutor().run(sweep.specs)
        executor = DistributedExecutor(
            workers=2, faults=["exit-on-task", None], lease_seconds=10.0
        )
        distributed = executor.run(sweep.specs)
        assert [r.total_cycles for r in distributed] == [r.total_cycles for r in serial]
        assert [r.events_processed for r in distributed] == [
            r.events_processed for r in serial
        ]
        assert executor.last_stats["disconnects"] >= 1
        assert executor.last_stats["requeued"] >= 1
        assert executor.last_stats["failed"] == 0

    def test_worker_exception_yields_successes_then_structured_error(self):
        specs = [tightloop_spec(8), fault_spec(mode="raise"), tightloop_spec(4)]
        executor = DistributedExecutor(workers=2, lease_seconds=10.0, max_attempts=2)
        received = {}
        with pytest.raises(ExecutionError) as excinfo:
            for position, result in executor.run_iter(specs):
                received[position] = result
        assert sorted(received) == [0, 2]
        failures = excinfo.value.failures
        assert len(failures) == 1
        assert failures[0][0] == specs[1]
        assert "fault_probe" in failures[0][1]
        assert executor.last_stats["failed"] == 1
        assert executor.last_stats["completed"] == 2

    def test_flaky_spec_retries_then_succeeds(self, tmp_path):
        marker = str(tmp_path / "flaky-marker")
        specs = [fault_spec(marker=marker), tightloop_spec(4)]
        executor = DistributedExecutor(workers=1, lease_seconds=10.0)
        results = executor.run(specs)
        assert len(results) == 2
        assert all(result.completed for result in results)
        assert executor.last_stats["requeued"] == 1
        assert executor.last_stats["failed"] == 0

    def test_sick_worker_does_not_burn_the_retry_budget(self):
        # One worker errors instantly on every task (broken environment).
        # Error reports exclude the reporter, so each spec costs at most one
        # wasted attempt and the healthy worker completes the whole sweep.
        sweep = fig7_sweep(core_counts=[8], iterations=2)
        executor = DistributedExecutor(
            workers=2, faults=["error-on-task", None], lease_seconds=10.0
        )
        results = executor.run(sweep.specs)
        assert len(results) == len(sweep)
        assert all(result.completed for result in results)
        assert executor.last_stats["failed"] == 0

    def test_all_workers_dead_aborts_instead_of_hanging(self):
        executor = DistributedExecutor(
            workers=1, faults=["exit-on-task"], lease_seconds=5.0
        )
        with pytest.raises(ExecutionError, match="worker"):
            executor.run([tightloop_spec(4)])
        assert executor.last_stats["failed"] == 1

    def test_heartbeats_keep_a_slow_spec_alive_past_its_lease(self):
        # The spec takes ~1s; the lease is 0.5s.  Without heartbeats the
        # lease would expire and the spec would be reassigned; with them the
        # sweep completes with zero expiries on the first assignment.
        slow = RunSpec(
            workload="tightloop", params={"iterations": 200},
            config="WiSync", num_cores=16,
        )
        executor = DistributedExecutor(workers=1, lease_seconds=0.5, heartbeat=0.1)
        results = executor.run([slow])
        assert results[0].completed
        assert executor.last_stats["expired"] == 0
        assert executor.last_stats["requeued"] == 0
        assert executor.last_stats["assigned"] == 1

    def test_empty_sweep_is_a_no_op(self):
        assert DistributedExecutor(workers=1).run([]) == []

    def test_rejects_negative_worker_count(self):
        with pytest.raises(ConfigurationError):
            DistributedExecutor(workers=-1)


class TestRunnerIntegration:
    def test_runner_cache_and_progress_compose_unchanged(self, tmp_path):
        # The executor honors the run_iter contract, so Runner-level caching
        # and SpecProgress streaming must work without special-casing.
        sweep = fig7_sweep(core_counts=[8], iterations=2)
        events = []
        runner = Runner(
            executor=DistributedExecutor(workers=2, lease_seconds=10.0),
            cache=ResultCache(tmp_path / "cache"),
            progress=events.append,
        )
        first = runner.run(sweep)
        assert (first.num_simulated, first.num_cached) == (len(sweep), 0)
        assert sorted(event.index for event in events) == list(range(len(sweep)))
        assert not any(event.cached for event in events)
        second = runner.run(sweep)
        assert (second.num_simulated, second.num_cached) == (0, len(sweep))
        for spec in sweep:
            assert (
                first.result_for(spec).total_cycles
                == second.result_for(spec).total_cycles
            )


class TestWireProtocol:
    def test_external_cli_worker_drains_a_broker(self):
        # The zero-LocalCluster path: a broker plus a manually launched
        # `python -m repro worker --connect` subprocess, exactly what a
        # remote host would run.
        specs = [tightloop_spec(4), tightloop_spec(8)]
        broker = Broker([spec.to_dict() for spec in specs], lease_seconds=10.0)
        broker.start()
        try:
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "worker",
                    "--connect", f"127.0.0.1:{broker.port}",
                    "--max-tasks", "2",
                ],
                env={"PYTHONPATH": SRC},
                stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE,
                text=True,
            )
            events = dict(
                (position, payload)
                for kind, position, payload in broker.events()
                if kind == "result"
            )
            _, stderr = proc.communicate(timeout=30)
        finally:
            broker.close()
        assert proc.returncode == 0, stderr
        assert "2 specs completed" in stderr
        assert sorted(events) == [0, 1]
        serial = SerialExecutor().run(specs)
        for position, payload in events.items():
            assert payload.total_cycles == serial[position].total_cycles

    def test_broker_death_mid_task_fails_the_worker(self):
        # Regression: a broker dying while the worker holds a task used to be
        # swallowed as a clean drain (exit 0) — and Broker.close() didn't
        # even sever live connections (the handler's makefile() reader holds
        # an io-ref, so close() without shutdown() defers the real FD close).
        slow = RunSpec(
            workload="tightloop", params={"iterations": 600},
            config="WiSync", num_cores=16,
        )
        broker = Broker([slow.to_dict()], lease_seconds=10.0)
        broker.start()
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--connect", f"127.0.0.1:{broker.port}",
                "--heartbeat", "0.1",
            ],
            env={"PYTHONPATH": SRC},
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
        )
        try:
            deadline = time.monotonic() + 30
            while broker.stats["assigned"] == 0:
                assert time.monotonic() < deadline, "task never assigned"
                time.sleep(0.05)
            time.sleep(0.2)  # worker is now mid-spec (the spec takes ~3s)
        finally:
            broker.close()
        _, stderr = proc.communicate(timeout=60)
        assert proc.returncode == 2, stderr
        assert "connection to broker lost" in stderr

    def test_external_worker_keeps_sweep_alive_after_cluster_dies(self):
        # Combined --distributed N --bind mode: the dead-cluster watchdog
        # must not abort while a healthy external worker is still connected.
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        external = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--connect", f"127.0.0.1:{port}",
            ],
            env={"PYTHONPATH": SRC},
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        time.sleep(1.0)  # let the external worker reach its connect-retry loop
        specs = [tightloop_spec(4), tightloop_spec(8), tightloop_spec(16)]
        executor = DistributedExecutor(
            workers=1, port=port, faults=["exit-on-task"], lease_seconds=10.0
        )
        try:
            results = executor.run(specs)
        finally:
            external.wait(timeout=30)
        assert len(results) == 3
        assert all(result.completed for result in results)
        assert executor.last_stats["failed"] == 0
        # (whether the doomed local worker got a task before the external
        # worker drained the sweep is a race; the invariant under test is
        # that the sweep completed without the watchdog aborting it)

    def test_worker_rejects_unknown_fault(self):
        from repro.runner.distributed import run_worker

        with pytest.raises(ConfigurationError, match="unknown worker fault"):
            run_worker("127.0.0.1", 1, fault="set-fire-to-rack")

    def test_worker_against_non_json_peer_fails_cleanly(self):
        # Dialing something that is not a broker (wrong port, an SSH banner)
        # must produce a clean ExecutionError, not a JSONDecodeError trace.
        import threading

        from repro.runner.distributed import run_worker

        server = socket.create_server(("127.0.0.1", 0))
        port = server.getsockname()[1]

        def serve():
            conn, _ = server.accept()
            conn.sendall(b"SSH-2.0-OpenSSH_9.6\r\n")
            time.sleep(0.5)
            conn.close()

        threading.Thread(target=serve, daemon=True).start()
        try:
            with pytest.raises(ExecutionError, match="JSON handshake"):
                run_worker("127.0.0.1", port)
        finally:
            server.close()

    def test_late_external_worker_rescues_a_dead_cluster_on_a_bound_port(self):
        # Combined mode with an explicit --bind: if every local worker dies
        # before any external worker joins, the sweep must keep waiting for
        # the advertised port's joiners, not abort.
        import threading

        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        executor = DistributedExecutor(
            workers=1, port=port, faults=["exit-on-task"], lease_seconds=10.0
        )
        box = {}

        def sweep():
            try:
                box["results"] = executor.run([tightloop_spec(4)])
            except Exception as error:  # noqa: BLE001 - surfaced via assert
                box["error"] = error

        thread = threading.Thread(target=sweep)
        thread.start()
        time.sleep(2.5)  # the doomed local worker has long since exited
        external = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--connect", f"127.0.0.1:{port}",
            ],
            env={"PYTHONPATH": SRC},
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        thread.join(timeout=60)
        external.wait(timeout=30)
        assert not thread.is_alive(), "sweep did not finish"
        assert "error" not in box, box.get("error")
        assert box["results"][0].completed

    def test_worker_fails_cleanly_on_wrong_shape_replies(self):
        # Valid JSON, wrong protocol shape (version skew, some other
        # JSON-lines service): ExecutionError, not a raw KeyError.
        import threading

        from repro.runner.distributed import run_worker

        server = socket.create_server(("127.0.0.1", 0))
        port = server.getsockname()[1]

        def serve():
            conn, _ = server.accept()
            reader = conn.makefile("r", encoding="utf-8")
            reader.readline()  # hello
            conn.sendall(b'{"type": "welcome", "lease_seconds": 5.0}\n')
            reader.readline()  # next
            conn.sendall(b'{"status": "ok"}\n')
            time.sleep(0.5)
            conn.close()

        threading.Thread(target=serve, daemon=True).start()
        try:
            with pytest.raises(ExecutionError, match="protocol error"):
                run_worker("127.0.0.1", port)
        finally:
            server.close()

    def test_worker_rejects_wrong_shape_welcome(self):
        # Valid JSON but not a welcome object (array, bad lease type): the
        # handshake must fail with ExecutionError, not a raw AttributeError.
        import threading

        from repro.runner.distributed import run_worker

        for banner in (b"[1, 2, 3]\n",
                       b'{"type": "welcome", "lease_seconds": "soon"}\n'):
            server = socket.create_server(("127.0.0.1", 0))
            port = server.getsockname()[1]

            def serve(sock=server, line=banner):
                conn, _ = sock.accept()
                conn.makefile("r", encoding="utf-8").readline()  # hello
                conn.sendall(line)
                time.sleep(0.5)
                conn.close()

            threading.Thread(target=serve, daemon=True).start()
            try:
                with pytest.raises(ExecutionError, match="handshake"):
                    run_worker("127.0.0.1", port)
            finally:
                server.close()

    def test_connect_host_resolves_wildcard_binds_to_loopback(self):
        from repro.runner.distributed import connect_host

        assert connect_host("0.0.0.0") == "127.0.0.1"
        assert connect_host("::") == "127.0.0.1"
        assert connect_host("sweephost") == "sweephost"

    def test_wildcard_bind_with_local_workers_completes(self):
        # Combined-mode regression: LocalCluster used to dial the wildcard
        # bind address verbatim, which is not a dialable host everywhere.
        executor = DistributedExecutor(
            workers=1, host="0.0.0.0", lease_seconds=10.0
        )
        results = executor.run([tightloop_spec(4)])
        assert len(results) == 1 and results[0].completed


class TestCli:
    def _repro(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True, text=True, env={"PYTHONPATH": SRC},
        )

    def test_run_fig7_quick_distributed_smoke(self):
        proc = self._repro(
            "run", "fig7", "--quick", "--distributed", "2",
            "--configs", "WiSync,Baseline", "--quiet",
        )
        assert proc.returncode == 0, proc.stderr
        # --quick: cores [8, 16] x 2 configs = 4 grid points
        assert "4 simulated, 0 cached" in proc.stderr
        assert "(distributed=2)" in proc.stderr

    def test_parallel_and_distributed_are_mutually_exclusive(self):
        proc = self._repro(
            "run", "fig7", "--cores", "8", "--parallel", "2", "--distributed", "2"
        )
        assert proc.returncode == 2
        assert "mutually exclusive" in proc.stderr

    def test_distributed_smoke_matches_serial_json(self, tmp_path):
        serial_out = str(tmp_path / "serial.json")
        dist_out = str(tmp_path / "dist.json")
        serial = self._repro(
            "run", "fig7", "--cores", "8", "--iterations", "2",
            "--configs", "WiSync", "--json", serial_out, "--quiet",
        )
        assert serial.returncode == 0, serial.stderr
        distributed = self._repro(
            "run", "fig7", "--cores", "8", "--iterations", "2",
            "--configs", "WiSync", "--distributed", "2", "--json", dist_out, "--quiet",
        )
        assert distributed.returncode == 0, distributed.stderr
        assert json.loads(Path(serial_out).read_text()) == json.loads(
            Path(dist_out).read_text()
        )
