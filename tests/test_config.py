"""Tests for the configuration dataclasses."""

import dataclasses

import pytest

from repro.config import (
    BackoffConfig,
    BroadcastMemoryConfig,
    CacheConfig,
    DataChannelConfig,
    MachineConfig,
    MemoryConfig,
    NocConfig,
    SyncConfig,
    ToneChannelConfig,
    default_machine_config,
)
from repro.errors import ConfigurationError
from repro.machine.configs import (
    baseline,
    baseline_plus,
    config_by_name,
    paper_configurations,
    sensitivity_variants,
    wisync,
    wisync_not,
)


class TestCacheConfig:
    def test_default_l1_geometry_matches_table1(self):
        cache = CacheConfig()
        assert cache.l1_size_kb == 32
        assert cache.l1_assoc == 2
        assert cache.l1_latency == 2
        assert cache.line_bytes == 64

    def test_l1_sets_derived_from_size(self):
        cache = CacheConfig()
        assert cache.l1_sets == 32 * 1024 // (64 * 2)

    def test_l2_sets_per_bank(self):
        cache = CacheConfig()
        assert cache.l2_sets_per_bank == 512 * 1024 // (64 * 8)

    def test_rejects_non_power_of_two_lines(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(line_bytes=48).validate()

    @pytest.mark.parametrize("field", ["l1_size_kb", "l1_latency", "l2_bank_size_kb", "l2_latency"])
    def test_rejects_non_positive_fields(self, field):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(CacheConfig(), **{field: 0}).validate()


class TestBroadcastMemoryConfig:
    def test_default_matches_table1(self):
        bm = BroadcastMemoryConfig()
        assert bm.size_kb == 16
        assert bm.round_trip == 2
        assert bm.entry_bits == 64

    def test_num_entries_is_2048_for_16kb(self):
        assert BroadcastMemoryConfig().num_entries == 2048

    def test_address_bits_cover_all_entries(self):
        bm = BroadcastMemoryConfig()
        assert bm.num_entries <= (1 << bm.address_bits)

    def test_pages(self):
        bm = BroadcastMemoryConfig()
        assert bm.num_pages == 4
        assert bm.entries_per_page == 512

    def test_too_few_address_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            BroadcastMemoryConfig(size_kb=64, address_bits=11).validate()

    def test_unusual_entry_width_rejected(self):
        with pytest.raises(ConfigurationError):
            BroadcastMemoryConfig(entry_bits=128).validate()


class TestDataChannelConfig:
    def test_message_format_is_77_bits(self):
        channel = DataChannelConfig()
        assert channel.message_bits == 64 + 11 + 2

    def test_required_bandwidth_about_19_gbps(self):
        channel = DataChannelConfig()
        assert 19.0 <= channel.required_bandwidth_gbps <= 19.5

    def test_collision_penalty_is_two_cycles(self):
        assert DataChannelConfig().collision_penalty_cycles == 2

    def test_bulk_shorter_than_four_singles(self):
        channel = DataChannelConfig()
        assert channel.bulk_message_cycles < 4 * channel.message_cycles

    def test_collision_detect_must_precede_end(self):
        with pytest.raises(ConfigurationError):
            DataChannelConfig(message_cycles=2, collision_detect_cycle=3).validate()

    def test_bulk_cannot_be_shorter_than_single(self):
        with pytest.raises(ConfigurationError):
            DataChannelConfig(bulk_message_cycles=3).validate()


class TestNocConfig:
    def test_default_hop_latency(self):
        assert NocConfig().hop_latency == 4

    def test_cycles_per_flit(self):
        noc = NocConfig(link_bits=128)
        assert noc.cycles_per_flit(64) == 1
        assert noc.cycles_per_flit(128) == 1
        assert noc.cycles_per_flit(512) == 4

    def test_rejects_zero_hop_latency(self):
        with pytest.raises(ConfigurationError):
            NocConfig(hop_latency=0).validate()


class TestSyncAndBackoffConfig:
    def test_unknown_lock_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            SyncConfig(lock_kind="ticket").validate()

    def test_unknown_barrier_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            SyncConfig(barrier_kind="dissemination").validate()

    def test_unknown_backoff_rejected(self):
        with pytest.raises(ConfigurationError):
            BackoffConfig(kind="aloha").validate()

    @pytest.mark.parametrize("kind", ["broadcast_aware", "exponential", "fixed"])
    def test_known_backoff_kinds_accepted(self, kind):
        BackoffConfig(kind=kind).validate()


class TestMachineConfig:
    def test_default_is_valid(self):
        default_machine_config().validate()

    def test_mesh_width_covers_cores(self):
        for cores in (1, 4, 16, 60, 64, 100, 128, 256):
            config = MachineConfig(num_cores=cores)
            assert config.mesh_width ** 2 >= cores

    def test_with_cores_returns_new_config(self):
        config = default_machine_config(64)
        other = config.with_cores(128)
        assert other.num_cores == 128
        assert config.num_cores == 64

    def test_wireless_sync_requires_wireless_hardware(self):
        bad = MachineConfig(
            wisync_enabled=False,
            sync=SyncConfig(lock_kind="wireless", barrier_kind="centralized"),
            tone_channel=ToneChannelConfig(enabled=False),
        )
        with pytest.raises(ConfigurationError):
            bad.validate()

    def test_tone_barrier_requires_tone_channel(self):
        bad = MachineConfig(
            tone_channel=ToneChannelConfig(enabled=False),
            sync=SyncConfig(lock_kind="wireless", barrier_kind="tone"),
        )
        with pytest.raises(ConfigurationError):
            bad.validate()

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(num_cores=0).validate()

    def test_memory_config_validation(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig(controllers=0).validate()


class TestPaperConfigurations:
    def test_four_configurations(self):
        configs = paper_configurations(num_cores=16)
        assert [c.name for c in configs] == ["baseline", "baseline+", "wisync-not", "wisync"]

    def test_baseline_has_no_wireless(self):
        config = baseline(16)
        assert not config.wisync_enabled
        assert config.sync.barrier_kind == "centralized"
        assert config.sync.lock_kind == "cas_spin"

    def test_baseline_plus_uses_tree_mcs_tournament(self):
        config = baseline_plus(16)
        assert config.noc.tree_broadcast
        assert config.sync.lock_kind == "mcs"
        assert config.sync.barrier_kind == "tournament"

    def test_wisync_not_has_no_tone_channel(self):
        config = wisync_not(16)
        assert config.wisync_enabled
        assert not config.tone_channel.enabled
        assert config.sync.barrier_kind == "wireless"

    def test_wisync_uses_tone_barriers(self):
        config = wisync(16)
        assert config.tone_channel.enabled
        assert config.sync.barrier_kind == "tone"

    @pytest.mark.parametrize("name", ["baseline", "baseline+", "wisync-not", "wisync", "WiSync"])
    def test_config_by_name(self, name):
        assert config_by_name(name, 16).num_cores == 16

    def test_config_by_name_unknown(self):
        with pytest.raises(ConfigurationError):
            config_by_name("tls-sync")

    def test_sensitivity_variants_match_table6(self):
        variants = sensitivity_variants(wisync(16))
        assert set(variants) == {"Default", "SlowNet", "SlowNet+L2", "FastNet", "SlowBMEM"}
        assert variants["SlowNet"].noc.hop_latency == 6
        assert variants["SlowNet+L2"].cache.l2_latency == 12
        assert variants["FastNet"].noc.hop_latency == 2
        assert variants["SlowBMEM"].bm.round_trip == 4
        assert variants["Default"].noc.hop_latency == 4
