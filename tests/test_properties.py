"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import BroadcastMemoryConfig, CacheConfig, MemoryConfig
from repro.core.allocator import BmAllocator
from repro.core.broadcast_memory import BroadcastMemory
from repro.mem.address import AddressMap
from repro.mem.cache import CacheArray
from repro.mem.directory import Directory, LineState
from repro.mem.hierarchy import apply_rmw
from repro.isa.operations import RmwKind
from repro.noc.topology import MeshTopology
from repro.sim.engine import Simulator
from repro.sim.rng import DeterministicRng
from repro.wireless.backoff import BroadcastAwareBackoff, ExponentialBackoff

COMMON_SETTINGS = settings(max_examples=50, deadline=None,
                           suppress_health_check=[HealthCheck.too_slow])


@COMMON_SETTINGS
@given(st.integers(min_value=1, max_value=300))
def test_mesh_fits_all_nodes_and_distances_symmetric(num_nodes):
    topo = MeshTopology.square_for(num_nodes)
    assert topo.width * topo.height >= num_nodes
    first, last = 0, num_nodes - 1
    assert topo.hop_distance(first, last) == topo.hop_distance(last, first)
    assert topo.hop_distance(first, first) == 0


@COMMON_SETTINGS
@given(st.lists(st.integers(min_value=0, max_value=2 ** 32), min_size=1, max_size=30))
def test_event_queue_fires_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@COMMON_SETTINGS
@given(st.lists(st.integers(min_value=0, max_value=10 ** 6), min_size=1, max_size=100),
       st.integers(min_value=1, max_value=8))
def test_cache_occupancy_never_exceeds_capacity(lines, assoc):
    cache = CacheArray(num_sets=4, associativity=assoc, line_bytes=64)
    for line in lines:
        cache.fill(line)
    assert cache.occupancy <= 4 * assoc
    for line in cache.resident_lines():
        assert cache.contains(line)


@COMMON_SETTINGS
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=7),
                          st.booleans()), min_size=1, max_size=60))
def test_directory_invariants_under_random_traffic(operations):
    directory = Directory()
    line = 42
    for core, is_write in operations:
        if is_write:
            directory.record_write(line, core)
        else:
            directory.record_read(line, core)
    entry = directory.entry(line)
    if entry.state is LineState.MODIFIED:
        assert entry.owner is not None
        assert entry.sharers == set()
    if entry.state is LineState.SHARED:
        assert entry.sharers


@COMMON_SETTINGS
@given(st.integers(min_value=0, max_value=2 ** 63), st.integers(min_value=0, max_value=1000),
       st.integers(min_value=0, max_value=2 ** 63))
def test_rmw_semantics_properties(old, operand, expected):
    new, success = apply_rmw(RmwKind.FETCH_AND_ADD, old, operand, expected)
    assert new == old + operand and success
    new, success = apply_rmw(RmwKind.COMPARE_AND_SWAP, old, operand, expected)
    if old == expected:
        assert success and new == operand
    else:
        assert not success and new == old


@COMMON_SETTINGS
@given(st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=40))
def test_allocator_never_double_allocates(requests):
    allocator = BmAllocator(BroadcastMemoryConfig())
    seen = set()
    for pid, words in enumerate(requests, start=1):
        allocation = allocator.allocate(pid=pid, words=words)
        addresses = set(allocation.addresses)
        if not allocation.spilled:
            assert not (addresses & seen)
        seen |= addresses
    assert allocator.allocated_count <= allocator.capacity


@COMMON_SETTINGS
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=63),
                          st.integers(min_value=0, max_value=2 ** 64 - 1)),
                min_size=1, max_size=50))
def test_broadcast_memory_read_write_roundtrip(writes):
    bm = BroadcastMemory(BroadcastMemoryConfig())
    shadow = {}
    for addr, value in writes:
        bm.write(addr, value)
        shadow[addr] = value & ((1 << 64) - 1)
    for addr, value in shadow.items():
        assert bm.read(addr) == value


@COMMON_SETTINGS
@given(st.integers(min_value=0, max_value=2 ** 40), st.integers(min_value=2, max_value=64))
def test_address_map_homes_are_stable_and_in_range(addr, cores):
    amap = AddressMap(CacheConfig(), MemoryConfig(), cores)
    home = amap.home_bank(addr)
    assert 0 <= home < cores
    assert amap.home_bank(addr) == home
    assert amap.line_base(addr) <= addr < amap.line_base(addr) + 64


@COMMON_SETTINGS
@given(st.lists(st.sampled_from(["collision", "success", "observed"]), min_size=1, max_size=200))
def test_backoff_policies_stay_in_valid_ranges(events):
    rng = DeterministicRng(3, "prop")
    exponential = ExponentialBackoff(rng.child("e"), max_exponent=8)
    adaptive = BroadcastAwareBackoff(rng.child("a"), max_window=128)
    for event in events:
        if event == "collision":
            assert 0 <= exponential.on_collision() <= 255
            assert 0 <= adaptive.on_collision() <= 127
        elif event == "success":
            exponential.on_success()
            adaptive.on_success()
        else:
            exponential.on_observed_success()
            adaptive.on_observed_success()
        assert 0 <= exponential.exponent <= 8
        assert 1.0 <= adaptive.estimate <= 128


@COMMON_SETTINGS
@given(st.integers(min_value=0, max_value=10 ** 6), st.text(min_size=1, max_size=10))
def test_rng_streams_are_reproducible(seed, name):
    a = DeterministicRng(seed, name)
    b = DeterministicRng(seed, name)
    assert [a.randint(0, 1000) for _ in range(10)] == [b.randint(0, 1000) for _ in range(10)]
