"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig, default_machine_config
from repro.machine.configs import baseline, baseline_plus, wisync, wisync_not
from repro.machine.manycore import Manycore
from repro.sim.engine import Simulator
from repro.sim.rng import DeterministicRng
from repro.sim.stats import StatsRegistry


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def stats() -> StatsRegistry:
    return StatsRegistry()


@pytest.fixture
def rng() -> DeterministicRng:
    return DeterministicRng(42, "test")


@pytest.fixture
def small_config() -> MachineConfig:
    return default_machine_config(num_cores=8)


@pytest.fixture
def wisync_machine() -> Manycore:
    return Manycore(wisync(num_cores=8))


@pytest.fixture
def baseline_machine() -> Manycore:
    return Manycore(baseline(num_cores=8))


CONFIG_BUILDERS = {
    "baseline": baseline,
    "baseline+": baseline_plus,
    "wisync-not": wisync_not,
    "wisync": wisync,
}


@pytest.fixture(params=list(CONFIG_BUILDERS))
def any_machine(request) -> Manycore:
    """A small machine of each Table 2 configuration."""
    return Manycore(CONFIG_BUILDERS[request.param](num_cores=8))
