"""Tests for the wireless Data channel, backoff policies, transceiver, and RF model."""

import pytest

from repro.config import BackoffConfig, DataChannelConfig, ToneChannelConfig
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.rng import DeterministicRng
from repro.sim.stats import StatsRegistry
from repro.wireless.backoff import (
    BroadcastAwareBackoff,
    ExponentialBackoff,
    FixedBackoff,
    make_backoff,
)
from repro.wireless.channel import DataChannel, WirelessMessage
from repro.wireless.link_budget import (
    YU_65NM_REFERENCE,
    scale_design_point,
    tone_extension_cost,
    wisync_rf_budget,
)
from repro.wireless.tone import ToneChannel
from repro.wireless.transceiver import Transceiver


# ---------------------------------------------------------------------------
# Backoff policies
# ---------------------------------------------------------------------------
class TestBackoff:
    def test_exponential_window_grows_and_shrinks(self, rng):
        backoff = ExponentialBackoff(rng, max_exponent=4)
        assert backoff.exponent == 0
        backoff.on_collision()
        backoff.on_collision()
        assert backoff.exponent == 2
        backoff.on_success()
        assert backoff.exponent == 1
        for _ in range(10):
            backoff.on_collision()
        assert backoff.exponent == 4  # capped

    def test_exponential_backoff_within_window(self, rng):
        backoff = ExponentialBackoff(rng, max_exponent=6)
        for collisions in range(1, 7):
            delay = backoff.on_collision()
            assert 0 <= delay <= (1 << collisions) - 1

    def test_exponential_deferral_zero_without_contention(self, rng):
        backoff = ExponentialBackoff(rng)
        assert backoff.deferral() == 0

    def test_fixed_backoff_window(self, rng):
        backoff = FixedBackoff(rng, window=4)
        for _ in range(20):
            assert 0 <= backoff.on_collision() <= 3

    def test_broadcast_aware_estimate_tracks_contention(self, rng):
        backoff = BroadcastAwareBackoff(rng, max_window=64)
        backoff.on_collision()
        backoff.on_collision()
        high = backoff.estimate
        for _ in range(5):
            backoff.on_observed_success()
        assert backoff.estimate < high
        backoff.reset()
        assert backoff.estimate == 1.0
        assert backoff.deferral() == 0

    def test_make_backoff_kinds(self, rng):
        assert isinstance(make_backoff(BackoffConfig(kind="exponential"), rng), ExponentialBackoff)
        assert isinstance(make_backoff(BackoffConfig(kind="fixed"), rng), FixedBackoff)
        assert isinstance(make_backoff(BackoffConfig(kind="broadcast_aware"), rng), BroadcastAwareBackoff)

    def test_invalid_parameters(self, rng):
        with pytest.raises(ConfigurationError):
            ExponentialBackoff(rng, max_exponent=0)
        with pytest.raises(ConfigurationError):
            FixedBackoff(rng, window=0)
        with pytest.raises(ConfigurationError):
            BroadcastAwareBackoff(rng, max_window=1)

    @pytest.mark.parametrize(
        "factory",
        [ExponentialBackoff, BroadcastAwareBackoff, FixedBackoff],
        ids=lambda f: f.__name__,
    )
    def test_reset_clears_all_contention_state(self, rng, factory):
        # Regression: reset() used to zero only the window state and leak the
        # collision/success counters across transceiver resets.
        backoff = factory(rng)
        for _ in range(5):
            backoff.on_collision()
        backoff.on_success()
        assert backoff.collisions == 5
        assert backoff.successes == 1
        backoff.reset()
        assert backoff.collisions == 0
        assert backoff.successes == 0
        assert backoff.deferral() == 0  # window state gone too

    def test_broadcast_aware_observed_successes_converge_window(self, rng):
        # Deterministic: the estimate decays by exactly one per observed
        # success, so a drained channel converges the window back to 1 (and
        # deferral back to 0) regardless of the RNG stream.
        backoff = BroadcastAwareBackoff(rng, max_window=64)
        for _ in range(6):
            backoff.on_collision()
        assert backoff._window() == 64
        for step in range(63):
            backoff.on_observed_success()
        assert backoff.estimate == 1.0
        assert backoff._window() == 1
        assert backoff.deferral() == 0
        # Converged is a floor, not an overshoot.
        backoff.on_observed_success()
        assert backoff.estimate == 1.0


# ---------------------------------------------------------------------------
# Data channel
# ---------------------------------------------------------------------------
def make_channel(sim):
    return DataChannel(sim, DataChannelConfig(), StatsRegistry())


class TestDataChannel:
    def test_single_message_takes_five_cycles(self, sim):
        channel = make_channel(sim)
        done = []
        channel.transmit(
            WirelessMessage(sender=0, bm_addr=1, value=7),
            on_complete=lambda m, c: done.append(c),
            on_collision=lambda m: 0,
        )
        sim.run()
        assert done == [5]

    def test_bulk_message_takes_fifteen_cycles(self, sim):
        channel = make_channel(sim)
        done = []
        channel.transmit(
            WirelessMessage(sender=0, bm_addr=1, bulk=True, bulk_values=(1, 2, 3, 4)),
            on_complete=lambda m, c: done.append(c),
            on_collision=lambda m: 0,
        )
        sim.run()
        assert done == [15]

    def test_two_simultaneous_senders_collide_then_succeed(self, sim):
        channel = make_channel(sim)
        done = {}
        backoffs = iter([0, 3])

        def send(sender):
            channel.transmit(
                WirelessMessage(sender=sender, bm_addr=1, value=sender),
                on_complete=lambda m, c, s=sender: done.setdefault(s, c),
                on_collision=lambda m: next(backoffs),
            )

        send(0)
        send(1)
        sim.run()
        assert channel.total_collisions == 1
        assert len(done) == 2
        assert min(done.values()) >= 2 + 5  # collision penalty then a full message

    def test_messages_serialize_on_busy_channel(self, sim):
        channel = make_channel(sim)
        completions = []

        def send_at(cycle, sender):
            sim.schedule_at(cycle, lambda: channel.transmit(
                WirelessMessage(sender=sender, bm_addr=1, value=0),
                on_complete=lambda m, c: completions.append(c),
                on_collision=lambda m: 0,
            ))

        send_at(0, 0)
        send_at(1, 1)   # channel busy: defers to next free slot
        sim.run()
        assert completions == [5, 10]
        assert channel.total_collisions == 0

    def test_listener_sees_every_delivery(self, sim):
        channel = make_channel(sim)
        heard = []
        channel.add_listener(lambda m, c: heard.append((m.sender, c)))
        for sender in range(3):
            sim.schedule_at(sender * 10, lambda s=sender: channel.transmit(
                WirelessMessage(sender=s, bm_addr=0, value=s),
                on_complete=lambda m, c: None,
                on_collision=lambda m: 0,
            ))
        sim.run()
        assert [s for s, _ in heard] == [0, 1, 2]

    def test_cancelled_transmission_never_delivers(self, sim):
        channel = make_channel(sim)
        done = []
        handle = None

        def submit():
            nonlocal handle
            handle = channel.transmit(
                WirelessMessage(sender=0, bm_addr=0, value=1),
                on_complete=lambda m, c: done.append(c),
                on_collision=lambda m: 0,
                earliest=sim.now + 10,
            )

        sim.schedule_at(0, submit)
        sim.schedule_at(2, lambda: handle.cancel())
        sim.run()
        assert done == []
        assert channel.total_messages == 0

    def test_cancel_fails_after_transmission_started(self, sim):
        channel = make_channel(sim)
        handle_box = {}
        handle_box["h"] = channel.transmit(
            WirelessMessage(sender=0, bm_addr=0, value=1),
            on_complete=lambda m, c: None,
            on_collision=lambda m: 0,
        )
        outcome = []
        sim.schedule_at(3, lambda: outcome.append(handle_box["h"].cancel()))
        sim.run()
        assert outcome == [False]
        assert channel.total_messages == 1

    def test_utilization_tracks_busy_cycles(self, sim):
        channel = make_channel(sim)
        for i in range(3):
            sim.schedule_at(i * 20, lambda: channel.transmit(
                WirelessMessage(sender=0, bm_addr=0, value=0),
                on_complete=lambda m, c: None,
                on_collision=lambda m: 0,
            ))
        sim.run()
        tracker = channel.stats.utilizations["wireless/data_channel"]
        assert tracker.busy_cycles == 15

    def test_transfer_latency_histogram(self, sim):
        channel = make_channel(sim)
        channel.transmit(
            WirelessMessage(sender=0, bm_addr=0, value=0),
            on_complete=lambda m, c: None,
            on_collision=lambda m: 0,
        )
        sim.run()
        assert channel.stats.histograms["wireless/transfer_latency"].mean == 5


# ---------------------------------------------------------------------------
# Transceiver MAC
# ---------------------------------------------------------------------------
class TestTransceiver:
    def _transceiver(self, sim, node_id=0):
        channel = make_channel(sim)
        rng = DeterministicRng(1, f"mac{node_id}")
        backoff = ExponentialBackoff(rng)
        return Transceiver(node_id, channel, backoff, DataChannelConfig(), StatsRegistry()), channel

    def test_send_store_completes(self, sim):
        transceiver, _ = self._transceiver(sim)
        done = []
        transceiver.send_store(3, 42, lambda m, c: done.append((m.value, c)))
        sim.run()
        assert done == [(42, 5)]
        assert transceiver.sent_messages == 1

    def test_sends_are_serialized_per_node(self, sim):
        transceiver, _ = self._transceiver(sim)
        completions = []
        transceiver.send_store(0, 1, lambda m, c: completions.append(c))
        transceiver.send_store(1, 2, lambda m, c: completions.append(c))
        assert transceiver.queue_depth == 2
        sim.run()
        assert completions == [5, 10]

    def test_bulk_store_uses_bulk_timing(self, sim):
        transceiver, _ = self._transceiver(sim)
        done = []
        transceiver.send_bulk_store(0, (1, 2, 3, 4), lambda m, c: done.append(c))
        sim.run()
        assert done == [15]

    def test_tone_init_sets_tone_bit(self, sim):
        transceiver, channel = self._transceiver(sim)
        heard = []
        channel.add_listener(lambda m, c: heard.append(m.tone_bit))
        transceiver.send_tone_init(4, lambda m, c: None)
        sim.run()
        assert heard == [True]

    def test_cancel_queued_send(self, sim):
        transceiver, channel = self._transceiver(sim)
        ticket_first = transceiver.send_store(0, 1, lambda m, c: None)
        ticket_second = transceiver.send_store(1, 2, lambda m, c: None)
        assert ticket_second.cancel() is True
        sim.run()
        assert channel.total_messages == 1

    def test_cancel_after_completion_fails(self, sim):
        transceiver, _ = self._transceiver(sim)
        ticket = transceiver.send_store(0, 1, lambda m, c: None)
        sim.run()
        assert ticket.cancel() is False


# ---------------------------------------------------------------------------
# RF link budget (Section 2 / Table 4 inputs)
# ---------------------------------------------------------------------------
class TestLinkBudget:
    def test_reference_design_matches_yu(self):
        assert YU_65NM_REFERENCE.bandwidth_gbps == 16.0
        assert YU_65NM_REFERENCE.area_mm2 == 0.23
        assert YU_65NM_REFERENCE.power_mw == 31.2

    def test_scaling_to_22nm_matches_paper_projection(self):
        scaled = scale_design_point(YU_65NM_REFERENCE, 22)
        assert scaled.area_mm2 == pytest.approx(0.10, abs=0.02)
        assert scaled.power_mw <= 16.1

    def test_tone_extension_cost(self):
        tone = tone_extension_cost(22)
        assert tone.area_mm2 == pytest.approx(0.04)
        assert tone.power_mw == pytest.approx(2.0)

    def test_total_budget_is_table4_value(self):
        total = wisync_rf_budget(22)
        assert total.area_mm2 == pytest.approx(0.14)
        assert total.power_mw == pytest.approx(18.0)
        assert total.antennas == 2

    def test_projection_to_older_node_rejected(self):
        with pytest.raises(ConfigurationError):
            scale_design_point(wisync_rf_budget(22), 65)

    def test_unknown_node_rejected(self):
        with pytest.raises(ConfigurationError):
            scale_design_point(YU_65NM_REFERENCE, 28)
