"""Tests for the wired mesh network models."""

import pytest

from repro.config import NocConfig
from repro.errors import ConfigurationError
from repro.noc.broadcast_tree import BroadcastTree
from repro.noc.mesh import MeshNetwork
from repro.noc.routing import xy_route, xy_route_length
from repro.noc.topology import MeshTopology
from repro.sim.stats import StatsRegistry


class TestMeshTopology:
    @pytest.mark.parametrize("cores,width", [(16, 4), (64, 8), (128, 12), (256, 16), (5, 3)])
    def test_square_for_fits_all_nodes(self, cores, width):
        topo = MeshTopology.square_for(cores)
        assert topo.width == width
        assert topo.width * topo.height >= cores

    def test_coordinates_roundtrip(self):
        topo = MeshTopology.square_for(16)
        for node in topo.nodes():
            x, y = topo.coordinates(node)
            assert topo.node_at(x, y) == node

    def test_hop_distance_is_manhattan(self):
        topo = MeshTopology.square_for(16)
        assert topo.hop_distance(0, 15) == 6
        assert topo.hop_distance(0, 3) == 3
        assert topo.hop_distance(5, 5) == 0

    def test_hop_distance_symmetric(self):
        topo = MeshTopology.square_for(64)
        for a, b in [(0, 63), (10, 53), (7, 8)]:
            assert topo.hop_distance(a, b) == topo.hop_distance(b, a)

    def test_max_hop_distance(self):
        assert MeshTopology.square_for(64).max_hop_distance() == 14

    def test_average_distance_positive_and_bounded(self):
        topo = MeshTopology.square_for(16)
        avg = topo.average_hop_distance()
        assert 0 < avg <= topo.max_hop_distance()

    def test_neighbors_in_corner_and_center(self):
        topo = MeshTopology.square_for(16)
        assert sorted(topo.neighbors(0)) == [1, 4]
        assert len(topo.neighbors(5)) == 4

    def test_out_of_range_node_rejected(self):
        topo = MeshTopology.square_for(16)
        with pytest.raises(ConfigurationError):
            topo.coordinates(16)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            MeshTopology.square_for(0)


class TestRouting:
    def test_route_endpoints(self):
        topo = MeshTopology.square_for(16)
        path = xy_route(topo, 0, 15)
        assert path[0] == 0
        assert path[-1] == 15
        assert len(path) == topo.hop_distance(0, 15) + 1

    def test_route_length_matches_distance(self):
        topo = MeshTopology.square_for(64)
        assert xy_route_length(topo, 3, 60) == topo.hop_distance(3, 60)

    def test_route_moves_x_then_y(self):
        topo = MeshTopology.square_for(16)
        path = xy_route(topo, 0, 10)
        # X phase first: nodes 0 -> 1 -> 2, then down the column.
        assert path[:3] == [0, 1, 2]


class TestBroadcastTree:
    @pytest.mark.parametrize("cores", [16, 64, 100])
    def test_tree_reaches_every_node(self, cores):
        topo = MeshTopology.square_for(cores)
        tree = BroadcastTree(topo)
        assert sorted(tree.reached_nodes(0)) == list(range(cores))
        assert sorted(tree.reached_nodes(cores // 2)) == list(range(cores))

    def test_depth_bounded_by_diameter(self):
        topo = MeshTopology.square_for(64)
        tree = BroadcastTree(topo)
        for root in (0, 27, 63):
            assert tree.depth(root) <= topo.max_hop_distance()

    def test_center_root_has_smaller_depth_than_corner(self):
        topo = MeshTopology.square_for(64)
        tree = BroadcastTree(topo)
        assert tree.depth(27) < tree.depth(0)

    def test_children_cover_without_duplicates(self):
        topo = MeshTopology.square_for(16)
        children = BroadcastTree(topo).children(0)
        all_children = [c for lst in children.values() for c in lst]
        assert len(all_children) == len(set(all_children)) == 15


class TestMeshNetwork:
    def _mesh(self, cores=16, tree=False):
        topo = MeshTopology.square_for(cores)
        return MeshNetwork(topo, NocConfig(tree_broadcast=tree), StatsRegistry())

    def test_flight_latency_scales_with_hops(self):
        mesh = self._mesh()
        near = mesh.flight_latency(0, 1, 128)
        far = mesh.flight_latency(0, 15, 128)
        assert far > near
        assert far - near == (6 - 1) * 4

    def test_same_node_latency_is_router_only(self):
        mesh = self._mesh()
        assert mesh.flight_latency(3, 3) == 1

    def test_serialization_of_wide_messages(self):
        mesh = self._mesh()
        narrow = mesh.flight_latency(0, 1, 128)
        wide = mesh.flight_latency(0, 1, 512)
        assert wide == narrow + 3

    def test_unicast_advances_with_congestion(self):
        mesh = self._mesh()
        first = mesh.unicast(0, 0, 5, 128)
        second = mesh.unicast(0, 1, 5, 128)
        third = mesh.unicast(0, 2, 5, 128)
        # All three target node 5: ejection port serializes them.
        assert first < second < third

    def test_round_trip_is_two_traversals(self):
        mesh = self._mesh()
        rt = mesh.round_trip(0, 0, 15)
        assert rt >= 2 * mesh.flight_latency(0, 15)

    def test_broadcast_without_tree_serializes_at_source(self):
        mesh = self._mesh(tree=False)
        done = mesh.broadcast(0, 0, 128)
        assert done >= 15  # at least one flit injected per destination

    def test_tree_broadcast_is_much_faster(self):
        plain = self._mesh(cores=64, tree=False).broadcast(0, 0, 128)
        tree = self._mesh(cores=64, tree=True).broadcast(0, 0, 128)
        assert tree < plain / 2

    def test_tree_broadcast_latency_is_depth_based(self):
        mesh = self._mesh(cores=64, tree=True)
        expected = mesh.tree.depth(0) * 4 + 1
        assert mesh.broadcast(0, 0, 128) == expected

    def test_multicast_subset(self):
        mesh = self._mesh()
        done = mesh.multicast(0, 0, [1, 2, 3], 128)
        assert done > 0

    def test_reset_ports_clears_congestion(self):
        mesh = self._mesh()
        mesh.unicast(0, 0, 5)
        mesh.reset_ports()
        again = mesh.unicast(0, 0, 5)
        assert again == mesh.unicast(0, 0, 5) - mesh.config.cycles_per_flit(128)

    def test_message_stats_counted(self):
        mesh = self._mesh()
        mesh.unicast(0, 0, 1)
        mesh.unicast(0, 1, 2)
        assert mesh.stats.counter_value("noc/messages") == 2
