"""Tests for the Tone channel and the per-node tone controllers."""

import pytest

from repro.config import ToneChannelConfig
from repro.errors import ToneBarrierError
from repro.machine.configs import wisync
from repro.machine.manycore import Manycore
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry
from repro.wireless.tone import ToneChannel


def make_tone(sim):
    return ToneChannel(sim, ToneChannelConfig(), StatsRegistry())


class TestToneChannel:
    def test_barrier_completes_when_all_tones_stop(self, sim):
        tone = make_tone(sim)
        completions = []
        tone.add_completion_listener(lambda addr, cycle: completions.append((addr, cycle)))
        tone.activate(5, emitters={1, 2})
        sim.schedule_at(10, lambda: tone.stop_tone(5, 1))
        sim.schedule_at(30, lambda: tone.stop_tone(5, 2))
        sim.run()
        assert len(completions) == 1
        addr, cycle = completions[0]
        assert addr == 5
        assert cycle >= 30  # cannot complete before the last participant arrives

    def test_activation_with_no_emitters_completes_immediately(self, sim):
        tone = make_tone(sim)
        completions = []
        tone.add_completion_listener(lambda addr, cycle: completions.append(cycle))
        tone.activate(3, emitters=set())
        sim.run()
        assert len(completions) == 1
        assert completions[0] <= 3

    def test_detection_latency_grows_with_active_barriers(self, sim):
        tone = make_tone(sim)
        tone.activate(1, emitters={0})
        single = tone.detection_latency()
        tone.activate(2, emitters={0})
        tone.activate(3, emitters={0})
        assert tone.detection_latency() > single

    def test_double_activation_rejected(self, sim):
        tone = make_tone(sim)
        tone.activate(1, emitters={0})
        with pytest.raises(ToneBarrierError):
            tone.activate(1, emitters={1})

    def test_stop_tone_without_activation_rejected(self, sim):
        tone = make_tone(sim)
        with pytest.raises(ToneBarrierError):
            tone.stop_tone(9, 0)

    def test_multiple_concurrent_barriers(self, sim):
        tone = make_tone(sim)
        completions = []
        tone.add_completion_listener(lambda addr, cycle: completions.append(addr))
        tone.activate(1, emitters={0})
        tone.activate(2, emitters={1})
        sim.schedule_at(5, lambda: tone.stop_tone(2, 1))
        sim.schedule_at(9, lambda: tone.stop_tone(1, 0))
        sim.run()
        assert sorted(completions) == [1, 2]
        assert tone.active_barrier_count == 0

    def test_disabled_channel_rejects_activation(self, sim):
        tone = ToneChannel(sim, ToneChannelConfig(enabled=False), StatsRegistry())
        with pytest.raises(ToneBarrierError):
            tone.activate(0, emitters=set())


class TestToneController:
    def _machine(self, cores=4):
        return Manycore(wisync(num_cores=cores))

    def test_allocation_creates_allocb_everywhere(self):
        machine = self._machine()
        fabric = machine.fabric
        allocation = fabric.allocate(pid=1, words=1, tone_capable=True, participants=[0, 1, 2])
        for node in fabric.nodes:
            assert allocation.base_addr in node.tone_controller.alloc_b
        assert fabric.nodes[0].tone_controller.is_armed(allocation.base_addr)
        assert not fabric.nodes[3].tone_controller.is_armed(allocation.base_addr)

    def test_first_arrival_initiates_barrier(self):
        machine = self._machine()
        fabric = machine.fabric
        allocation = fabric.allocate(pid=1, words=1, tone_capable=True, participants=[0, 1])
        initiated = fabric.nodes[0].tone_controller.arrive(allocation.base_addr)
        assert initiated is True
        # Second tone_st from the same node before activation is idempotent.
        assert fabric.nodes[0].tone_controller.arrive(allocation.base_addr) is False

    def test_allocb_overflow_raises(self):
        machine = Manycore(wisync(num_cores=2))
        controller = machine.fabric.nodes[0].tone_controller
        for addr in range(controller.config.table_entries):
            controller.allocate_barrier(addr, armed=True)
        with pytest.raises(ToneBarrierError):
            controller.allocate_barrier(9999, armed=True)

    def test_arrive_on_unallocated_barrier_raises(self):
        machine = self._machine()
        with pytest.raises(ToneBarrierError):
            machine.fabric.nodes[0].tone_controller.arrive(123)

    def test_full_hardware_barrier_round(self):
        machine = self._machine(cores=4)
        fabric = machine.fabric
        sim = machine.sim
        allocation = fabric.allocate(pid=1, words=1, tone_capable=True,
                                     participants=[0, 1, 2, 3])
        addr = allocation.base_addr
        for node_id in range(4):
            sim.schedule_at(node_id * 7, lambda n=node_id: fabric.nodes[n].tone_controller.arrive(addr))
        sim.run()
        # The location toggled from 0 to 1 when the last core arrived.
        assert fabric.memory.entry(addr).value == 1
        assert fabric.tone_channel.completed_barriers == 1
        # Reuse: second episode toggles back to 0.
        for node_id in range(4):
            sim.schedule(node_id * 3 + 1, lambda n=node_id: fabric.nodes[n].tone_controller.arrive(addr))
        sim.run()
        assert fabric.memory.entry(addr).value == 0
        assert fabric.tone_channel.completed_barriers == 2

    def test_unarmed_node_does_not_block_barrier(self):
        machine = self._machine(cores=4)
        fabric = machine.fabric
        sim = machine.sim
        allocation = fabric.allocate(pid=1, words=1, tone_capable=True, participants=[0, 1])
        addr = allocation.base_addr
        sim.schedule_at(0, lambda: fabric.nodes[0].tone_controller.arrive(addr))
        sim.schedule_at(4, lambda: fabric.nodes[1].tone_controller.arrive(addr))
        sim.run()
        # Nodes 2 and 3 never arrive, yet the barrier completes.
        assert fabric.tone_channel.completed_barriers == 1
