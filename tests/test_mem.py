"""Tests for the cache hierarchy, directory coherence, and DRAM models."""

import pytest

from repro.config import CacheConfig, MemoryConfig, default_machine_config
from repro.errors import ConfigurationError
from repro.isa.operations import RmwKind
from repro.mem.address import AddressMap
from repro.mem.cache import CacheArray
from repro.mem.directory import Directory, LineState
from repro.mem.dram import DramModel
from repro.mem.hierarchy import MemorySystem, apply_rmw
from repro.noc.mesh import MeshNetwork
from repro.noc.topology import MeshTopology
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry


class TestAddressMap:
    def _map(self, cores=8):
        return AddressMap(CacheConfig(), MemoryConfig(), cores)

    def test_line_of_groups_words(self):
        amap = self._map()
        assert amap.line_of(0) == amap.line_of(63)
        assert amap.line_of(64) == amap.line_of(0) + 1

    def test_word_alignment(self):
        amap = self._map()
        assert amap.word_of(13) == 8
        assert amap.word_of(16) == 16

    def test_home_bank_interleaves_across_cores(self):
        amap = self._map(cores=4)
        homes = {amap.home_bank(line * 64) for line in range(16)}
        assert homes == {0, 1, 2, 3}

    def test_same_line_check(self):
        amap = self._map()
        assert amap.same_line(0, 56)
        assert not amap.same_line(0, 64)

    def test_memory_controller_range(self):
        amap = self._map()
        for addr in range(0, 4096, 64):
            assert 0 <= amap.memory_controller(addr) < 4


class TestCacheArray:
    def test_miss_then_hit(self):
        cache = CacheArray(num_sets=4, associativity=2, line_bytes=64)
        assert not cache.lookup(10)
        cache.fill(10)
        assert cache.lookup(10)
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = CacheArray(num_sets=1, associativity=2, line_bytes=64)
        cache.fill(1)
        cache.fill(2)
        cache.lookup(1)          # 1 becomes MRU
        victim = cache.fill(3)
        assert victim == 2
        assert cache.contains(1) and cache.contains(3) and not cache.contains(2)

    def test_fill_existing_line_no_eviction(self):
        cache = CacheArray(num_sets=1, associativity=1, line_bytes=64)
        cache.fill(5)
        assert cache.fill(5) is None

    def test_invalidate(self):
        cache = CacheArray(num_sets=2, associativity=2, line_bytes=64)
        cache.fill(7)
        assert cache.invalidate(7)
        assert not cache.invalidate(7)
        assert not cache.contains(7)

    def test_occupancy_and_hit_rate(self):
        cache = CacheArray(num_sets=4, associativity=2, line_bytes=64)
        cache.fill(1)
        cache.fill(2)
        cache.lookup(1)
        cache.lookup(99)
        assert cache.occupancy == 2
        assert cache.hit_rate == 0.5

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheArray(num_sets=0, associativity=2, line_bytes=64)


class TestDirectory:
    def test_read_creates_shared_state(self):
        directory = Directory()
        entry = directory.record_read(1, core=3)
        assert entry.state is LineState.SHARED
        assert 3 in entry.sharers

    def test_write_invalidate_targets(self):
        directory = Directory()
        directory.record_read(1, 0)
        directory.record_read(1, 1)
        directory.record_read(1, 2)
        targets = directory.invalidation_targets(1, requester=2)
        assert targets == {0, 1}

    def test_write_takes_exclusive_ownership(self):
        directory = Directory()
        directory.record_read(1, 0)
        entry = directory.record_write(1, 5)
        assert entry.state is LineState.MODIFIED
        assert entry.owner == 5
        assert entry.sharers == set()

    def test_read_after_write_downgrades_owner(self):
        directory = Directory()
        directory.record_write(1, 5)
        entry = directory.record_read(1, 2)
        assert entry.state is LineState.SHARED
        assert entry.owner is None
        assert {2, 5} <= entry.sharers

    def test_evict_clears_owner(self):
        directory = Directory()
        directory.record_write(1, 5)
        directory.evict(1, 5)
        assert directory.entry(1).state is not LineState.MODIFIED

    def test_sharer_count(self):
        directory = Directory()
        assert directory.sharer_count(9) == 0
        directory.record_read(9, 0)
        directory.record_read(9, 1)
        assert directory.sharer_count(9) == 2


class TestDram:
    def test_round_trip_latency(self):
        dram = DramModel(MemoryConfig(), StatsRegistry())
        assert dram.access(0, 0) == 110

    def test_controller_serialization(self):
        dram = DramModel(MemoryConfig(), StatsRegistry())
        first = dram.access(0, 1)
        second = dram.access(0, 1)
        assert second == first + DramModel.CONTROLLER_OCCUPANCY

    def test_different_controllers_do_not_serialize(self):
        dram = DramModel(MemoryConfig(), StatsRegistry())
        assert dram.access(0, 0) == dram.access(0, 1)


def make_memory(cores=8):
    config = default_machine_config(cores)
    sim = Simulator()
    stats = StatsRegistry()
    mesh = MeshNetwork(MeshTopology.square_for(cores), config.noc, stats)
    return sim, MemorySystem(sim, config, mesh, stats)


class TestMemorySystem:
    def test_first_read_misses_to_dram(self):
        sim, mem = make_memory()
        value, completion = mem.read(0, 0x1000)
        assert value == 0
        assert completion >= 110

    def test_second_read_is_l1_hit(self):
        sim, mem = make_memory()
        mem.read(0, 0x1000)
        _, completion = mem.read(0, 0x1000)
        assert completion == sim.now + 2

    def test_write_then_read_returns_value(self):
        sim, mem = make_memory()
        mem.write(0, 0x2000, 77)
        value, _ = mem.read(0, 0x2000)
        assert value == 77
        assert mem.peek(0x2000) == 77

    def test_write_hit_after_ownership(self):
        sim, mem = make_memory()
        mem.write(0, 0x2000, 1)
        completion = mem.write(0, 0x2000, 2)
        assert completion == sim.now + 2

    def test_remote_read_after_write_forwards_from_owner(self):
        sim, mem = make_memory()
        mem.write(0, 0x3000, 5)
        value, completion = mem.read(1, 0x3000)
        assert value == 5
        assert completion > 2
        assert mem.stats.counter_value("mem/owner_forwards") >= 1

    def test_write_invalidates_readers(self):
        sim, mem = make_memory()
        for core in range(4):
            mem.read(core, 0x4000)
        mem.write(5, 0x4000, 9)
        assert mem.stats.counter_value("mem/invalidations") >= 4
        # The previous readers lost their copies.
        for core in range(4):
            assert not mem.l1_cache(core).contains(0x4000 // 64)

    @pytest.mark.parametrize(
        "kind,operand,expected,old,new,success",
        [
            (RmwKind.TEST_AND_SET, 0, 0, 0, 1, True),
            (RmwKind.FETCH_AND_INC, 0, 0, 4, 5, True),
            (RmwKind.FETCH_AND_ADD, 10, 0, 4, 14, True),
            (RmwKind.SWAP, 99, 0, 4, 99, True),
            (RmwKind.COMPARE_AND_SWAP, 7, 4, 4, 7, True),
            (RmwKind.COMPARE_AND_SWAP, 7, 3, 4, 4, False),
        ],
    )
    def test_apply_rmw_semantics(self, kind, operand, expected, old, new, success):
        result_new, result_success = apply_rmw(kind, old, operand, expected)
        assert result_new == new
        assert result_success == success

    def test_atomic_cas_success_and_failure(self):
        sim, mem = make_memory()
        mem.poke(0x5000, 3)
        old, success, _ = mem.atomic(0, 0x5000, RmwKind.COMPARE_AND_SWAP, operand=9, expected=3)
        assert (old, success) == (3, True)
        assert mem.peek(0x5000) == 9
        old, success, _ = mem.atomic(1, 0x5000, RmwKind.COMPARE_AND_SWAP, operand=5, expected=3)
        assert (old, success) == (9, False)
        assert mem.peek(0x5000) == 9

    def test_contended_atomics_serialize_at_line(self):
        sim, mem = make_memory()
        mem.poke(0x6000, 0)
        completions = [mem.atomic(core, 0x6000, RmwKind.FETCH_AND_INC)[2] for core in range(6)]
        assert completions == sorted(completions)
        assert len(set(completions)) == len(completions)
        assert mem.peek(0x6000) == 6

    def test_wait_until_already_satisfied(self):
        sim, mem = make_memory()
        mem.poke(0x7000, 1)
        woken = []
        mem.wait_until(0, 0x7000, lambda v: v == 1, woken.append)
        sim.run()
        assert woken == [1]

    def test_wait_until_woken_by_write(self):
        sim, mem = make_memory()
        woken = []
        mem.wait_until(0, 0x8000, lambda v: v == 5, woken.append)
        assert mem.waiter_count(0x8000) == 1
        mem.write(1, 0x8000, 4)   # does not satisfy
        mem.write(1, 0x8000, 5)   # satisfies
        sim.run()
        assert woken == [5]
        assert mem.waiter_count(0x8000) == 0

    def test_many_waiters_wake_serialized(self):
        sim, mem = make_memory()
        wake_times = {}
        for core in range(6):
            mem.wait_until(core, 0x9000, lambda v: v == 1,
                           lambda v, c=core: wake_times.setdefault(c, sim.now))
        mem.write(7, 0x9000, 1)
        sim.run()
        assert len(wake_times) == 6
        assert len(set(wake_times.values())) > 1  # refills serialize, not simultaneous

    def test_out_of_range_core_rejected(self):
        sim, mem = make_memory(cores=4)
        with pytest.raises(Exception):
            mem.read(9, 0x100)
