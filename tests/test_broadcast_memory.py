"""Tests for the Broadcast Memory, allocator, translation, and protection."""

import pytest

from repro.config import BroadcastMemoryConfig
from repro.core.allocator import BmAllocator
from repro.core.broadcast_memory import BroadcastMemory
from repro.core.translation import BmTlb
from repro.errors import AllocationError, MemoryError_, ProtectionError, TranslationError
from repro.osmodel.vm import BmVirtualMemory


@pytest.fixture
def bm_config():
    return BroadcastMemoryConfig()


@pytest.fixture
def bm(bm_config):
    return BroadcastMemory(bm_config)


class TestBroadcastMemory:
    def test_entries_default_to_zero(self, bm):
        assert bm.read(0) == 0
        assert bm.read(2047) == 0

    def test_out_of_range_address_rejected(self, bm):
        with pytest.raises(MemoryError_):
            bm.read(2048)
        with pytest.raises(MemoryError_):
            bm.read(-1)

    def test_write_and_read_back(self, bm):
        bm.write(5, 1234)
        assert bm.read(5) == 1234

    def test_values_truncate_to_entry_width(self, bm):
        bm.write(1, 1 << 70)
        assert bm.read(1) < (1 << 64)

    def test_allocation_tags_pid(self, bm):
        bm.allocate_entry(3, pid=7)
        assert bm.owner_pid(3) == 7
        assert bm.read(3, pid=7) == 0

    def test_double_allocation_rejected(self, bm):
        bm.allocate_entry(3, pid=7)
        with pytest.raises(MemoryError_):
            bm.allocate_entry(3, pid=8)

    def test_pid_mismatch_is_protection_violation(self, bm):
        bm.allocate_entry(3, pid=7)
        with pytest.raises(ProtectionError):
            bm.read(3, pid=8)
        with pytest.raises(ProtectionError):
            bm.write(3, 1, pid=8)

    def test_access_to_unallocated_entry_with_pid_rejected(self, bm):
        with pytest.raises(ProtectionError):
            bm.read(9, pid=1)

    def test_free_requires_owner(self, bm):
        bm.allocate_entry(4, pid=1)
        with pytest.raises(ProtectionError):
            bm.free_entry(4, pid=2)
        bm.free_entry(4, pid=1)
        assert bm.owner_pid(4) is None

    def test_free_unallocated_rejected(self, bm):
        with pytest.raises(MemoryError_):
            bm.free_entry(10, pid=1)

    def test_toggle_alternates_zero_nonzero(self, bm):
        assert bm.toggle(2) == 1
        assert bm.toggle(2) == 0
        bm.write(2, 55)
        assert bm.toggle(2) == 0

    def test_tone_capability_flag(self, bm):
        bm.allocate_entry(6, pid=1, tone_capable=True)
        assert bm.is_tone_capable(6)
        assert not bm.is_tone_capable(7)

    def test_allocated_count(self, bm):
        bm.allocate_entry(1, pid=1)
        bm.allocate_entry(2, pid=1)
        assert bm.allocated_count() == 2
        assert list(bm.allocated_entries()) == [1, 2]


class TestBmAllocator:
    def test_sequential_allocation(self, bm_config):
        allocator = BmAllocator(bm_config)
        first = allocator.allocate(pid=1, words=2)
        second = allocator.allocate(pid=1, words=3)
        assert first.base_addr == 0 and first.words == 2
        assert second.base_addr == 2
        assert allocator.allocated_count == 5

    def test_first_fit_reuses_freed_space(self, bm_config):
        allocator = BmAllocator(bm_config)
        first = allocator.allocate(pid=1, words=4)
        allocator.allocate(pid=1, words=4)
        allocator.free(pid=1, base_addr=first.base_addr, words=4)
        third = allocator.allocate(pid=1, words=2)
        assert third.base_addr == first.base_addr

    def test_spill_when_full(self):
        config = BroadcastMemoryConfig(size_kb=4, page_kb=4, address_bits=11)
        allocator = BmAllocator(config)
        allocator.allocate(pid=1, words=config.num_entries)
        spilled = allocator.allocate(pid=1, words=1)
        assert spilled.spilled
        assert allocator.is_spilled(spilled.base_addr)
        assert allocator.spilled_allocations == 1

    def test_spill_disallowed_raises(self):
        config = BroadcastMemoryConfig(size_kb=4, page_kb=4, address_bits=11)
        allocator = BmAllocator(config)
        allocator.allocate(pid=1, words=config.num_entries)
        with pytest.raises(AllocationError):
            allocator.allocate(pid=1, words=1, allow_spill=False)

    def test_free_requires_ownership(self, bm_config):
        allocator = BmAllocator(bm_config)
        allocation = allocator.allocate(pid=1, words=1)
        with pytest.raises(AllocationError):
            allocator.free(pid=2, base_addr=allocation.base_addr)

    def test_free_all_releases_everything(self, bm_config):
        allocator = BmAllocator(bm_config)
        for _ in range(5):
            allocator.allocate(pid=3, words=2)
        released = allocator.free_all(pid=3)
        assert released == 10
        assert allocator.allocated_count == 0

    def test_zero_word_allocation_rejected(self, bm_config):
        with pytest.raises(AllocationError):
            BmAllocator(bm_config).allocate(pid=1, words=0)

    def test_owner_tracking(self, bm_config):
        allocator = BmAllocator(bm_config)
        allocation = allocator.allocate(pid=9, words=1)
        assert allocator.owner_of(allocation.base_addr) == 9
        assert allocation.addresses == [allocation.base_addr]


class TestBmTlb:
    def test_translate_maps_page_and_offset(self, bm_config):
        tlb = BmTlb(bm_config)
        tlb.map_page(pid=1, virtual_page=0, physical_page=2)
        physical = tlb.translate(1, 5)
        assert physical == 2 * bm_config.entries_per_page + 5

    def test_missing_mapping_raises(self, bm_config):
        tlb = BmTlb(bm_config)
        with pytest.raises(TranslationError):
            tlb.translate(1, 0)

    def test_write_protection(self, bm_config):
        tlb = BmTlb(bm_config)
        tlb.map_page(pid=1, virtual_page=0, physical_page=0, writable=False)
        tlb.translate(1, 3, for_write=False)
        with pytest.raises(TranslationError):
            tlb.translate(1, 3, for_write=True)

    def test_per_process_mappings_are_independent(self, bm_config):
        tlb = BmTlb(bm_config)
        tlb.map_page(pid=1, virtual_page=0, physical_page=0)
        tlb.map_page(pid=2, virtual_page=0, physical_page=1)
        assert tlb.translate(1, 0) != tlb.translate(2, 0)

    def test_invalid_physical_page_rejected(self, bm_config):
        tlb = BmTlb(bm_config)
        with pytest.raises(TranslationError):
            tlb.map_page(pid=1, virtual_page=0, physical_page=99)

    def test_reverse_translate(self, bm_config):
        tlb = BmTlb(bm_config)
        tlb.map_page(pid=1, virtual_page=3, physical_page=1)
        physical = tlb.translate(1, 3 * bm_config.entries_per_page + 7)
        assert tlb.reverse_translate(1, physical) == 3 * bm_config.entries_per_page + 7
        assert tlb.reverse_translate(2, physical) is None

    def test_unmap(self, bm_config):
        tlb = BmTlb(bm_config)
        tlb.map_page(pid=1, virtual_page=0, physical_page=0)
        tlb.unmap_page(pid=1, virtual_page=0)
        with pytest.raises(TranslationError):
            tlb.translate(1, 0)

    def test_hit_miss_counters(self, bm_config):
        tlb = BmTlb(bm_config)
        tlb.map_page(pid=1, virtual_page=0, physical_page=0)
        tlb.translate(1, 0)
        with pytest.raises(TranslationError):
            tlb.translate(1, 10_000)
        assert tlb.hits == 1
        assert tlb.misses == 1


class TestBmVirtualMemory:
    def test_lazy_mapping_is_stable(self, bm_config):
        vm = BmVirtualMemory(bm_config)
        first = vm.ensure_mapping(pid=1, physical_addr=100)
        again = vm.ensure_mapping(pid=1, physical_addr=100)
        assert first == again
        assert vm.translate(1, first) == 100

    def test_processes_share_physical_pages(self, bm_config):
        vm = BmVirtualMemory(bm_config)
        a = vm.ensure_mapping(pid=1, physical_addr=10)
        b = vm.ensure_mapping(pid=2, physical_addr=11)
        assert vm.translate(1, a) == 10
        assert vm.translate(2, b) == 11

    def test_release_process_clears_mappings(self, bm_config):
        vm = BmVirtualMemory(bm_config)
        virtual = vm.ensure_mapping(pid=1, physical_addr=10)
        vm.release_process(1)
        with pytest.raises(TranslationError):
            vm.translate(1, virtual)

    def test_nonexistent_physical_page_rejected(self, bm_config):
        vm = BmVirtualMemory(bm_config)
        with pytest.raises(AllocationError):
            vm.ensure_mapping(pid=1, physical_addr=bm_config.num_entries + 5)
