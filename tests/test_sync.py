"""Integration tests: synchronization primitives running on full machines.

Every test builds a small machine, runs real thread generators through the
simulator, and checks functional correctness (mutual exclusion, barrier
semantics, reduction totals) plus the qualitative timing properties the paper
relies on.
"""

import pytest

from repro.isa.operations import Compute, Read, Write
from repro.machine.configs import baseline, baseline_plus, wisync, wisync_not
from repro.machine.manycore import Manycore
from repro.sync.api import SyncFactory

ALL_CONFIGS = [baseline, baseline_plus, wisync_not, wisync]
CONFIG_IDS = ["baseline", "baseline+", "wisync-not", "wisync"]


def run_machine(config_fn, body_factory, num_threads=8, cores=8):
    machine = Manycore(config_fn(num_cores=cores))
    program = machine.new_program("test")
    sync = SyncFactory(program)
    shared = body_factory(machine, program, sync)
    for _ in range(num_threads):
        program.add_thread(shared["body"])
    result = machine.run()
    return machine, result, shared


class TestLocks:
    @pytest.mark.parametrize("config_fn", ALL_CONFIGS, ids=CONFIG_IDS)
    def test_mutual_exclusion_counter(self, config_fn):
        """A non-atomic read-modify-write under a lock must not lose updates."""
        increments = 4

        def factory(machine, program, sync):
            lock = sync.create_lock()
            counter_addr = program.alloc_shared()

            def body(ctx):
                for _ in range(increments):
                    yield from lock.acquire(ctx)
                    value = yield Read(counter_addr)
                    yield Compute(5)
                    yield Write(counter_addr, value + 1)
                    yield from lock.release(ctx)
                    yield Compute(ctx.rng.jitter(20))

            return {"body": body, "counter": counter_addr}

        machine, result, shared = run_machine(config_fn, factory)
        assert result.completed
        assert machine.memory.peek(shared["counter"]) == 8 * increments

    @pytest.mark.parametrize("config_fn", ALL_CONFIGS, ids=CONFIG_IDS)
    def test_lock_is_released_at_end(self, config_fn):
        def factory(machine, program, sync):
            lock = sync.create_lock()

            def body(ctx):
                yield from lock.acquire(ctx)
                yield Compute(3)
                yield from lock.release(ctx)

            return {"body": body, "lock": lock}

        machine, result, shared = run_machine(config_fn, factory, num_threads=4)
        assert result.completed

    def test_wisync_lock_is_much_faster_than_baseline(self):
        def factory(machine, program, sync):
            lock = sync.create_lock()

            def body(ctx):
                for _ in range(3):
                    yield from lock.acquire(ctx)
                    yield Compute(10)
                    yield from lock.release(ctx)
                    yield Compute(50)

            return {"body": body}

        _, base_result, _ = run_machine(baseline, factory, num_threads=16, cores=16)
        _, wisync_result, _ = run_machine(wisync, factory, num_threads=16, cores=16)
        assert wisync_result.total_cycles < base_result.total_cycles / 3


class TestBarriers:
    @pytest.mark.parametrize("config_fn", ALL_CONFIGS, ids=CONFIG_IDS)
    def test_no_thread_passes_barrier_early(self, config_fn):
        """Phase counters must never be observed out of sync across a barrier."""
        phases = 3

        def factory(machine, program, sync):
            barrier = sync.create_barrier(8)
            phase_flags = [program.alloc_shared() for _ in range(8)]
            violations = []

            def body(ctx):
                for phase in range(1, phases + 1):
                    yield Write(phase_flags[ctx.thread_id], phase)
                    yield Compute(ctx.rng.jitter(50))
                    yield from barrier.wait(ctx)
                    # After the barrier, every thread must have reached this phase.
                    for flag in phase_flags:
                        value = yield Read(flag)
                        if value < phase:
                            violations.append((ctx.thread_id, phase, value))
                    yield from barrier.wait(ctx)

            return {"body": body, "violations": violations}

        machine, result, shared = run_machine(config_fn, factory)
        assert result.completed
        assert shared["violations"] == []

    @pytest.mark.parametrize("config_fn", ALL_CONFIGS, ids=CONFIG_IDS)
    def test_barrier_reusable_many_times(self, config_fn):
        def factory(machine, program, sync):
            barrier = sync.create_barrier(4)

            def body(ctx):
                for _ in range(6):
                    yield Compute(ctx.rng.jitter(30))
                    yield from barrier.wait(ctx)

            return {"body": body}

        machine, result, _ = run_machine(config_fn, factory, num_threads=4, cores=4)
        assert result.completed

    def test_single_thread_barrier_does_not_block(self):
        def factory(machine, program, sync):
            barrier = sync.create_barrier(1)

            def body(ctx):
                yield from barrier.wait(ctx)
                yield from barrier.wait(ctx)

            return {"body": body}

        machine, result, _ = run_machine(wisync, factory, num_threads=1, cores=2)
        assert result.completed

    def test_tone_barrier_beats_wireless_barrier(self):
        def factory(machine, program, sync):
            barrier = sync.create_barrier(16)

            def body(ctx):
                for _ in range(4):
                    yield Compute(30)
                    yield from barrier.wait(ctx)

            return {"body": body}

        _, with_tone, _ = run_machine(wisync, factory, num_threads=16, cores=16)
        _, without_tone, _ = run_machine(wisync_not, factory, num_threads=16, cores=16)
        assert with_tone.total_cycles < without_tone.total_cycles

    def test_paper_ordering_baseline_much_slower(self):
        def factory(machine, program, sync):
            barrier = sync.create_barrier(16)

            def body(ctx):
                for _ in range(3):
                    yield Compute(50)
                    yield from barrier.wait(ctx)

            return {"body": body}

        _, base, _ = run_machine(baseline, factory, num_threads=16, cores=16)
        _, plus, _ = run_machine(baseline_plus, factory, num_threads=16, cores=16)
        _, ws, _ = run_machine(wisync, factory, num_threads=16, cores=16)
        assert ws.total_cycles < plus.total_cycles < base.total_cycles


class TestCellsAndReductions:
    @pytest.mark.parametrize("config_fn", ALL_CONFIGS, ids=CONFIG_IDS)
    def test_reduction_total_is_exact(self, config_fn):
        adds = 5

        def factory(machine, program, sync):
            reducer = sync.create_reducer()

            def body(ctx):
                for i in range(adds):
                    yield from reducer.add(ctx, ctx.thread_id + 1)
                    yield Compute(ctx.rng.jitter(10))

            return {"body": body, "reducer": reducer}

        machine, result, shared = run_machine(config_fn, factory, num_threads=6, cores=8)
        expected = adds * sum(range(1, 7))
        cell_addr = shared["reducer"].cell.addr
        if machine.fabric is not None and not machine.fabric.is_spilled(cell_addr):
            assert machine.fabric.memory.read(cell_addr) == expected
        else:
            assert machine.memory.peek(cell_addr) == expected

    @pytest.mark.parametrize("config_fn", [baseline, wisync], ids=["baseline", "wisync"])
    def test_cas_cell_only_one_winner_per_round(self, config_fn):
        def factory(machine, program, sync):
            cell = sync.create_cell()
            wins = []

            def body(ctx):
                success, old = yield from cell.cas(ctx, expected=0, new=ctx.thread_id + 1)
                if success:
                    wins.append(ctx.thread_id)

            return {"body": body, "wins": wins}

        machine, result, shared = run_machine(config_fn, factory, num_threads=8)
        assert result.completed
        assert len(shared["wins"]) == 1


class TestProducerConsumerAndEureka:
    @pytest.mark.parametrize("config_fn", [baseline, wisync], ids=["baseline", "wisync"])
    def test_producer_consumer_transfers_payloads_in_order(self, config_fn):
        payload_count = 4

        def factory(machine, program, sync):
            channel = sync.create_channel()
            received = []

            def producer(ctx):
                for i in range(payload_count):
                    yield from channel.produce(ctx, (i, i + 1, i + 2, i + 3))

            def consumer(ctx):
                for _ in range(payload_count):
                    values = yield from channel.consume(ctx)
                    received.append(values)

            return {"producer": producer, "consumer": consumer, "received": received}

        machine = Manycore(config_fn(num_cores=4))
        program = machine.new_program("pc")
        sync = SyncFactory(program)
        shared = factory(machine, program, sync)
        program.add_thread(shared["producer"], core_id=0)
        program.add_thread(shared["consumer"], core_id=1)
        result = machine.run()
        assert result.completed
        assert shared["received"] == [(i, i + 1, i + 2, i + 3) for i in range(payload_count)]

    @pytest.mark.parametrize("config_fn", [baseline, wisync], ids=["baseline", "wisync"])
    def test_eureka_or_barrier_releases_waiters(self, config_fn):
        def factory(machine, program, sync):
            eureka = sync.create_or_barrier()
            released = []

            def finder(ctx):
                yield Compute(200)
                yield from eureka.post(ctx)

            def waiter(ctx):
                yield from eureka.wait(ctx)
                released.append(ctx.thread_id)

            return {"finder": finder, "waiter": waiter, "released": released}

        machine = Manycore(config_fn(num_cores=4))
        program = machine.new_program("eureka")
        sync = SyncFactory(program)
        shared = factory(machine, program, sync)
        program.add_thread(shared["finder"], core_id=0)
        for core in (1, 2, 3):
            program.add_thread(shared["waiter"], core_id=core)
        result = machine.run()
        assert result.completed
        assert sorted(shared["released"]) == [1, 2, 3]
