"""Tests for the workload builders, experiments, and analysis helpers."""

import pytest

from repro.analysis.area_power import area_power_table
from repro.analysis.metrics import speedup, throughput_per_kcycle, utilization_percent
from repro.analysis.tables import format_table
from repro.errors import WorkloadError
from repro.experiments.common import build_machine, run_workload_on_configs
from repro.experiments.fig7_tightloop import format_fig7, run_fig7
from repro.experiments.fig9_cas import format_fig9, run_fig9
from repro.experiments.table4_area_power import format_table4, run_table4
from repro.machine.configs import baseline, wisync
from repro.machine.manycore import Manycore
from repro.workloads.cas_kernels import CasKernelKind, build_cas_kernel
from repro.workloads.livermore import LivermoreLoop, build_livermore_loop
from repro.workloads.synthetic_apps import (
    APPLICATION_PROFILES,
    application_names,
    build_application,
    profile_by_name,
)
from repro.workloads.tightloop import build_tightloop


class TestTightLoop:
    def test_runs_on_both_architectures(self):
        for config_fn in (baseline, wisync):
            machine = Manycore(config_fn(num_cores=8))
            handle = build_tightloop(machine, iterations=2)
            result = handle.run()
            assert result.completed
            assert handle.cycles_per_iteration(result) > 0

    def test_wisync_much_faster_than_baseline(self):
        base = build_tightloop(Manycore(baseline(num_cores=16)), iterations=3).run()
        fast = build_tightloop(Manycore(wisync(num_cores=16)), iterations=3).run()
        assert fast.total_cycles * 3 < base.total_cycles

    def test_metadata_records_iterations(self):
        handle = build_tightloop(Manycore(wisync(num_cores=4)), iterations=7)
        assert handle.metadata["iterations"] == 7
        assert handle.num_threads == 4


class TestLivermore:
    @pytest.mark.parametrize("loop", list(LivermoreLoop))
    def test_each_loop_runs(self, loop):
        machine = Manycore(wisync(num_cores=8))
        handle = build_livermore_loop(machine, loop, vector_length=64, repetitions=1)
        result = handle.run()
        assert result.completed

    def test_longer_vectors_take_longer(self):
        short = build_livermore_loop(
            Manycore(wisync(num_cores=8)), LivermoreLoop.INNER_PRODUCT, 64, repetitions=1
        ).run()
        long = build_livermore_loop(
            Manycore(wisync(num_cores=8)), LivermoreLoop.INNER_PRODUCT, 4096, repetitions=1
        ).run()
        assert long.total_cycles > short.total_cycles

    def test_invalid_vector_length_rejected(self):
        with pytest.raises(WorkloadError):
            build_livermore_loop(Manycore(wisync(num_cores=4)), LivermoreLoop.ICCG, 0)


class TestCasKernels:
    @pytest.mark.parametrize("kind", list(CasKernelKind))
    def test_each_kernel_completes_expected_successes(self, kind):
        machine = Manycore(wisync(num_cores=8))
        handle = build_cas_kernel(machine, kind, critical_section_instructions=256,
                                  successes_per_thread=3)
        result = handle.run()
        assert result.completed
        assert sum(result.thread_results) == 3 * 8

    def test_wisync_throughput_beats_baseline_under_contention(self):
        def throughput(config_fn):
            machine = Manycore(config_fn(num_cores=16))
            handle = build_cas_kernel(machine, CasKernelKind.ADD, 64, successes_per_thread=3)
            result = handle.run()
            return throughput_per_kcycle(int(handle.metadata["total_successes"]),
                                         result.total_cycles)

        assert throughput(wisync) > 5 * throughput(baseline)

    def test_larger_critical_sections_reduce_throughput_gap(self):
        def gap(crit):
            results = {}
            for name, config_fn in (("baseline", baseline), ("wisync", wisync)):
                machine = Manycore(config_fn(num_cores=8))
                handle = build_cas_kernel(machine, CasKernelKind.ADD, crit, successes_per_thread=3)
                result = handle.run()
                results[name] = throughput_per_kcycle(3 * 8, result.total_cycles)
            return results["wisync"] / results["baseline"]

        assert gap(16384) < gap(64)


class TestApplicationProxies:
    def test_profile_catalog_covers_both_suites(self):
        names = application_names()
        assert "streamcluster" in names and "raytrace" in names
        assert len(application_names("parsec")) == 12
        assert len(application_names("splash2")) == 14
        assert len(APPLICATION_PROFILES) == 26

    def test_unknown_profile_rejected(self):
        with pytest.raises(WorkloadError):
            profile_by_name("doom3")

    def test_application_runs_on_all_configs(self):
        profile = profile_by_name("streamcluster")
        results = run_workload_on_configs(
            lambda machine: build_application(machine, profile, phase_scale=0.2),
            num_cores=8,
        )
        assert set(results) == {"Baseline", "Baseline+", "WiSyncNoT", "WiSync"}
        assert all(result.completed for result in results.values())

    def test_barrier_heavy_app_speeds_up_more_than_compute_bound(self):
        def speedup_for(name):
            profile = profile_by_name(name)
            results = run_workload_on_configs(
                lambda machine: build_application(machine, profile, phase_scale=0.2),
                num_cores=16,
                configs=["Baseline", "WiSync"],
            )
            return speedup(results["Baseline"].total_cycles, results["WiSync"].total_cycles)

        assert speedup_for("streamcluster") > speedup_for("blackscholes")
        assert speedup_for("blackscholes") < 1.5


class TestExperimentsAndAnalysis:
    def test_table4_matches_paper_numbers(self):
        table = run_table4()
        rf = table["transceiver+2antennas"]
        assert rf["area_mm2"] == pytest.approx(0.14)
        assert rf["power_w"] == pytest.approx(0.018)
        assert table["Xeon Haswell"]["rf_area_percent"] == pytest.approx(0.7, abs=0.1)
        assert table["Atom Silvermont"]["rf_area_percent"] == pytest.approx(5.6, abs=0.2)
        assert "Table 4" in format_table4(table)

    def test_fig7_small_sweep_produces_paper_ordering(self):
        series = run_fig7(core_counts=[16], iterations=2)
        row = series[16]
        assert row["WiSync"] < row["Baseline+"] < row["Baseline"]
        assert row["WiSync"] < row["WiSyncNoT"] < row["Baseline"]
        assert "cores" in format_fig7(series)

    def test_fig9_small_sweep_wisync_wins_at_high_contention(self):
        series = run_fig9(
            kinds=[CasKernelKind.ADD], core_counts=[8], critical_sections=[64],
            successes_per_thread=3,
        )
        point = series[("add", 8, 64)]
        assert point["WiSync"] > point["Baseline"]
        assert "kernel" in format_fig9(series)

    def test_build_machine_labels(self):
        machine = build_machine("WiSync", num_cores=4)
        assert machine.config.name == "wisync"
        assert machine.config.num_cores == 4

    def test_metric_helpers(self):
        assert speedup(200, 100) == 2.0
        assert throughput_per_kcycle(50, 1000) == 50.0

    def test_metric_helpers_reject_non_positive_denominators(self):
        # The silent-0.0 fallback hid harness bugs; invalid input now raises
        # unless the caller opts into a fallback with default=.
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError, match="speedup"):
            speedup(200, 0)
        with pytest.raises(AnalysisError, match="total_cycles"):
            throughput_per_kcycle(50, 0)
        assert speedup(200, 0, default=0.0) == 0.0
        assert throughput_per_kcycle(50, 0, default=float("nan")) != 0.0

    def test_format_table_renders_all_rows(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3]], title="T")
        assert "T" in text and "x" in text and "2.5" in text
