"""Tests for the ``repro lint`` static-analysis subsystem.

Per-rule positive/negative fixtures are tiny module trees written to
``tmp_path``; path-scope classification uses the directory names, so a file
under ``<tmp>/sim/`` is sim-core and one under ``<tmp>/runner/`` is
infrastructure, exactly as in the real package.
"""

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.errors import LintError
from repro.lint import (
    Finding,
    LintEngine,
    apply_baseline,
    default_rules,
    load_baseline,
    write_baseline,
)
from repro.runner.cli import main


def write_tree(root: Path, files: dict) -> str:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return str(root)


def lint(root, select=None, ignore=None):
    engine = LintEngine(default_rules(), select=select, ignore=ignore)
    return engine.run([str(root)])


def rule_ids(findings):
    return [finding.rule for finding in findings]


# ---------------------------------------------------------------- DET001
class TestDet001:
    def test_flags_ambient_entropy_in_sim_core(self, tmp_path):
        write_tree(tmp_path, {
            "sim/mod.py": """
                import os
                import random
                import time
                import uuid

                def bad():
                    a = random.random()
                    b = time.time()
                    c = uuid.uuid4()
                    d = os.urandom(8)
                    return a, b, c, d
            """,
        })
        findings = lint(tmp_path, select=["DET001"])
        assert len(findings) == 4
        messages = " ".join(f.message for f in findings)
        for banned in ("random.random", "time.time", "uuid.uuid4", "os.urandom"):
            assert banned in messages

    def test_flags_aliased_and_from_imports(self, tmp_path):
        write_tree(tmp_path, {
            "core/mod.py": """
                import random as rnd
                from time import monotonic
                from datetime import datetime

                def bad():
                    return rnd.Random(3), monotonic(), datetime.now()
            """,
        })
        findings = lint(tmp_path, select=["DET001"])
        assert len(findings) == 3

    def test_infrastructure_paths_exempt_by_scope(self, tmp_path):
        write_tree(tmp_path, {
            "runner/mod.py": """
                import time

                def fine():
                    return time.time()
            """,
        })
        assert lint(tmp_path, select=["DET001"]) == []

    def test_deterministic_rng_usage_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "wireless/mod.py": """
                def backoff(rng):
                    return rng.randint(0, 7)
            """,
        })
        assert lint(tmp_path, select=["DET001"]) == []


# ---------------------------------------------------------------- DET002
class TestDet002:
    def test_flags_iteration_over_bare_set(self, tmp_path):
        write_tree(tmp_path, {
            "noc/mod.py": """
                def bad(items):
                    pending = set(items)
                    for item in pending:
                        item.fire()
            """,
        })
        findings = lint(tmp_path, select=["DET002"])
        assert rule_ids(findings) == ["DET002"]
        assert "bare set" in findings[0].message

    def test_flags_materialized_set_and_attribute_sets(self, tmp_path):
        write_tree(tmp_path, {
            "mem/mod.py": """
                class Directory:
                    def __init__(self):
                        self.sharers = set()

                    def bad(self):
                        return [s for s in list(self.sharers)]
            """,
        })
        assert rule_ids(lint(tmp_path, select=["DET002"])) == ["DET002"]

    def test_sorted_iteration_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "mem/mod.py": """
                def fine(items):
                    targets = set(items)
                    for target in sorted(targets):
                        target.fire()
            """,
        })
        assert lint(tmp_path, select=["DET002"]) == []

    def test_dict_view_flagged_only_in_scheduling_functions(self, tmp_path):
        write_tree(tmp_path, {
            "sync/mod.py": """
                def schedules(sim, waiters):
                    for key, waiter in waiters.items():
                        sim.schedule(1, waiter)

                def accumulates(stats, counters):
                    for name in counters.keys():
                        stats.bump(name)
            """,
        })
        findings = lint(tmp_path, select=["DET002"])
        assert len(findings) == 1
        assert "dict view" in findings[0].message


# ---------------------------------------------------------------- ERR001
class TestErr001:
    def test_flags_builtin_and_local_exceptions(self, tmp_path):
        write_tree(tmp_path, {
            "runner/mod.py": """
                class LocalOops(Exception):
                    pass

                def bad(flag):
                    if flag:
                        raise ValueError("nope")
                    raise LocalOops()
            """,
        })
        findings = lint(tmp_path, select=["ERR001"])
        assert len(findings) == 2
        assert "ValueError" in findings[0].message or "ValueError" in findings[1].message

    def test_repro_errors_and_idioms_are_clean(self, tmp_path):
        write_tree(tmp_path, {
            "runner/mod.py": """
                from repro.errors import ConfigurationError, ReproError

                class LocalFine(ReproError):
                    pass

                def fine(flag):
                    if flag:
                        raise ConfigurationError("bad knob")
                    if flag is None:
                        raise NotImplementedError
                    raise LocalFine("derived")
            """,
        })
        assert lint(tmp_path, select=["ERR001"]) == []

    def test_reraise_of_bound_name_is_ignored(self, tmp_path):
        write_tree(tmp_path, {
            "runner/mod.py": """
                def fine():
                    try:
                        return 1
                    except Exception as error:
                        raise error
            """,
        })
        assert lint(tmp_path, select=["ERR001"]) == []


# --------------------------------------------------------------- SLOT001
class TestSlot001:
    def test_flags_undeclared_slot_assignment(self, tmp_path):
        write_tree(tmp_path, {
            "sim/mod.py": """
                class Event:
                    __slots__ = ("time", "seq")

                    def __init__(self, time, seq):
                        self.time = time
                        self.seq = seq
                        self.extra = None
            """,
        })
        findings = lint(tmp_path, select=["SLOT001"])
        assert rule_ids(findings) == ["SLOT001"]
        assert "self.extra" in findings[0].message

    def test_inherited_slots_and_unslotted_classes_are_clean(self, tmp_path):
        write_tree(tmp_path, {
            "sim/mod.py": """
                class Base:
                    __slots__ = ("name",)

                class Child(Base):
                    __slots__ = ("value",)

                    def __init__(self):
                        self.name = "x"
                        self.value = 0

                class Plain:
                    def __init__(self):
                        self.anything = 1
            """,
        })
        assert lint(tmp_path, select=["SLOT001"]) == []

    def test_unresolvable_base_skips_class(self, tmp_path):
        write_tree(tmp_path, {
            "sim/mod.py": """
                from collections import UserDict

                class Odd(UserDict):
                    __slots__ = ("x",)

                    def __init__(self):
                        self.whatever = 1
            """,
        })
        assert lint(tmp_path, select=["SLOT001"]) == []


# --------------------------------------------------------------- SNAP001
class TestSnap001:
    def test_flags_attribute_missing_from_checkpoint(self, tmp_path):
        write_tree(tmp_path, {
            "sim/engine.py": """
                class Simulator:
                    def __init__(self):
                        self.now = 0
                        self._seq = 0
                        self.leaked = []

                    def checkpoint_state(self):
                        return {"now": self.now, "seq": self._seq}
            """,
        })
        findings = lint(tmp_path, select=["SNAP001"])
        assert rule_ids(findings) == ["SNAP001"]
        assert "self.leaked" in findings[0].message

    def test_exempt_attributes_and_stale_keys(self, tmp_path):
        write_tree(tmp_path, {
            "sim/engine.py": """
                class Simulator:
                    def __init__(self):
                        self.now = 0
                        self._queue = []

                    def checkpoint_state(self):
                        return {"now": self.now, "ghost": 1}
            """,
        })
        findings = lint(tmp_path, select=["SNAP001"])
        # _queue is in the documented exemption table; 'ghost' is stale.
        assert len(findings) == 1
        assert "ghost" in findings[0].message

    def test_manycore_capture_cross_file(self, tmp_path):
        write_tree(tmp_path, {
            "machine/manycore.py": """
                class Manycore:
                    def __init__(self):
                        self.sim = object()
                        self.stats = object()
                        self.new_cache = {}
            """,
            "snapshot/execution.py": """
                def _native_state(machine):
                    return {
                        "engine": machine.sim,
                        "stats": machine.stats,
                    }
            """,
        })
        findings = lint(tmp_path, select=["SNAP001"])
        assert rule_ids(findings) == ["SNAP001"]
        assert "self.new_cache" in findings[0].message

    def test_frame_slot_missing_from_capture(self, tmp_path):
        write_tree(tmp_path, {
            "cpu/frames.py": """
                class Frame:
                    __slots__ = ("routine", "label", "locals", "widget")
            """,
            "snapshot/native.py": """
                def _capture_thread(thread):
                    return [
                        {"routine": frame.routine, "label": frame.label,
                         "locals": dict(frame.locals)}
                        for frame in thread.frames
                    ]
            """,
        })
        findings = lint(tmp_path, select=["SNAP001"])
        assert rule_ids(findings) == ["SNAP001"]
        assert "'widget'" in findings[0].message

    def test_frame_slots_all_captured(self, tmp_path):
        write_tree(tmp_path, {
            "cpu/frames.py": """
                class Frame:
                    __slots__ = ("routine", "label", "locals")
            """,
            "snapshot/native.py": """
                def _capture_thread(thread):
                    return [
                        {"routine": frame.routine, "label": frame.label,
                         "locals": dict(frame.locals)}
                        for frame in thread.frames
                    ]
            """,
        })
        assert lint(tmp_path, select=["SNAP001"]) == []


# --------------------------------------------------------------- SNAP002
class TestSnap002:
    def test_flags_closure_and_set_stores(self, tmp_path):
        write_tree(tmp_path, {
            "workloads/mod.py": """
                def _step(frame, value, env):
                    L, label = frame.locals, frame.label
                    L["callback"] = lambda x: x + 1
                    L["pending"] = set()
                    L["seen"] = {1, 2, 3}
                    frame.locals["table"] = {"a": 1}
                    return None
            """,
        })
        findings = lint(tmp_path, select=["SNAP002"])
        assert rule_ids(findings) == ["SNAP002"] * 4
        messages = " ".join(f.message for f in findings)
        assert "'callback'" in messages and "lambda" in messages
        assert "'pending'" in messages
        assert "'table'" in messages and "dict" in messages

    def test_plain_data_stores_are_clean(self, tmp_path):
        write_tree(tmp_path, {
            "workloads/mod.py": """
                def _step(frame, value, env):
                    L, label = frame.locals, frame.label
                    L["iter"] = 0
                    L["name"] = "x"
                    L["pair"] = (1, 2)
                    L["flags"] = [True, False]
                    old, success = value
                    L["old"] = old
                    return None
            """,
        })
        assert lint(tmp_path, select=["SNAP002"]) == []

    def test_alias_free_functions_not_confused(self, tmp_path):
        # Subscript stores into unrelated dicts are not frame locals.
        write_tree(tmp_path, {
            "workloads/mod.py": """
                def _step(frame, value, env):
                    cache = {}
                    cache["fn"] = lambda x: x
                    return None

                def helper(table):
                    table["fn"] = lambda x: x
            """,
        })
        assert lint(tmp_path, select=["SNAP002"]) == []

    def test_flags_bad_locals_template(self, tmp_path):
        write_tree(tmp_path, {
            "workloads/mod.py": """
                def build(sid):
                    return Call("sync.barrier.wait", {sid: 1}, "waited")

                def spawn():
                    return FrameBody("body", {"hook": lambda: None})
            """,
        })
        findings = lint(tmp_path, select=["SNAP002"])
        assert rule_ids(findings) == ["SNAP002"] * 2
        messages = " ".join(f.message for f in findings)
        assert "string constant" in messages
        assert "lambda" in messages

    def test_good_locals_template_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "workloads/mod.py": """
                def build(sid, label):
                    return Call("sync.barrier.wait", {"sid": sid}, label)

                def spawn():
                    return FrameBody("body")
            """,
        })
        assert lint(tmp_path, select=["SNAP002"]) == []


# -------------------------------------------------------------- PROTO001
class TestProto001:
    DISTRIBUTED = """
        class Broker:
            def serve(self, kind):
                if kind == "hello":
                    return {"type": "welcome"}
                if kind == "result":
                    return {"type": "task"}
                return None

        def run_worker(reply):
            t = reply["type"]
            if t == "welcome":
                return {"type": "hello"}
            if t == "task":
                return {"type": "result"}
            return {"type": "orphan"}
    """

    def test_flags_sent_but_never_handled_kind(self, tmp_path):
        write_tree(tmp_path, {"runner/distributed.py": self.DISTRIBUTED})
        findings = lint(tmp_path, select=["PROTO001"])
        assert rule_ids(findings) == ["PROTO001"]
        assert "'orphan'" in findings[0].message
        assert "never handles" in findings[0].message

    def test_flags_journaled_but_never_replayed_kind(self, tmp_path):
        write_tree(tmp_path, {
            "runner/distributed.py": """
                class Broker:
                    def record(self):
                        self._journal_append({"kind": "assigned", "task": 1})
                        self._journal_append({"kind": "zombie", "task": 2})
            """,
            "runner/journal.py": """
                KIND_ASSIGNED = "assigned"

                def replay(kind):
                    if kind == KIND_ASSIGNED:
                        return True
                    return False
            """,
        })
        findings = lint(tmp_path, select=["PROTO001"])
        assert rule_ids(findings) == ["PROTO001"]
        assert "'zombie'" in findings[0].message
        assert "never aggregates" in findings[0].message

    def test_closed_protocol_is_clean(self, tmp_path):
        closed = self.DISTRIBUTED.replace('return {"type": "orphan"}', "return None")
        write_tree(tmp_path, {"runner/distributed.py": closed})
        assert lint(tmp_path, select=["PROTO001"]) == []

    def test_service_module_kind_without_worker_handler_is_flagged(self, tmp_path):
        # The service daemon sends over the same wire protocol: a kind built
        # inside ServiceBroker/JobStore that no worker-side code compares
        # must close the vocabulary exactly like a Broker-sent kind.
        closed = self.DISTRIBUTED.replace('return {"type": "orphan"}', "return None")
        write_tree(tmp_path, {
            "runner/distributed.py": closed,
            "service/daemon.py": """
                class ServiceBroker:
                    def serve(self):
                        return {"type": "reject"}
            """,
        })
        findings = lint(tmp_path, select=["PROTO001"])
        assert rule_ids(findings) == ["PROTO001"]
        assert "'reject'" in findings[0].message
        assert findings[0].rel == "service/daemon.py"

    def test_service_kind_handled_by_worker_in_other_module_is_clean(self, tmp_path):
        # Closure is aggregated across modules: the worker-side handshake in
        # runner/distributed.py satisfies a ServiceBroker-sent 'reject', and
        # JobStore's broker-side dispatch satisfies worker-sent kinds.
        closed = self.DISTRIBUTED.replace(
            'return {"type": "orphan"}', 'return {"type": "release"}'
        )
        write_tree(tmp_path, {
            "runner/distributed.py": closed + """

        def handshake(welcome):
            if welcome.get("type") == "reject":
                raise RuntimeError("rejected")
            """,
            "service/daemon.py": """
                class ServiceBroker:
                    def serve(self, kind):
                        if kind == "release":
                            return {"type": "reject"}
                        return None
            """,
        })
        assert lint(tmp_path, select=["PROTO001"]) == []

    def test_service_journal_kind_without_replay_is_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "runner/distributed.py": """
                class Broker:
                    def record(self):
                        self._journal_append({"kind": "assigned", "task": 1})
            """,
            "service/jobstore.py": """
                class JobStore:
                    def submit(self):
                        self._journal_append({"kind": "job-submitted"})
            """,
            "runner/journal.py": """
                KIND_ASSIGNED = "assigned"

                def replay(kind):
                    if kind == KIND_ASSIGNED:
                        return True
                    return False
            """,
        })
        findings = lint(tmp_path, select=["PROTO001"])
        assert rule_ids(findings) == ["PROTO001"]
        assert "'job-submitted'" in findings[0].message
        assert "never aggregates" in findings[0].message


# ----------------------------------------------------------- suppressions
class TestNoqa:
    def test_noqa_with_rule_id_suppresses(self, tmp_path):
        write_tree(tmp_path, {
            "sim/mod.py": """
                import time

                def stamped():
                    return time.time()  # repro: noqa[DET001] -- test fixture
            """,
        })
        assert lint(tmp_path, select=["DET001"]) == []

    def test_blanket_noqa_suppresses_everything(self, tmp_path):
        write_tree(tmp_path, {
            "sim/mod.py": """
                import time

                def stamped():
                    return time.time()  # repro: noqa
            """,
        })
        assert lint(tmp_path) == []

    def test_noqa_for_other_rule_does_not_suppress(self, tmp_path):
        write_tree(tmp_path, {
            "sim/mod.py": """
                import time

                def stamped():
                    return time.time()  # repro: noqa[ERR001]
            """,
        })
        assert rule_ids(lint(tmp_path, select=["DET001"])) == ["DET001"]


# -------------------------------------------------------------- baselines
class TestBaseline:
    def make_finding(self, line):
        return Finding(
            rule="DET001",
            path="src/repro/sim/mod.py",
            rel="sim/mod.py",
            line=line,
            column=1,
            message="call to time.time() in sim-core code",
        )

    def test_fingerprint_survives_line_drift(self):
        assert self.make_finding(10).fingerprint() == self.make_finding(99).fingerprint()

    def test_roundtrip_and_filtering(self, tmp_path):
        baseline_file = tmp_path / "baseline.json"
        grandfathered = self.make_finding(10)
        write_baseline([grandfathered], baseline_file)
        fingerprints = load_baseline(baseline_file)
        fresh = Finding(
            rule="ERR001",
            path="src/repro/runner/mod.py",
            rel="runner/mod.py",
            line=5,
            column=1,
            message="raise of builtin ValueError",
        )
        new, baselined = apply_baseline([self.make_finding(42), fresh], fingerprints)
        assert [f.rule for f in new] == ["ERR001"]
        assert [f.rule for f in baselined] == ["DET001"]

    def test_malformed_baseline_raises_lint_error(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("[]")
        with pytest.raises(LintError):
            load_baseline(bad)


# -------------------------------------------------------------------- CLI
class TestCli:
    def test_exit_zero_and_text_output_on_clean_tree(self, tmp_path, capsys):
        write_tree(tmp_path, {"sim/mod.py": "x = 1\n"})
        assert main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_with_file_line_and_rule_id(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "sim/mod.py": """
                import time

                def stamped():
                    return time.time()
            """,
        })
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "sim/mod.py:5:" in out
        assert "DET001" in out

    def test_json_output_schema(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "sim/mod.py": """
                import time

                def stamped():
                    return time.time()
            """,
        })
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["total"] == 1
        assert payload["counts"] == {"DET001": 1}
        finding = payload["findings"][0]
        for key in ("rule", "path", "line", "column", "severity", "message",
                    "fix_hint", "fingerprint"):
            assert key in finding
        assert finding["rule"] == "DET001"

    def test_baseline_grandfathers_findings(self, tmp_path, capsys):
        root = tmp_path / "tree"
        write_tree(root, {
            "sim/mod.py": """
                import time

                def stamped():
                    return time.time()
            """,
        })
        baseline = tmp_path / "baseline.json"
        assert main([
            "lint", str(root), "--baseline", str(baseline), "--write-baseline",
        ]) == 0
        capsys.readouterr()
        assert main(["lint", str(root), "--baseline", str(baseline)]) == 0
        assert "grandfathered" in capsys.readouterr().out

    def test_select_and_ignore_validation(self, tmp_path, capsys):
        write_tree(tmp_path, {"sim/mod.py": "x = 1\n"})
        assert main(["lint", str(tmp_path), "--select", "NOPE99"]) == 2
        assert "unknown rule" in capsys.readouterr().err
        assert main(["lint", str(tmp_path), "--ignore", "DET001"]) == 0

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "DET001",
            "DET002",
            "SNAP001",
            "SNAP002",
            "PROTO001",
            "ERR001",
            "SLOT001",
        ):
            assert rule_id in out


# ---------------------------------------------------------------- self-lint
class TestSelfLint:
    def test_shipped_tree_is_clean(self):
        """The committed package passes its own battery with no baseline."""
        package_dir = Path(repro.__file__).parent
        findings = LintEngine(default_rules()).run([str(package_dir)])
        assert findings == [], "\n".join(f.format_text() for f in findings)

    def test_seeded_violation_in_package_copy_is_caught(self, tmp_path):
        """Acceptance drill: a time.time() smuggled into sim/engine.py fails lint."""
        import shutil

        package_dir = Path(repro.__file__).parent
        copy = tmp_path / "repro"
        shutil.copytree(package_dir, copy)
        engine_py = copy / "sim" / "engine.py"
        source = engine_py.read_text().replace(
            "self.now: int = 0",
            "self.now: int = 0\n        import time\n        self.booted = time.time()",
        )
        engine_py.write_text(source)
        findings = LintEngine(default_rules()).run([str(copy)])
        rules = {finding.rule for finding in findings}
        assert "DET001" in rules  # the wall-clock read
        assert "SNAP001" in rules  # the uncaptured attribute
