"""Tests for the Manycore machine driver, programs, and results."""

import pytest

from repro.errors import DeadlockError, WorkloadError
from repro.isa.operations import (
    BmAlloc,
    BmLoad,
    BmStore,
    BmWaitUntil,
    Compute,
    Fence,
    Read,
    ToneStore,
    ToneWait,
    Write,
)
from repro.machine.configs import baseline, wisync
from repro.machine.manycore import Manycore
from repro.machine.results import SimResult
from repro.sim.stats import StatsRegistry


def _noop_thread(ctx):
    yield Compute(1)


class TestProgramAndThreads:
    def test_threads_placed_round_robin_by_default(self, wisync_machine):
        program = wisync_machine.new_program("p")
        threads = [program.add_thread(_noop_thread) for _ in range(10)]
        assert [t.core_id for t in threads] == [i % 8 for i in range(10)]

    def test_alloc_shared_pads_to_cache_lines(self, wisync_machine):
        program = wisync_machine.new_program("p")
        a = program.alloc_shared()
        b = program.alloc_shared()
        assert b - a >= wisync_machine.config.cache.line_bytes

    def test_programs_get_disjoint_heaps(self, wisync_machine):
        first = wisync_machine.new_program("a")
        second = wisync_machine.new_program("b")
        assert first.pid != second.pid
        assert abs(first.alloc_shared() - second.alloc_shared()) >= (1 << 24)

    def test_private_addresses_are_per_thread(self, wisync_machine):
        program = wisync_machine.new_program("p")
        assert program.private_addr(0) != program.private_addr(1)

    def test_alloc_broadcast_on_wireless_machine(self, wisync_machine):
        program = wisync_machine.new_program("p")
        addr = program.alloc_broadcast(2)
        assert not wisync_machine.fabric.is_spilled(addr)

    def test_alloc_broadcast_on_baseline_machine_is_soft(self, baseline_machine):
        program = baseline_machine.new_program("p")
        addr = program.alloc_broadcast(1)
        assert isinstance(addr, int)

    def test_zero_word_allocation_rejected(self, wisync_machine):
        program = wisync_machine.new_program("p")
        with pytest.raises(WorkloadError):
            program.alloc_shared(0)


class TestRunSemantics:
    def test_compute_advances_time(self, any_machine):
        program = any_machine.new_program("p")

        def body(ctx):
            yield Compute(100)
            yield Fence()

        program.add_thread(body)
        result = any_machine.run()
        assert result.total_cycles >= 101
        assert result.completed

    def test_thread_results_collected(self, wisync_machine):
        program = wisync_machine.new_program("p")

        def body(ctx):
            yield Compute(1)
            return ctx.thread_id * 10

        for _ in range(4):
            program.add_thread(body)
        result = wisync_machine.run()
        assert result.thread_results == [0, 10, 20, 30]

    def test_run_without_threads_rejected(self, wisync_machine):
        with pytest.raises(WorkloadError):
            wisync_machine.run()

    def test_machine_cannot_run_twice(self, wisync_machine):
        program = wisync_machine.new_program("p")
        program.add_thread(_noop_thread)
        wisync_machine.run()
        with pytest.raises(WorkloadError):
            wisync_machine.run()

    def test_unsupported_operation_rejected(self, wisync_machine):
        program = wisync_machine.new_program("p")

        def body(ctx):
            yield "not an op"

        program.add_thread(body)
        with pytest.raises(WorkloadError):
            wisync_machine.run()

    def test_deadlock_detection(self, baseline_machine):
        program = baseline_machine.new_program("p")
        flag = program.alloc_shared()

        def body(ctx):
            from repro.isa.operations import WaitUntil
            yield WaitUntil(flag, lambda v: v == 1)  # nobody ever writes it

        program.add_thread(body)
        with pytest.raises(DeadlockError):
            baseline_machine.run()

    def test_tone_ops_rejected_without_tone_channel(self, baseline_machine):
        program = baseline_machine.new_program("p")

        def body(ctx):
            yield ToneStore(0)

        program.add_thread(body)
        with pytest.raises(WorkloadError):
            baseline_machine.run()

    def test_bm_ops_work_end_to_end(self, wisync_machine):
        program = wisync_machine.new_program("p")
        observed = []

        def writer(ctx):
            addr = yield BmAlloc(words=1)
            observed.append(("addr", addr))
            yield BmStore(addr, 42)
            value = yield BmLoad(addr)
            observed.append(("load", value))

        program.add_thread(writer)
        result = wisync_machine.run()
        assert result.completed
        assert ("load", 42) in observed

    def test_bm_wait_until_released_by_other_thread(self, wisync_machine):
        program = wisync_machine.new_program("p")
        addr = program.alloc_broadcast()
        order = []

        def waiter(ctx):
            value = yield BmWaitUntil(addr, lambda v: v == 7)
            order.append(("woke", value))

        def writer(ctx):
            yield Compute(50)
            yield BmStore(addr, 7)
            order.append(("wrote", 7))

        program.add_thread(waiter, core_id=0)
        program.add_thread(writer, core_id=1)
        result = wisync_machine.run()
        assert result.completed
        assert ("woke", 7) in order

    def test_cached_rw_visible_across_threads(self, baseline_machine):
        program = baseline_machine.new_program("p")
        addr = program.alloc_shared()

        def writer(ctx):
            yield Write(addr, 9)

        def reader(ctx):
            yield Compute(500)
            value = yield Read(addr)
            return value

        program.add_thread(writer, core_id=0)
        program.add_thread(reader, core_id=1)
        result = baseline_machine.run()
        assert result.thread_results[1] == 9


class TestSimResult:
    def _result(self, cycles=1000, busy=100):
        stats = StatsRegistry()
        stats.counter("wireless/messages").add(10)
        stats.counter("wireless/collisions").add(2)
        stats.utilization("wireless/data_channel").add_busy(busy)
        return SimResult(
            config_name="wisync",
            num_cores=8,
            total_cycles=cycles,
            thread_cycles=[900, 1000],
            thread_results=[None, None],
            stats=stats,
            finished_threads=2,
            total_threads=2,
        )

    def test_utilization_fraction(self):
        result = self._result(cycles=1000, busy=100)
        assert result.data_channel_utilization() == pytest.approx(0.1)

    def test_speedup_over(self):
        fast = self._result(cycles=500)
        slow = self._result(cycles=2000)
        assert fast.speedup_over(slow) == 4.0

    def test_summary_contains_key_fields(self):
        summary = self._result().summary()
        assert summary["config"] == "wisync"
        assert summary["wireless_messages"] == 10
        assert summary["wireless_collisions"] == 2

    def test_thread_cycle_statistics(self):
        result = self._result()
        assert result.max_thread_cycles == 1000
        assert result.mean_thread_cycles == 950
        assert result.completed
