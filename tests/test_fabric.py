"""Tests for the broadcast fabric and the BM controller (WCB/AFB semantics)."""

import pytest

from repro.config import default_machine_config
from repro.core.fabric import BroadcastFabric
from repro.errors import WirelessError
from repro.isa.operations import RmwKind
from repro.machine.configs import wisync
from repro.machine.manycore import Manycore
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry


def make_fabric(cores=4):
    sim = Simulator()
    fabric = BroadcastFabric(sim, default_machine_config(cores), StatsRegistry())
    for core in range(cores):
        fabric.create_node(core)
    return sim, fabric


class TestFabricStores:
    def test_store_updates_replicated_memory_and_wcb(self):
        sim, fabric = make_fabric()
        controller = fabric.nodes[0].bm_controller
        done = []
        controller.store(3, 99, done.append)
        assert controller.wcb is False
        sim.run()
        assert done == [5]
        assert controller.wcb is True
        assert fabric.memory.read(3) == 99
        # The value is visible through every node's controller (replication).
        for node in fabric.nodes:
            value, latency = node.bm_controller.load(3)
            assert value == 99
            assert latency == 2

    def test_total_order_of_concurrent_stores(self):
        sim, fabric = make_fabric()
        order = []
        fabric.data_channel.add_listener(lambda m, c: order.append((m.sender, c)))
        for node_id in range(3):
            fabric.nodes[node_id].bm_controller.store(0, node_id + 1, lambda c: None)
        sim.run()
        # All three stores were serialized by the channel: distinct cycles.
        cycles = [c for _, c in order]
        assert len(cycles) == len(set(cycles)) == 3
        assert fabric.memory.read(0) in (1, 2, 3)

    def test_bulk_store_writes_four_entries(self):
        sim, fabric = make_fabric()
        controller = fabric.nodes[1].bm_controller
        done = []
        controller.bulk_store(8, (10, 11, 12, 13), done.append)
        sim.run()
        assert done == [15]
        assert [fabric.memory.read(8 + i) for i in range(4)] == [10, 11, 12, 13]
        values, _ = controller.bulk_load(8)
        assert values == (10, 11, 12, 13)

    def test_bulk_store_requires_four_values(self):
        sim, fabric = make_fabric()
        with pytest.raises(Exception):
            fabric.nodes[0].bm_controller.bulk_store(0, (1, 2), lambda c: None)


class TestFabricRmw:
    def test_uncontended_fetch_inc_succeeds(self):
        sim, fabric = make_fabric()
        results = []
        fabric.nodes[0].bm_controller.rmw(1, RmwKind.FETCH_AND_INC, results.append)
        sim.run()
        result = results[0]
        assert result.success and not result.afb
        assert result.old_value == 0
        assert fabric.memory.read(1) == 1

    def test_cas_comparison_failure_is_local(self):
        sim, fabric = make_fabric()
        fabric.memory.write(2, 7)
        results = []
        fabric.nodes[0].bm_controller.rmw(
            2, RmwKind.COMPARE_AND_SWAP, results.append, operand=9, expected=3
        )
        sim.run()
        result = results[0]
        assert not result.success and not result.afb
        assert fabric.memory.read(2) == 7
        # No wireless message was spent on the failed comparison.
        assert fabric.data_channel.total_messages == 0

    def test_concurrent_rmws_one_wins_others_get_afb(self):
        sim, fabric = make_fabric()
        results = []
        for node_id in range(4):
            fabric.nodes[node_id].bm_controller.rmw(5, RmwKind.FETCH_AND_INC, results.append)
        sim.run()
        winners = [r for r in results if r.success]
        losers = [r for r in results if not r.success]
        assert len(winners) == 1
        assert len(losers) == 3
        assert all(r.afb for r in losers)
        # Only the winner's value was applied.
        assert fabric.memory.read(5) == 1

    def test_afb_retry_eventually_counts_everyone(self):
        machine = Manycore(wisync(num_cores=4))
        fabric = machine.fabric
        sim = machine.sim
        counts = {"done": 0}

        def fetch_inc_with_retry(node_id):
            def retry(result):
                if result.afb:
                    fabric.nodes[node_id].bm_controller.rmw(9, RmwKind.FETCH_AND_INC, retry)
                else:
                    counts["done"] += 1

            fabric.nodes[node_id].bm_controller.rmw(9, RmwKind.FETCH_AND_INC, retry)

        for node_id in range(4):
            fetch_inc_with_retry(node_id)
        sim.run()
        assert counts["done"] == 4
        assert fabric.memory.read(9) == 4

    def test_pending_rmw_token_errors(self):
        sim, fabric = make_fabric()
        token = fabric.register_pending_rmw(0, 1)
        assert fabric.consume_pending_rmw(token) is False
        with pytest.raises(WirelessError):
            fabric.consume_pending_rmw(token)


class TestFabricWaiters:
    def test_wait_until_satisfied_immediately(self):
        sim, fabric = make_fabric()
        fabric.memory.write(4, 5)
        woken = []
        fabric.wait_until(4, lambda v: v == 5, woken.append)
        sim.run()
        assert woken == [5]

    def test_wait_until_woken_by_broadcast_store(self):
        sim, fabric = make_fabric()
        woken = []
        fabric.wait_until(6, lambda v: v == 1, lambda v: woken.append((v, sim.now)))
        assert fabric.waiter_count(6) == 1
        fabric.nodes[2].bm_controller.store(6, 1, lambda c: None)
        sim.run()
        assert len(woken) == 1
        value, cycle = woken[0]
        assert value == 1
        assert cycle >= 5  # after the 5-cycle broadcast plus local BM read
        assert fabric.waiter_count(6) == 0

    def test_unsatisfied_waiters_stay_parked(self):
        sim, fabric = make_fabric()
        woken = []
        fabric.wait_until(7, lambda v: v == 2, woken.append)
        fabric.nodes[0].bm_controller.store(7, 1, lambda c: None)
        sim.run()
        assert woken == []
        assert fabric.waiter_count(7) == 1

    def test_allocation_and_spill_routing(self):
        sim, fabric = make_fabric()
        allocation = fabric.allocate(pid=1, words=4)
        assert not allocation.spilled
        assert fabric.memory.owner_pid(allocation.base_addr) == 1
        assert not fabric.is_spilled(allocation.base_addr)
        assert fabric.is_spilled(fabric.allocator.spill_base)

    def test_tone_allocation_requires_tone_channel(self):
        sim = Simulator()
        config = default_machine_config(2).replace(
            tone_channel=default_machine_config(2).tone_channel.__class__(enabled=False)
        )
        fabric = BroadcastFabric(sim, config, StatsRegistry())
        fabric.create_node(0)
        with pytest.raises(WirelessError):
            fabric.allocate(pid=1, words=1, tone_capable=True, participants=[0])

    def test_free_releases_entries(self):
        sim, fabric = make_fabric()
        allocation = fabric.allocate(pid=1, words=2)
        fabric.free(pid=1, base_addr=allocation.base_addr, words=2)
        assert fabric.allocator.allocated_count == 0
