"""Golden-run definitions shared by the bit-identity test and its regenerator.

The hot-path optimizations of the simulation core (tuple-keyed event heap,
dispatch tables, flyweight stats handles) must not change *any* simulated
outcome.  This module pins one small sweep per experiment family and records,
for every grid point: ``total_cycles``, the engine's ``events_processed``
count, and the full ``StatsRegistry.snapshot()``.

``tests/golden_runs.json`` was captured on the pre-optimization tree
(commit f48eccd) and is compared exactly by ``tests/test_golden.py``.
Regenerate only when simulation *semantics* intentionally change::

    PYTHONPATH=src python tests/goldens.py
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from repro.machine.manycore import Manycore
from repro.runner.executor import build_config_for
from repro.runner.registry import REGISTRY
from repro.runner.spec import RunSpec

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_runs.json")


def golden_specs() -> List[RunSpec]:
    """One small, fast sweep per experiment family (fig7/8/9/10 + scenarios)."""
    from repro.experiments.fig7_tightloop import fig7_sweep
    from repro.experiments.fig8_livermore import fig8_sweep
    from repro.experiments.fig9_cas import fig9_sweep
    from repro.experiments.fig10_applications import fig10_sweep
    from repro.experiments.scenarios import scenario_sweep
    from repro.workloads.livermore import LivermoreLoop
    from repro.workloads.synthetic_apps import application_names

    specs: List[RunSpec] = []
    specs.extend(fig7_sweep(core_counts=[16, 32], iterations=3))
    specs.extend(
        fig8_sweep(
            loops=[LivermoreLoop.INNER_PRODUCT],
            core_counts=[16],
            vector_lengths={LivermoreLoop.INNER_PRODUCT: [64]},
            repetitions=1,
        )
    )
    specs.extend(fig9_sweep(core_counts=[16], critical_sections=[16], successes_per_thread=3))
    specs.extend(fig10_sweep(apps=application_names()[:1], num_cores=16, phase_scale=0.25))
    # Contention-scenario suite (PR 3): one high-contention sweep across both
    # wireless backoff policies, captured when the suite landed.
    specs.extend(
        scenario_sweep(
            scenarios=["barrier_storm", "work_steal"],
            core_counts=[16],
            configs=["WiSync"],
            contention=["high"],
            backoffs=["broadcast_aware", "exponential"],
        )
    )
    return specs


def measure(spec: RunSpec) -> Dict[str, object]:
    """Run one spec and record every quantity the refactor must preserve."""
    machine = Manycore(build_config_for(spec))
    handle = REGISTRY.build(machine, spec.workload, spec.params_dict())
    result = handle.run(max_cycles=spec.max_cycles)
    return {
        "label": spec.label(),
        "total_cycles": result.total_cycles,
        "events_processed": machine.sim.events_processed,
        "snapshot": result.stats.snapshot(),
    }


def capture() -> Dict[str, Dict[str, object]]:
    return {spec.key(): measure(spec) for spec in golden_specs()}


def main() -> None:
    payload = capture()
    with open(GOLDEN_PATH, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")
    print(f"wrote {GOLDEN_PATH} ({len(payload)} grid points)")


if __name__ == "__main__":
    main()
