"""Benchmark / regeneration of Figure 7 (TightLoop vs core count)."""

from repro.experiments.fig7_tightloop import (
    DEFAULT_CORE_COUNTS,
    PAPER_CORE_COUNTS,
    format_fig7,
    run_fig7,
)


def test_fig7_tightloop_scaling(benchmark, full_sweeps, runner):
    core_counts = PAPER_CORE_COUNTS if full_sweeps else [16, 32, 64]
    iterations = 5 if full_sweeps else 3
    series = benchmark.pedantic(
        run_fig7, kwargs={"core_counts": core_counts, "iterations": iterations, "runner": runner},
        rounds=1, iterations=1,
    )
    print()
    print(format_fig7(series))
    for cores, row in series.items():
        # Paper shape: WiSync is fastest, Baseline is slowest by orders of
        # magnitude at higher core counts.
        assert row["WiSync"] < row["WiSyncNoT"]
        assert row["WiSync"] < row["Baseline+"]
        assert row["Baseline"] > 5 * row["Baseline+"]
    # Baseline degrades sharply with core count; WiSync stays nearly flat.
    low, high = min(series), max(series)
    assert series[high]["Baseline"] > 4 * series[low]["Baseline"]
    assert series[high]["WiSync"] < 4 * series[low]["WiSync"]
