"""Benchmark / regeneration of Figure 9 (CAS throughput vs critical section)."""

from repro.experiments.fig9_cas import (
    DEFAULT_CRITICAL_SECTIONS,
    PAPER_CRITICAL_SECTIONS,
    format_fig9,
    run_fig9,
)
from repro.workloads.cas_kernels import CasKernelKind


def test_fig9_cas_throughput(benchmark, full_sweeps, runner):
    kinds = list(CasKernelKind) if full_sweeps else [CasKernelKind.ADD, CasKernelKind.FIFO]
    core_counts = [64, 128] if full_sweeps else [32]
    crits = PAPER_CRITICAL_SECTIONS if full_sweeps else [16384, 256, 16]
    series = benchmark.pedantic(
        run_fig9,
        kwargs={
            "kinds": kinds,
            "core_counts": core_counts,
            "critical_sections": crits,
            "successes_per_thread": 4,
            "runner": runner,
        },
        rounds=1, iterations=1,
    )
    print()
    print(format_fig9(series))
    for (kernel, cores, crit), row in series.items():
        assert row["WiSync"] >= row["Baseline"]
    # The gap widens as critical sections shrink (contention grows).
    for kind in kinds:
        for cores in core_counts:
            points = {crit: series[(kind.value, cores, crit)] for crit in crits}
            largest, smallest = max(crits), min(crits)
            gap_low_contention = points[largest]["WiSync"] / max(1e-9, points[largest]["Baseline"])
            gap_high_contention = points[smallest]["WiSync"] / max(1e-9, points[smallest]["Baseline"])
            assert gap_high_contention > gap_low_contention
