"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they quantify the contribution of individual
WiSync mechanisms: the Tone channel, the Bulk-message optimization, and the
collision-resolution policy.
"""

from dataclasses import replace

from repro.isa.operations import Compute
from repro.machine.configs import wisync, wisync_not
from repro.machine.manycore import Manycore
from repro.sync.api import SyncFactory
from repro.sync.producer_consumer import ProducerConsumerChannel


def _barrier_time(config, iterations=4, cores=32):
    machine = Manycore(config)
    program = machine.new_program("ablation")
    sync = SyncFactory(program)
    barrier = sync.create_barrier(cores)

    def body(ctx):
        for _ in range(iterations):
            yield Compute(100)
            yield from barrier.wait(ctx)

    for _ in range(cores):
        program.add_thread(body)
    return machine.run().total_cycles / iterations


def test_ablation_tone_channel(benchmark):
    """Paper's own ablation: WiSync vs WiSyncNoT on a barrier burst."""
    result = benchmark.pedantic(
        lambda: (_barrier_time(wisync(32)), _barrier_time(wisync_not(32))),
        rounds=1, iterations=1,
    )
    with_tone, without_tone = result
    print(f"\nbarrier cycles/iteration: tone={with_tone:.0f} data-only={without_tone:.0f}")
    assert with_tone < without_tone


def test_ablation_backoff_policy(benchmark):
    """Broadcast-aware backoff vs plain exponential backoff under bursts."""
    def run():
        default = wisync_not(32)
        plain = default.replace(backoff=replace(default.backoff, kind="exponential"))
        return _barrier_time(default), _barrier_time(plain)

    adaptive, exponential = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nbarrier cycles/iteration: broadcast-aware={adaptive:.0f} exponential={exponential:.0f}")
    assert adaptive <= exponential * 1.5


def test_ablation_bulk_messages(benchmark):
    """Producer/consumer payloads carried by 15-cycle Bulk messages."""
    def run():
        machine = Manycore(wisync(4))
        program = machine.new_program("pc")
        data = program.alloc_broadcast(4)
        flag = program.alloc_broadcast(1)
        channel = ProducerConsumerChannel(data, flag, wireless=True)

        def producer(ctx):
            for i in range(6):
                yield from channel.produce(ctx, (i, i, i, i))

        def consumer(ctx):
            for _ in range(6):
                yield from channel.consume(ctx)

        program.add_thread(producer, core_id=0)
        program.add_thread(consumer, core_id=1)
        return machine.run().total_cycles

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nproducer/consumer with bulk messages: {cycles} cycles for 6 payloads")
    # Six payloads with 15-cycle bulk messages plus flag traffic stay well
    # under the cost of 24 individual 5-cycle transfers with per-word flags.
    assert cycles < 6 * 4 * 5 * 4
