"""Benchmark / regeneration of Table 4 (area and power comparison)."""

from repro.experiments.table4_area_power import format_table4, run_table4


def test_table4_area_power(benchmark):
    table = benchmark(run_table4)
    print()
    print(format_table4(table))
    rf = table["transceiver+2antennas"]
    # Paper values: 0.14 mm^2 and 18 mW; 0.7%/0.4% of a Haswell core,
    # 5.6%/1.8% of a Silvermont core.
    assert abs(rf["area_mm2"] - 0.14) < 0.01
    assert abs(rf["power_w"] - 0.018) < 0.001
    assert abs(table["Xeon Haswell"]["rf_area_percent"] - 0.7) < 0.1
    assert abs(table["Atom Silvermont"]["rf_power_percent"] - 1.8) < 0.2
