"""Benchmark / regeneration of Figure 8 (Livermore loops vs vector length)."""

from repro.experiments.fig8_livermore import (
    DEFAULT_VECTOR_LENGTHS,
    PAPER_VECTOR_LENGTHS,
    format_fig8,
    run_fig8,
)
from repro.workloads.livermore import LivermoreLoop


def test_fig8_livermore_loops(benchmark, full_sweeps, runner):
    core_counts = [64, 128] if full_sweeps else [16]
    lengths = PAPER_VECTOR_LENGTHS if full_sweeps else {
        LivermoreLoop.ICCG: [64, 1024],
        LivermoreLoop.INNER_PRODUCT: [64, 4096],
        LivermoreLoop.LINEAR_RECURRENCE: [32, 256],
    }
    series = benchmark.pedantic(
        run_fig8,
        kwargs={"core_counts": core_counts, "vector_lengths": lengths, "repetitions": 1,
                "runner": runner},
        rounds=1, iterations=1,
    )
    print()
    print(format_fig8(series))
    for (loop, cores, length), row in series.items():
        # WiSync never loses to Baseline, and Baseline is the slowest config.
        assert row["WiSync"] <= row["Baseline"]
        assert row["Baseline"] >= row["Baseline+"]
    # Relative advantage shrinks as the vector (compute) grows: compare the
    # smallest and largest vector length of the inner-product loop.
    inner = {k: v for k, v in series.items() if k[0] == int(LivermoreLoop.INNER_PRODUCT)}
    small = min(inner, key=lambda k: k[2])
    large = max(inner, key=lambda k: k[2])
    gain_small = inner[small]["Baseline"] / inner[small]["WiSync"]
    gain_large = inner[large]["Baseline"] / inner[large]["WiSync"]
    assert gain_small > gain_large
