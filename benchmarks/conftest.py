"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure of the paper at a reduced
(but shape-preserving) scale so the whole suite runs in minutes on a laptop.
Set ``WISYNC_FULL_SWEEPS=1`` in the environment to use the paper's full
parameter sweeps (substantially slower).
"""

from __future__ import annotations

import os

import pytest

FULL_SWEEPS = os.environ.get("WISYNC_FULL_SWEEPS", "0") == "1"


@pytest.fixture(scope="session")
def full_sweeps() -> bool:
    return FULL_SWEEPS


def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Attach the sweep mode so stored results are comparable."""
    output_json["wisync_full_sweeps"] = FULL_SWEEPS
