"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure of the paper at a reduced
(but shape-preserving) scale so the whole suite runs in minutes on a laptop.
Environment knobs:

* ``WISYNC_FULL_SWEEPS=1`` — use the paper's full parameter sweeps
  (substantially slower).
* ``WISYNC_BENCH_PARALLEL=N`` — fan each sweep out over an N-worker process
  pool instead of running serially.
* ``WISYNC_BENCH_CACHE=DIR`` — memoize simulation results on disk so
  repeated benchmark runs only simulate changed grid points.
"""

from __future__ import annotations

import os

import pytest

from repro.runner import ParallelExecutor, ResultCache, Runner, SerialExecutor

FULL_SWEEPS = os.environ.get("WISYNC_FULL_SWEEPS", "0") == "1"
BENCH_PARALLEL = int(os.environ.get("WISYNC_BENCH_PARALLEL", "0"))
BENCH_CACHE = os.environ.get("WISYNC_BENCH_CACHE", "")


@pytest.fixture(scope="session")
def full_sweeps() -> bool:
    return FULL_SWEEPS


@pytest.fixture(scope="session")
def runner() -> Runner:
    """The sweep runner every experiment benchmark executes through."""
    executor = ParallelExecutor(BENCH_PARALLEL) if BENCH_PARALLEL > 0 else SerialExecutor()
    cache = ResultCache(BENCH_CACHE) if BENCH_CACHE else None
    return Runner(executor=executor, cache=cache)


def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Attach the sweep mode so stored results are comparable."""
    output_json["wisync_full_sweeps"] = FULL_SWEEPS
