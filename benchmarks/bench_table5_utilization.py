"""Benchmark / regeneration of Table 5 (Data-channel utilization)."""

from repro.experiments.table5_utilization import TABLE5_APPS, format_table5, run_table5


def test_table5_data_channel_utilization(benchmark, full_sweeps, runner):
    apps = TABLE5_APPS if full_sweeps else ["streamcluster", "raytrace", "ocean-c"]
    cores = 64 if full_sweeps else 32
    scale = 1.0 if full_sweeps else 0.4
    table = benchmark.pedantic(
        run_table5, kwargs={"apps": apps, "num_cores": cores, "phase_scale": scale, "runner": runner},
        rounds=1, iterations=1,
    )
    print()
    print(format_table5(table))
    for app, row in table.items():
        # Utilization is low overall (a few percent at most), and WiSync's is
        # no higher than WiSyncNoT's because barriers move to the Tone channel.
        assert row["WiSyncNoT"] < 25.0
        assert row["WiSync"] <= row["WiSyncNoT"] + 0.5
    assert table["GM"]["WiSync"] <= table["GM"]["WiSyncNoT"]
