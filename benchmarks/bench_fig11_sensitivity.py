"""Benchmark / regeneration of Figure 11 / Table 6 (latency sensitivity)."""

from repro.experiments.fig11_sensitivity import format_fig11, run_fig11


def test_fig11_sensitivity(benchmark, full_sweeps, runner):
    if full_sweeps:
        kwargs = {"num_cores": 64, "phase_scale": 0.5}
    else:
        kwargs = {
            "apps": ["streamcluster", "raytrace", "blackscholes"],
            "num_cores": 16,
            "phase_scale": 0.3,
        }
    kwargs["runner"] = runner
    table = benchmark.pedantic(run_fig11, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(format_fig11(table))
    # Paper shape: WiSync's advantage over Baseline grows when the wired
    # network gets slower and shrinks when it gets faster; the BM latency
    # barely matters.
    assert table["SlowNet"]["WiSync"] >= table["FastNet"]["WiSync"]
    assert abs(table["SlowBMEM"]["WiSync"] - table["Default"]["WiSync"]) < 0.35
    for variant, row in table.items():
        assert row["WiSync"] > 1.0
