"""Benchmark / regeneration of Figure 10 (application speedups over Baseline)."""

from repro.experiments.fig10_applications import format_fig10, run_fig10
from repro.workloads.synthetic_apps import application_names


def test_fig10_application_speedups(benchmark, full_sweeps, runner):
    if full_sweeps:
        apps, cores, scale = application_names(), 64, 1.0
    else:
        apps = ["streamcluster", "ocean-c", "raytrace", "radiosity",
                "blackscholes", "swaptions", "barnes", "fft"]
        cores, scale = 32, 0.4
    table = benchmark.pedantic(
        run_fig10, kwargs={"apps": apps, "num_cores": cores, "phase_scale": scale, "runner": runner},
        rounds=1, iterations=1,
    )
    print()
    print(format_fig10(table))
    # Paper shape: WiSync >= 1 on (almost) every application, with the
    # barrier-heavy and lock-heavy ones clearly above 1 and the compute-bound
    # ones near 1; the geometric mean clearly exceeds 1 and WiSync is at
    # least as good as Baseline+ on average.
    assert table["streamcluster"]["WiSync"] > 1.3
    assert table["raytrace"]["WiSync"] > 1.2
    assert table["ocean-c"]["WiSync"] > 1.2
    assert 0.9 <= table["blackscholes"]["WiSync"] <= 1.35
    assert 0.9 <= table["swaptions"]["WiSync"] <= 1.35
    assert table["streamcluster"]["WiSync"] > table["blackscholes"]["WiSync"]
    assert table["geoMean"]["WiSync"] > 1.05
    assert table["geoMean"]["WiSync"] >= table["geoMean"]["Baseline+"] * 0.95
