"""Virtual tree-based broadcast used by the Baseline+ configuration.

Baseline+ enhances the mesh with virtual tree broadcast and flit replication
at the router crossbars (Krishna et al. [22]): a broadcast is forwarded along
a tree rooted at the source and replicated in the routers, so the source
injects the message once and the latency is governed by the tree depth
rather than by the number of destinations.
"""

from __future__ import annotations

from typing import Dict, List

from repro.noc.topology import MeshTopology


class BroadcastTree:
    """Builds per-root broadcast trees over a mesh and reports their depth."""

    def __init__(self, topology: MeshTopology) -> None:
        self.topology = topology
        self._depth_cache: Dict[int, int] = {}
        self._children_cache: Dict[int, Dict[int, List[int]]] = {}

    def children(self, root: int) -> Dict[int, List[int]]:
        """Tree adjacency (node -> children) for a broadcast rooted at ``root``.

        The tree follows XY-dimension order: the message travels along the
        root's row replicating into each column, then down each column.  This
        matches how mesh broadcast trees are embedded in practice.
        """
        if root in self._children_cache:
            return self._children_cache[root]
        topo = self.topology
        children: Dict[int, List[int]] = {node: [] for node in topo.nodes()}
        rx, ry = topo.coordinates(root)
        # Row phase: spread left and right along the root's row.
        for direction in (-1, 1):
            x = rx
            prev = root
            while True:
                x += direction
                if not 0 <= x < topo.width:
                    break
                node = ry * topo.width + x
                if node >= topo.num_nodes:
                    break
                children[prev].append(node)
                prev = node
        # Column phase: from every node of the root's row, spread up and down.
        for x in range(topo.width):
            head = ry * topo.width + x
            if head >= topo.num_nodes:
                continue
            for direction in (-1, 1):
                y = ry
                prev = head
                while True:
                    y += direction
                    if not 0 <= y < topo.height:
                        break
                    node = y * topo.width + x
                    if node >= topo.num_nodes:
                        break
                    children[prev].append(node)
                    prev = node
        self._children_cache[root] = children
        return children

    def depth(self, root: int) -> int:
        """Longest root-to-leaf hop count of the broadcast tree."""
        if root in self._depth_cache:
            return self._depth_cache[root]
        children = self.children(root)
        depth = 0
        stack = [(root, 0)]
        while stack:
            node, level = stack.pop()
            depth = max(depth, level)
            for child in children[node]:
                stack.append((child, level + 1))
        self._depth_cache[root] = depth
        return depth

    def reached_nodes(self, root: int) -> List[int]:
        """All nodes reached by the broadcast (should be every mesh node)."""
        children = self.children(root)
        seen = []
        stack = [root]
        visited = set()
        while stack:
            node = stack.pop()
            if node in visited:
                continue
            visited.add(node)
            seen.append(node)
            stack.extend(children[node])
        return seen
