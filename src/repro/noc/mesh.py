"""Transaction-level 2D mesh network timing model.

The model charges per-hop latency, serialization of multi-flit messages, and
ejection-port contention at the destination node.  Ejection contention is the
effect that matters most for the paper's results: when many requests converge
on one node (the home L2 bank of a contended lock or barrier counter), they
are served one after another, which is what makes conventional centralized
synchronization scale poorly.

Every unicast is on the simulation's hottest path (each cache miss performs
several), so the model memoizes pure functions of the topology and config —
flight latencies per (src, dst, bits) and flit counts per message size — and
binds its stat counters once instead of doing string-keyed lookups per
message.  All cached values are deterministic functions of immutable config,
so results are bit-identical to the uncached model.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.config import NocConfig
from repro.noc.broadcast_tree import BroadcastTree
from repro.noc.topology import MeshTopology
from repro.sim.stats import StatsRegistry


class MeshNetwork:
    """Latency/occupancy model of the wired mesh."""

    def __init__(
        self,
        topology: MeshTopology,
        config: NocConfig,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        self.topology = topology
        self.config = config
        self.stats = stats if stats is not None else StatsRegistry()
        self.tree = BroadcastTree(topology)
        # Earliest cycle at which each node's ejection port is free again.
        self._ejection_free: Dict[int, int] = {}
        # Earliest cycle at which each node's injection port is free again.
        self._injection_free: Dict[int, int] = {}
        # Memoized pure-function tables (lazy: only pairs actually used).
        self._flight_cache: Dict[Tuple[int, int, int], int] = {}
        self._flit_cache: Dict[int, int] = {}
        # (src, dst, bits) -> (occupancy, flight) for the unicast fast path.
        self._unicast_cache: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
        # Flyweight stat handles, bound once.
        self._messages_counter = self.stats.counter("noc/messages")
        self._flit_cycles_counter = self.stats.counter("noc/flit_cycles")
        self._broadcasts_counter = self.stats.counter("noc/broadcasts")

    # -------------------------------------------------------------- caching
    def _cycles_per_flit(self, message_bits: int) -> int:
        occupancy = self._flit_cache.get(message_bits)
        if occupancy is None:
            occupancy = self._flit_cache[message_bits] = self.config.cycles_per_flit(
                message_bits
            )
        return occupancy

    # --------------------------------------------------------------- unicast
    def flight_latency(self, src: int, dst: int, message_bits: int = 128) -> int:
        """Pure wire latency of a unicast message, without port contention."""
        key = (src, dst, message_bits)
        latency = self._flight_cache.get(key)
        if latency is not None:
            return latency
        if src == dst:
            latency = self.config.router_latency
        else:
            hops = self.topology.hop_distance(src, dst)
            serialization = self._cycles_per_flit(message_bits) - 1
            latency = (
                hops * self.config.hop_latency + self.config.router_latency + serialization
            )
        self._flight_cache[key] = latency
        return latency

    def unicast(self, now: int, src: int, dst: int, message_bits: int = 128) -> int:
        """Send a message now; return its arrival cycle (with port contention)."""
        key = (src, dst, message_bits)
        cached = self._unicast_cache.get(key)
        if cached is None:
            cached = self._unicast_cache[key] = (
                self._cycles_per_flit(message_bits),
                self.flight_latency(src, dst, message_bits),
            )
        occupancy, flight = cached
        injection = self._injection_free
        inject_at = injection.get(src, 0)
        if now > inject_at:
            inject_at = now
        injection[src] = inject_at + occupancy
        arrival = inject_at + flight
        ejection = self._ejection_free
        eject_at = ejection.get(dst, 0)
        if arrival > eject_at:
            eject_at = arrival
        ejection[dst] = eject_at + occupancy
        self._messages_counter.value += 1
        self._flit_cycles_counter.value += occupancy
        return eject_at + occupancy

    def round_trip(self, now: int, src: int, dst: int, request_bits: int = 128,
                   response_bits: int = 128) -> int:
        """Request to ``dst`` plus response back to ``src``."""
        arrival = self.unicast(now, src, dst, request_bits)
        return self.unicast(arrival, dst, src, response_bits)

    # ------------------------------------------------------------- broadcast
    def broadcast(self, now: int, src: int, message_bits: int = 128) -> int:
        """Broadcast to every node; return the cycle the last copy arrives.

        With ``tree_broadcast`` (Baseline+), the source injects once and the
        routers replicate flits, so latency is the tree depth.  Without it
        (Baseline), the source injects one unicast per destination and the
        injection port serializes them.
        """
        if self.config.tree_broadcast:
            depth = self.tree.depth(src)
            serialization = self._cycles_per_flit(message_bits) - 1
            latency = depth * self.config.hop_latency + self.config.router_latency + serialization
            self._broadcasts_counter.add()
            return now + latency
        last_arrival = now
        for dst in self.topology.nodes():
            if dst == src:
                continue
            last_arrival = max(last_arrival, self.unicast(now, src, dst, message_bits))
        self._broadcasts_counter.add()
        return last_arrival

    def multicast(self, now: int, src: int, dsts, message_bits: int = 128) -> int:
        """Multicast to a destination set; returns the last arrival cycle."""
        if self.config.tree_broadcast:
            # The tree reaches everyone; latency is bounded by the tree depth.
            return self.broadcast(now, src, message_bits)
        last_arrival = now
        for dst in dsts:
            if dst == src:
                continue
            last_arrival = max(last_arrival, self.unicast(now, src, dst, message_bits))
        return last_arrival

    # ----------------------------------------------------------------- stats
    def reset_ports(self) -> None:
        """Forget port occupancy (used between independent experiment phases)."""
        self._ejection_free.clear()
        self._injection_free.clear()
