"""Transaction-level 2D mesh network timing model.

The model charges per-hop latency, serialization of multi-flit messages, and
ejection-port contention at the destination node.  Ejection contention is the
effect that matters most for the paper's results: when many requests converge
on one node (the home L2 bank of a contended lock or barrier counter), they
are served one after another, which is what makes conventional centralized
synchronization scale poorly.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config import NocConfig
from repro.noc.broadcast_tree import BroadcastTree
from repro.noc.topology import MeshTopology
from repro.sim.stats import StatsRegistry


class MeshNetwork:
    """Latency/occupancy model of the wired mesh."""

    def __init__(
        self,
        topology: MeshTopology,
        config: NocConfig,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        self.topology = topology
        self.config = config
        self.stats = stats if stats is not None else StatsRegistry()
        self.tree = BroadcastTree(topology)
        # Earliest cycle at which each node's ejection port is free again.
        self._ejection_free: Dict[int, int] = {}
        # Earliest cycle at which each node's injection port is free again.
        self._injection_free: Dict[int, int] = {}

    # --------------------------------------------------------------- unicast
    def flight_latency(self, src: int, dst: int, message_bits: int = 128) -> int:
        """Pure wire latency of a unicast message, without port contention."""
        if src == dst:
            return self.config.router_latency
        hops = self.topology.hop_distance(src, dst)
        serialization = self.config.cycles_per_flit(message_bits) - 1
        return hops * self.config.hop_latency + self.config.router_latency + serialization

    def unicast(self, now: int, src: int, dst: int, message_bits: int = 128) -> int:
        """Send a message now; return its arrival cycle (with port contention)."""
        inject_at = max(now, self._injection_free.get(src, 0))
        occupancy = self.config.cycles_per_flit(message_bits)
        self._injection_free[src] = inject_at + occupancy
        arrival = inject_at + self.flight_latency(src, dst, message_bits)
        eject_at = max(arrival, self._ejection_free.get(dst, 0))
        self._ejection_free[dst] = eject_at + occupancy
        self.stats.counter("noc/messages").add()
        self.stats.counter("noc/flit_cycles").add(occupancy)
        return eject_at + occupancy

    def round_trip(self, now: int, src: int, dst: int, request_bits: int = 128,
                   response_bits: int = 128) -> int:
        """Request to ``dst`` plus response back to ``src``."""
        arrival = self.unicast(now, src, dst, request_bits)
        return self.unicast(arrival, dst, src, response_bits)

    # ------------------------------------------------------------- broadcast
    def broadcast(self, now: int, src: int, message_bits: int = 128) -> int:
        """Broadcast to every node; return the cycle the last copy arrives.

        With ``tree_broadcast`` (Baseline+), the source injects once and the
        routers replicate flits, so latency is the tree depth.  Without it
        (Baseline), the source injects one unicast per destination and the
        injection port serializes them.
        """
        if self.config.tree_broadcast:
            depth = self.tree.depth(src)
            serialization = self.config.cycles_per_flit(message_bits) - 1
            latency = depth * self.config.hop_latency + self.config.router_latency + serialization
            self.stats.counter("noc/broadcasts").add()
            return now + latency
        last_arrival = now
        for dst in self.topology.nodes():
            if dst == src:
                continue
            last_arrival = max(last_arrival, self.unicast(now, src, dst, message_bits))
        self.stats.counter("noc/broadcasts").add()
        return last_arrival

    def multicast(self, now: int, src: int, dsts, message_bits: int = 128) -> int:
        """Multicast to a destination set; returns the last arrival cycle."""
        if self.config.tree_broadcast:
            # The tree reaches everyone; latency is bounded by the tree depth.
            return self.broadcast(now, src, message_bits)
        last_arrival = now
        for dst in dsts:
            if dst == src:
                continue
            last_arrival = max(last_arrival, self.unicast(now, src, dst, message_bits))
        return last_arrival

    # ----------------------------------------------------------------- stats
    def reset_ports(self) -> None:
        """Forget port occupancy (used between independent experiment phases)."""
        self._ejection_free.clear()
        self._injection_free.clear()
