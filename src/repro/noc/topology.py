"""2D mesh topology: node placement and distance computation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MeshTopology:
    """A ``width`` x ``height`` mesh holding ``num_nodes`` cores.

    Nodes are numbered row-major.  The mesh may be slightly larger than the
    node count when the count is not a perfect square (e.g. 128 cores map to
    a 12x11 grid region of a 12x12 mesh); unused positions simply never send
    or receive traffic.
    """

    num_nodes: int
    width: int
    height: int

    @classmethod
    def square_for(cls, num_nodes: int) -> "MeshTopology":
        """Build the smallest (near-)square mesh that fits ``num_nodes``."""
        if num_nodes < 1:
            raise ConfigurationError("mesh needs at least one node")
        width = 1
        while width * width < num_nodes:
            width += 1
        height = width
        while width * (height - 1) >= num_nodes:
            height -= 1
        return cls(num_nodes=num_nodes, width=width, height=height)

    def coordinates(self, node: int) -> Tuple[int, int]:
        """(x, y) position of a node."""
        self._check(node)
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        node = y * self.width + x
        self._check(node)
        return node

    def hop_distance(self, src: int, dst: int) -> int:
        """Manhattan distance between two nodes (XY routing hop count)."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return abs(sx - dx) + abs(sy - dy)

    def max_hop_distance(self) -> int:
        """Network diameter: corner-to-corner Manhattan distance."""
        return (self.width - 1) + (self.height - 1)

    def average_hop_distance(self) -> float:
        """Average distance over all ordered pairs of distinct nodes."""
        if self.num_nodes < 2:
            return 0.0
        total = 0
        for src in range(self.num_nodes):
            for dst in range(self.num_nodes):
                if src != dst:
                    total += self.hop_distance(src, dst)
        return total / (self.num_nodes * (self.num_nodes - 1))

    def neighbors(self, node: int) -> List[int]:
        """Adjacent nodes in the mesh (2 to 4 of them)."""
        x, y = self.coordinates(node)
        result = []
        for nx, ny in ((x - 1, y), (x + 1, y), (x, y - 1), (x, y + 1)):
            if 0 <= nx < self.width and 0 <= ny < self.height:
                neighbor = ny * self.width + nx
                if neighbor < self.num_nodes:
                    result.append(neighbor)
        return result

    def nodes(self) -> Iterator[int]:
        return iter(range(self.num_nodes))

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ConfigurationError(f"node {node} out of range (0..{self.num_nodes - 1})")
