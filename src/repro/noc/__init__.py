"""Wired on-chip network models.

The paper's manycore uses a 2D mesh with 4-cycle hops and 128-bit links
(Table 1).  Baseline+ additionally supports virtual tree-based broadcast with
flit replication at the router crossbars [Krishna et al., 22].
"""

from repro.noc.topology import MeshTopology
from repro.noc.routing import xy_route_length
from repro.noc.mesh import MeshNetwork
from repro.noc.broadcast_tree import BroadcastTree

__all__ = ["MeshTopology", "xy_route_length", "MeshNetwork", "BroadcastTree"]
