"""Dimension-ordered (XY) routing helpers."""

from __future__ import annotations

from typing import List

from repro.noc.topology import MeshTopology


def xy_route(topology: MeshTopology, src: int, dst: int) -> List[int]:
    """The sequence of nodes visited by an XY-routed packet (inclusive)."""
    sx, sy = topology.coordinates(src)
    dx, dy = topology.coordinates(dst)
    path = [src]
    x, y = sx, sy
    while x != dx:
        x += 1 if dx > x else -1
        path.append(topology.node_at(x, y))
    while y != dy:
        y += 1 if dy > y else -1
        path.append(topology.node_at(x, y))
    return path


def xy_route_length(topology: MeshTopology, src: int, dst: int) -> int:
    """Number of hops on the XY route (equals Manhattan distance)."""
    return topology.hop_distance(src, dst)
