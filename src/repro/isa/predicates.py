"""Declarative spin predicates for ``WaitUntil`` / ``BmWaitUntil`` / tone waits.

Historically every suspension point allocated a fresh closure
(``lambda v: v == sense``), which made per-thread progress impossible to
serialize: a parked waiter's wake condition lived only in a code object.
These records carry the same condition as plain data — a comparison kind
plus an integer operand — so they are JSON-serializable (checkpointable),
shared (no per-suspension allocation on the hot path), and still directly
callable exactly like the closures they replace.

The comparison vocabulary is closed on purpose: everything the library's
synchronization primitives spin on is a comparison against a constant.
Workload code may still pass an arbitrary callable where a predicate is
expected — it keeps working, but such a run can only checkpoint by
deterministic replay, never natively.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

from repro.errors import SnapshotError


class Predicate:
    """A JSON-serializable wait condition: ``value <kind> operand``."""

    __slots__ = ("operand",)

    #: Comparison kind tag, unique per subclass (``eq``/``ne``/``ge``/``lt``).
    kind: str = ""

    def __init__(self, operand: int) -> None:
        self.operand = operand

    def __call__(self, value: int) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError

    def describe(self) -> Dict[str, int]:
        """Plain-data form (inverse of :func:`predicate_from_payload`)."""
        return {"kind": self.kind, "operand": self.operand}

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Predicate)
            and other.kind == self.kind
            and other.operand == self.operand
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.operand))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Predicate(value {self.kind} {self.operand})"


class Eq(Predicate):
    """True when the observed value equals the operand."""

    __slots__ = ()
    kind = "eq"

    def __call__(self, value: int) -> bool:
        return value == self.operand


class Ne(Predicate):
    """True when the observed value differs from the operand."""

    __slots__ = ()
    kind = "ne"

    def __call__(self, value: int) -> bool:
        return value != self.operand


class Ge(Predicate):
    """True when the observed value is >= the operand."""

    __slots__ = ()
    kind = "ge"

    def __call__(self, value: int) -> bool:
        return value >= self.operand


class Lt(Predicate):
    """True when the observed value is < the operand."""

    __slots__ = ()
    kind = "lt"

    def __call__(self, value: int) -> bool:
        return value < self.operand


_KINDS: Dict[str, type] = {cls.kind: cls for cls in (Eq, Ne, Ge, Lt)}


def predicate_from_payload(payload: Dict[str, int]) -> Predicate:
    """Rebuild a predicate from :meth:`Predicate.describe` output."""
    try:
        cls = _KINDS[payload["kind"]]
        return cls(int(payload["operand"]))
    except (KeyError, TypeError, ValueError) as error:
        raise SnapshotError(f"malformed predicate payload {payload!r}: {error}")


def describe_predicate(predicate: Union[Predicate, Callable[[int], bool]]) -> Dict[str, int]:
    """Describe a predicate, or raise :class:`SnapshotError` for raw callables.

    The raising path is how native checkpointing detects a workload that
    still parks closures: the capture falls back to replay.
    """
    if isinstance(predicate, Predicate):
        return predicate.describe()
    raise SnapshotError(
        f"predicate {predicate!r} is an opaque callable, not a Predicate record; "
        f"this wait cannot be captured natively"
    )
