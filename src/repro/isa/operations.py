"""Operation objects yielded by simulated threads.

Two address spaces exist, mirroring the paper:

* **Cached memory** — regular variables, kept coherent by the MOESI directory
  protocol over the wired mesh (``Read``, ``Write``, ``AtomicOp``,
  ``WaitUntil``).
* **Broadcast memory (BM)** — variables declared ``broadcast``, replicated in
  every node's BM and updated through the wireless Data channel (``Bm*`` and
  ``Tone*`` operations).

Values are plain Python integers; addresses are integers in each space.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence


class RmwKind(enum.Enum):
    """Atomic read-modify-write flavors supported by both memory spaces."""

    TEST_AND_SET = "test_and_set"
    FETCH_AND_INC = "fetch_and_inc"
    FETCH_AND_ADD = "fetch_and_add"
    COMPARE_AND_SWAP = "compare_and_swap"
    SWAP = "swap"


# --------------------------------------------------------------------------
# Core-local operations
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class Compute:
    """Execute ``cycles`` of local computation (no memory traffic)."""

    cycles: int


@dataclass(frozen=True)
class Fence:
    """Order prior operations before later ones (modelled as a 1-cycle stall)."""

    cycles: int = 1


# --------------------------------------------------------------------------
# Cached (regular) memory operations
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class Read:
    """Load from cached memory.  Result of the yield is the loaded value."""

    addr: int
    size: int = 8


@dataclass(frozen=True)
class Write:
    """Store to cached memory."""

    addr: int
    value: int = 0
    size: int = 8


@dataclass(frozen=True)
class AtomicOp:
    """Atomic read-modify-write on cached memory.

    The yield result is a tuple ``(old_value, success)``.  For CAS,
    ``success`` indicates whether the swap happened; for the other kinds it
    is always True.
    """

    addr: int
    kind: RmwKind
    operand: int = 1
    expected: int = 0


@dataclass(frozen=True)
class WaitUntil:
    """Spin on a cached location until ``predicate(value)`` becomes true.

    The machine models the spin as coherence-based waiting: the core holds
    the line in shared state and is re-notified (invalidate + refill latency,
    plus serialization if many spinners refill at once) whenever a writer
    updates it.  The yield result is the value that satisfied the predicate.
    """

    addr: int
    predicate: Callable[[int], bool]
    poll_interval: int = 0


# --------------------------------------------------------------------------
# Broadcast-memory operations (WiSync hardware)
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class BmAlloc:
    """Allocate ``words`` consecutive BM entries; yields the base BM address."""

    words: int = 1
    tone_capable: bool = False
    participants: Optional[Sequence[int]] = None


@dataclass(frozen=True)
class BmFree:
    """Deallocate a previously allocated BM range."""

    addr: int
    words: int = 1


@dataclass(frozen=True)
class BmLoad:
    """Plain load from the local BM (always succeeds, local latency only)."""

    addr: int


@dataclass(frozen=True)
class BmStore:
    """Store broadcast to every BM through the wireless Data channel."""

    addr: int
    value: int


@dataclass(frozen=True)
class BmBulkLoad:
    """Bulk load of four consecutive BM entries; yields a tuple of 4 values."""

    addr: int


@dataclass(frozen=True)
class BmBulkStore:
    """Bulk store of four consecutive BM entries (one 15-cycle message)."""

    addr: int
    values: Sequence[int] = field(default=(0, 0, 0, 0))


@dataclass(frozen=True)
class BmRmw:
    """Atomic RMW on a BM location.

    The yield result is a :class:`repro.core.bm_controller.RmwResult` whose
    ``afb`` field is the Atomicity Failure Bit: if it is set the instruction
    did *not* perform its write and software must retry (paper
    Section 4.2.1 / Figure 4a-b).  For a CAS whose comparison fails,
    ``success`` is False and no wireless transfer is attempted.
    """

    addr: int
    kind: RmwKind
    operand: int = 1
    expected: int = 0


@dataclass(frozen=True)
class BmWaitUntil:
    """Spin with plain BM loads until ``predicate(value)`` is true.

    Local BM loads are cheap (2-cycle round trip) and generate no wireless
    traffic, so this wait only costs the time until a broadcast write
    changes the location, plus the local BM read latency.
    """

    addr: int
    predicate: Callable[[int], bool]


# --------------------------------------------------------------------------
# Tone-channel operations (hardware barriers)
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class ToneBarrierAlloc:
    """Allocate a tone-capable BM entry and arm the given participant cores."""

    participants: Sequence[int] = ()


@dataclass(frozen=True)
class ToneStore:
    """tone_st: signal arrival at the tone barrier for this BM address."""

    addr: int


@dataclass(frozen=True)
class ToneLoad:
    """tone_ld: read the sense of the tone barrier location."""

    addr: int


@dataclass(frozen=True)
class ToneWait:
    """Spin with tone_ld until the barrier sense flips to ``local_sense``."""

    addr: int
    local_sense: int
