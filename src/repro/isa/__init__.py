"""Abstract operations that simulated threads issue.

Workloads are plain Python generators.  Each ``yield`` hands the machine an
operation object from :mod:`repro.isa.operations`; the machine executes it on
the timing models (caches, NoC, wireless network, broadcast memory) and sends
back the architectural result (loaded value, CAS success flag, ...).
"""

from repro.isa.operations import (
    AtomicOp,
    BmAlloc,
    BmBulkLoad,
    BmBulkStore,
    BmFree,
    BmLoad,
    BmRmw,
    BmStore,
    BmWaitUntil,
    Compute,
    Fence,
    Read,
    RmwKind,
    ToneBarrierAlloc,
    ToneLoad,
    ToneStore,
    ToneWait,
    WaitUntil,
    Write,
)

__all__ = [
    "Compute",
    "Read",
    "Write",
    "AtomicOp",
    "RmwKind",
    "WaitUntil",
    "Fence",
    "BmAlloc",
    "BmFree",
    "BmLoad",
    "BmStore",
    "BmBulkLoad",
    "BmBulkStore",
    "BmRmw",
    "BmWaitUntil",
    "ToneBarrierAlloc",
    "ToneStore",
    "ToneLoad",
    "ToneWait",
]
