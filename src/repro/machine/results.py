"""Results of one simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sim.stats import StatsRegistry


@dataclass
class SimResult:
    """Summary of a completed (or truncated) simulation."""

    config_name: str
    num_cores: int
    total_cycles: int
    thread_cycles: List[int]
    thread_results: List[Any]
    stats: StatsRegistry
    finished_threads: int
    total_threads: int
    extra: Dict[str, float] = field(default_factory=dict)
    #: False when the run was truncated (``max_cycles``) before every thread
    #: finished, letting sweeps distinguish converged runs from partial ones.
    completed: bool = True
    #: Discrete events the engine fired for this run; the numerator of the
    #: events/sec throughput metric reported by ``python -m repro profile``.
    events_processed: int = 0

    # ------------------------------------------------------------ durations
    @property
    def max_thread_cycles(self) -> int:
        return max(self.thread_cycles) if self.thread_cycles else 0

    @property
    def mean_thread_cycles(self) -> float:
        if not self.thread_cycles:
            return 0.0
        return sum(self.thread_cycles) / len(self.thread_cycles)

    # ----------------------------------------------------------- wireless
    @property
    def wireless_messages(self) -> int:
        return self.stats.counter_value("wireless/messages")

    @property
    def wireless_collisions(self) -> int:
        return self.stats.counter_value("wireless/collisions")

    @property
    def data_channel_busy_cycles(self) -> int:
        tracker = self.stats.utilizations.get("wireless/data_channel")
        return tracker.busy_cycles if tracker is not None else 0

    def data_channel_utilization(self) -> float:
        """Fraction of total cycles the Data channel was busy (Table 5)."""
        if self.total_cycles <= 0:
            return 0.0
        return min(1.0, self.data_channel_busy_cycles / self.total_cycles)

    def mean_transfer_latency(self) -> float:
        """Average Data-channel transfer latency in cycles (Section 7.4)."""
        histogram = self.stats.histograms.get("wireless/transfer_latency")
        return histogram.mean if histogram is not None else 0.0

    # ------------------------------------------------------------ reporting
    def summary(self) -> Dict[str, float]:
        return {
            "config": self.config_name,
            "cores": self.num_cores,
            "cycles": self.total_cycles,
            "wireless_messages": self.wireless_messages,
            "wireless_collisions": self.wireless_collisions,
            "data_channel_utilization": round(self.data_channel_utilization(), 4),
            **self.extra,
        }

    def speedup_over(self, other: "SimResult") -> float:
        """Execution-time speedup of this run relative to ``other``."""
        from repro.analysis.metrics import speedup

        return speedup(other.total_cycles, self.total_cycles, default=0.0)

    # -------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe serialization (inverse of :meth:`from_dict`).

        Includes the full stats snapshot so results survive the process
        boundary of the parallel executor and the on-disk result cache.
        ``thread_results`` are normalized to JSON types (tuples become
        lists) so a round trip is value-identical to a JSON reload.
        """
        return {
            "config_name": self.config_name,
            "num_cores": self.num_cores,
            "total_cycles": self.total_cycles,
            "thread_cycles": list(self.thread_cycles),
            "thread_results": [_jsonify(value) for value in self.thread_results],
            "finished_threads": self.finished_threads,
            "total_threads": self.total_threads,
            "extra": dict(self.extra),
            "completed": self.completed,
            "events_processed": self.events_processed,
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimResult":
        """Rebuild a result serialized with :meth:`to_dict`."""
        return cls(
            config_name=payload["config_name"],
            num_cores=int(payload["num_cores"]),
            total_cycles=int(payload["total_cycles"]),
            thread_cycles=[int(c) for c in payload["thread_cycles"]],
            thread_results=list(payload["thread_results"]),
            stats=StatsRegistry.from_dict(payload.get("stats") or {}),
            finished_threads=int(payload["finished_threads"]),
            total_threads=int(payload["total_threads"]),
            extra=dict(payload.get("extra") or {}),
            completed=bool(payload.get("completed", True)),
            events_processed=int(payload.get("events_processed", 0)),
        )


def _jsonify(value: Any) -> Any:
    """Coerce a thread result into the value JSON serialization would yield."""
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    return value
