"""Results of one simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sim.stats import StatsRegistry


@dataclass
class SimResult:
    """Summary of a completed (or truncated) simulation."""

    config_name: str
    num_cores: int
    total_cycles: int
    thread_cycles: List[int]
    thread_results: List[Any]
    stats: StatsRegistry
    finished_threads: int
    total_threads: int
    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------ durations
    @property
    def completed(self) -> bool:
        return self.finished_threads == self.total_threads

    @property
    def max_thread_cycles(self) -> int:
        return max(self.thread_cycles) if self.thread_cycles else 0

    @property
    def mean_thread_cycles(self) -> float:
        if not self.thread_cycles:
            return 0.0
        return sum(self.thread_cycles) / len(self.thread_cycles)

    # ----------------------------------------------------------- wireless
    @property
    def wireless_messages(self) -> int:
        return self.stats.counter_value("wireless/messages")

    @property
    def wireless_collisions(self) -> int:
        return self.stats.counter_value("wireless/collisions")

    @property
    def data_channel_busy_cycles(self) -> int:
        tracker = self.stats.utilizations.get("wireless/data_channel")
        return tracker.busy_cycles if tracker is not None else 0

    def data_channel_utilization(self) -> float:
        """Fraction of total cycles the Data channel was busy (Table 5)."""
        if self.total_cycles <= 0:
            return 0.0
        return min(1.0, self.data_channel_busy_cycles / self.total_cycles)

    def mean_transfer_latency(self) -> float:
        """Average Data-channel transfer latency in cycles (Section 7.4)."""
        histogram = self.stats.histograms.get("wireless/transfer_latency")
        return histogram.mean if histogram is not None else 0.0

    # ------------------------------------------------------------ reporting
    def summary(self) -> Dict[str, float]:
        return {
            "config": self.config_name,
            "cores": self.num_cores,
            "cycles": self.total_cycles,
            "wireless_messages": self.wireless_messages,
            "wireless_collisions": self.wireless_collisions,
            "data_channel_utilization": round(self.data_channel_utilization(), 4),
            **self.extra,
        }

    def speedup_over(self, other: "SimResult") -> float:
        """Execution-time speedup of this run relative to ``other``."""
        if self.total_cycles <= 0:
            return 0.0
        return other.total_cycles / self.total_cycles
