"""The architecture configurations compared in the paper.

Table 2:

============  ====  ===============  ========  ============
Config        BM?   Broadcast HW     Locks     Barriers
============  ====  ===============  ========  ============
Baseline      No    No               CAS       Centralized
Baseline+     No    Virtual tree     MCS       Tournament
WiSyncNoT     Yes   Wireless (Data)  Wireless  Wireless
WiSync        Yes   Wireless (D+T)   Wireless  Wireless/Tone
============  ====  ===============  ========  ============

Table 6 sensitivity variants (Default, SlowNet, SlowNet+L2, FastNet,
SlowBMEM) are produced by :func:`sensitivity_variants`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.config import (
    CacheConfig,
    MachineConfig,
    NocConfig,
    SyncConfig,
    ToneChannelConfig,
)
from repro.errors import ConfigurationError


def baseline(num_cores: int = 64, seed: int = 2016) -> MachineConfig:
    """Plain manycore: no wireless hardware, CAS locks, centralized barrier."""
    return MachineConfig(
        name="baseline",
        num_cores=num_cores,
        wisync_enabled=False,
        noc=NocConfig(tree_broadcast=False),
        tone_channel=ToneChannelConfig(enabled=False),
        sync=SyncConfig(lock_kind="cas_spin", barrier_kind="centralized", reduction_kind="lock"),
        seed=seed,
    ).validate()


def baseline_plus(num_cores: int = 64, seed: int = 2016) -> MachineConfig:
    """Enhanced conventional manycore: tree broadcast, MCS locks, tournament barriers."""
    return MachineConfig(
        name="baseline+",
        num_cores=num_cores,
        wisync_enabled=False,
        noc=NocConfig(tree_broadcast=True),
        tone_channel=ToneChannelConfig(enabled=False),
        sync=SyncConfig(lock_kind="mcs", barrier_kind="tournament", reduction_kind="lock"),
        seed=seed,
    ).validate()


def wisync_not(num_cores: int = 64, seed: int = 2016) -> MachineConfig:
    """WiSync without the Tone channel: all synchronization on the Data channel."""
    return MachineConfig(
        name="wisync-not",
        num_cores=num_cores,
        wisync_enabled=True,
        tone_channel=ToneChannelConfig(enabled=False),
        sync=SyncConfig(lock_kind="wireless", barrier_kind="wireless", reduction_kind="wireless"),
        seed=seed,
    ).validate()


def wisync(num_cores: int = 64, seed: int = 2016) -> MachineConfig:
    """Full WiSync: Data channel plus Tone channel barriers."""
    return MachineConfig(
        name="wisync",
        num_cores=num_cores,
        wisync_enabled=True,
        tone_channel=ToneChannelConfig(enabled=True),
        sync=SyncConfig(lock_kind="wireless", barrier_kind="tone", reduction_kind="wireless"),
        seed=seed,
    ).validate()


def paper_configurations(num_cores: int = 64, seed: int = 2016) -> List[MachineConfig]:
    """The four Table 2 configurations, in the paper's order."""
    return [
        baseline(num_cores, seed),
        baseline_plus(num_cores, seed),
        wisync_not(num_cores, seed),
        wisync(num_cores, seed),
    ]


def config_by_name(name: str, num_cores: int = 64, seed: int = 2016) -> MachineConfig:
    """Look up a Table 2 configuration by its name."""
    builders = {
        "baseline": baseline,
        "baseline+": baseline_plus,
        "wisync-not": wisync_not,
        "wisyncnot": wisync_not,
        "wisync": wisync,
    }
    key = name.lower()
    if key not in builders:
        raise ConfigurationError(f"unknown configuration {name!r}; choices: {sorted(builders)}")
    return builders[key](num_cores, seed)


def sensitivity_variants(base: MachineConfig) -> Dict[str, MachineConfig]:
    """The Table 6 memory/network variants applied to ``base``.

    ============  ======  ======  =============
    Variant       L2 RT   BM RT   Net hop (cyc)
    ============  ======  ======  =============
    Default       6       2       4
    SlowNet       6       2       6
    SlowNet+L2    12      2       6
    FastNet       6       2       2
    SlowBMEM      6       4       4
    ============  ======  ======  =============
    """
    def with_params(name: str, l2: int, bm_rt: int, hop: int) -> MachineConfig:
        return base.replace(
            name=f"{base.name}/{name}",
            cache=replace(base.cache, l2_latency=l2),
            noc=replace(base.noc, hop_latency=hop),
            bm=replace(base.bm, round_trip=bm_rt),
        ).validate()

    return {
        "Default": with_params("default", l2=6, bm_rt=2, hop=4),
        "SlowNet": with_params("slownet", l2=6, bm_rt=2, hop=6),
        "SlowNet+L2": with_params("slownet+l2", l2=12, bm_rt=2, hop=6),
        "FastNet": with_params("fastnet", l2=6, bm_rt=2, hop=2),
        "SlowBMEM": with_params("slowbmem", l2=6, bm_rt=4, hop=4),
    }
