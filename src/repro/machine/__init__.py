"""Machine assembly: the full manycore and the paper's configurations.

:class:`~repro.machine.manycore.Manycore` wires the simulation engine, the
cached-memory hierarchy, the wired mesh, and (when enabled) the WiSync
wireless fabric into one simulated chip, and drives workload threads over it.
:mod:`repro.machine.configs` builds the four configurations of Table 2
(Baseline, Baseline+, WiSyncNoT, WiSync) and the Table 6 sensitivity variants.
:class:`~repro.machine.results.SimResult` is JSON-serializable
(``to_dict``/``from_dict``, stats snapshot included) so results survive the
parallel executor's process boundary and the on-disk result cache of
:mod:`repro.runner`.
"""

from repro.machine.configs import (
    baseline,
    baseline_plus,
    config_by_name,
    paper_configurations,
    sensitivity_variants,
    wisync,
    wisync_not,
)
from repro.machine.manycore import Manycore, Program
from repro.machine.results import SimResult

__all__ = [
    "Manycore",
    "Program",
    "SimResult",
    "baseline",
    "baseline_plus",
    "wisync",
    "wisync_not",
    "paper_configurations",
    "sensitivity_variants",
    "config_by_name",
]
