"""The simulated manycore: dispatches thread operations to the timing models.

``Manycore`` owns one :class:`~repro.sim.engine.Simulator` and all subsystem
models.  Workload threads are generators; every yielded operation from
:mod:`repro.isa.operations` is executed here against the cached-memory
hierarchy (regular variables) or the WiSync broadcast fabric (broadcast
variables), and the thread resumes when the operation completes.
"""

from __future__ import annotations

import gc
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.config import MachineConfig
from repro.core.bm_controller import RmwResult
from repro.core.fabric import BroadcastFabric
from repro.cpu.core import Core
from repro.cpu.frames import FrameEnv
from repro.cpu.thread import SimThread, ThreadContext, ThreadState
from repro.errors import DeadlockError, WorkloadError
from repro.isa import operations as ops
from repro.isa.predicates import Eq
from repro.sync.frames import SYNC_ROUTINES
from repro.machine.results import SimResult
from repro.mem.hierarchy import MemorySystem
from repro.noc.mesh import MeshNetwork
from repro.noc.topology import MeshTopology
from repro.osmodel.process import ProcessTable
from repro.osmodel.scheduler import Scheduler
from repro.sim.engine import Simulator
from repro.sim.rng import DeterministicRng
from repro.sim.stats import StatsRegistry
from repro.sim.trace import Tracer

#: Base of the cached-memory arena used for workload shared variables.
SHARED_MEMORY_BASE = 0x1000_0000
#: Base of the cached-memory region backing spilled broadcast variables.
SPILL_MEMORY_BASE = 0x2000_0000
#: Base of the per-thread private memory regions.
PRIVATE_MEMORY_BASE = 0x4000_0000
#: Size of each thread's private region in bytes.
PRIVATE_REGION_BYTES = 1 << 20


class Program:
    """One running program: a PID, its threads, and its memory allocations."""

    def __init__(self, machine: "Manycore", pid: int, name: str) -> None:
        self.machine = machine
        self.pid = pid
        self.name = name
        self.threads: List[SimThread] = []
        self._next_shared = SHARED_MEMORY_BASE + pid * (1 << 24)

    # ------------------------------------------------------------ allocation
    def alloc_shared(self, words: int = 1, align_line: bool = True) -> int:
        """Allocate cached (regular) shared memory; returns a byte address.

        Successive allocations are padded to distinct cache lines when
        ``align_line`` is set so that independent variables do not falsely
        share a line.
        """
        if words < 1:
            raise WorkloadError("allocation must request at least one word")
        line = self.machine.config.cache.line_bytes
        addr = self._next_shared
        size = words * 8
        if align_line:
            size = ((size + line - 1) // line) * line
        self._next_shared += size
        return addr

    def alloc_broadcast(
        self,
        words: int = 1,
        tone_capable: bool = False,
        participants: Optional[List[int]] = None,
    ) -> int:
        """Allocate broadcast-memory entries; returns a BM entry address.

        On machines without WiSync hardware this falls back to cached memory
        but still returns an address usable with the ``Bm*`` operations (the
        machine transparently routes them to the cache hierarchy), mirroring
        the paper's spill-to-plain-memory mechanism.
        """
        fabric = self.machine.fabric
        if fabric is None:
            addr = self.machine._alloc_soft_bm(words)
            return addr
        allocation = fabric.allocate(self.pid, words, tone_capable, participants)
        if tone_capable and participants:
            # Threads already placed on participant cores are bound to the
            # tone barrier, which restricts their migration (Section 5.2).
            for core in participants:
                for thread_id in self.machine.scheduler.threads_on(core):
                    self.machine.scheduler.register_tone_barrier(thread_id, allocation.base_addr)
        return allocation.base_addr

    def private_addr(self, thread_id: int, offset_words: int = 0) -> int:
        """A per-thread private cached address (thread-local pools, stacks)."""
        return PRIVATE_MEMORY_BASE + thread_id * PRIVATE_REGION_BYTES + offset_words * 8

    # --------------------------------------------------------------- threads
    def add_thread(
        self,
        body: Callable[[ThreadContext], Generator],
        core_id: Optional[int] = None,
    ) -> SimThread:
        """Register a thread; by default thread ``i`` runs on core ``i % N``."""
        return self.machine._add_thread(self, body, core_id)

    @property
    def num_threads(self) -> int:
        return len(self.threads)


class Manycore:
    """A complete simulated chip plus the driver for workload threads."""

    def __init__(self, config: MachineConfig, trace: bool = False) -> None:
        self.config = config.validate()
        self.sim = Simulator()
        self.stats = StatsRegistry()
        self.tracer = Tracer(enabled=trace)
        self.rng = DeterministicRng(config.seed, "machine")
        self.topology = MeshTopology.square_for(config.num_cores)
        self.mesh = MeshNetwork(self.topology, config.noc, self.stats)
        self.memory = MemorySystem(self.sim, config, self.mesh, self.stats, self.tracer)
        self.cores = [Core(core_id, config.core) for core_id in range(config.num_cores)]
        self.fabric: Optional[BroadcastFabric] = None
        if config.wisync_enabled:
            self.fabric = BroadcastFabric(
                self.sim, config, self.stats, self.tracer, self.rng.child("fabric")
            )
            for core_id in range(config.num_cores):
                self.fabric.create_node(core_id)
        self.process_table = ProcessTable()
        self.scheduler = Scheduler(config.num_cores)
        self.threads: List[SimThread] = []
        self.programs: List[Program] = []
        # Frames-mode support: synchronization objects registered by creation
        # order (frames reference them by stable ``sync_id``) and the routine
        # table the trampoline resolves step functions from.  Both are
        # rebuilt identically by a deterministic workload build, which is
        # what lets a native restore re-attach captured frame stacks.
        self.sync_objects: List[Any] = []
        self.frame_routines: Dict[str, Callable] = dict(SYNC_ROUTINES)
        self._finished = 0
        self._soft_bm_next = 0
        self._ran = False
        self._events_start = 0
        self._bm_spill_base = self.fabric.allocator.spill_base if self.fabric is not None else 0
        # Hot-path bindings: one type-keyed dispatch table instead of an
        # isinstance chain, and bound methods so the inner loop does not
        # repeat attribute lookups for every executed operation.
        self._schedule = self.sim.schedule
        self._dispatch_table: Dict[type, Callable[[SimThread, Any], None]] = {
            ops.Compute: self._op_compute,
            ops.Fence: self._op_fence,
            ops.Read: self._op_read,
            ops.Write: self._op_write,
            ops.AtomicOp: self._op_atomic,
            ops.WaitUntil: self._op_wait_until,
            ops.BmAlloc: self._handle_bm_alloc,
            ops.BmFree: self._handle_bm_free,
            ops.BmLoad: self._handle_bm_load,
            ops.BmStore: self._handle_bm_store,
            ops.BmBulkLoad: self._handle_bm_bulk_load,
            ops.BmBulkStore: self._handle_bm_bulk_store,
            ops.BmRmw: self._handle_bm_rmw,
            ops.BmWaitUntil: self._handle_bm_wait,
            ops.ToneBarrierAlloc: self._handle_tone_alloc,
            ops.ToneStore: self._handle_tone_store,
            ops.ToneLoad: self._handle_tone_load,
            ops.ToneWait: self._handle_tone_wait,
        }
        # Bound .get of the table: _resolve_handler memoizes subclasses into
        # the same dict, so the binding stays valid.
        self._dispatch_get = self._dispatch_table.get

    # -------------------------------------------------------------- programs
    def register_sync(self, obj: Any) -> int:
        """Give a synchronization object a stable creation-order id.

        Frame locals refer to primitives by this id instead of holding the
        object, keeping frames plain data; the snapshot codec uses the same
        ids to capture and restore primitive-internal state (sense flags,
        MCS queue nodes).
        """
        sync_id = len(self.sync_objects)
        obj.sync_id = sync_id
        self.sync_objects.append(obj)
        return sync_id

    def register_frame_routine(self, name: str, step: Callable) -> None:
        """Register a workload-built routine (closure over build constants).

        Build functions are deterministic, so a restore rebuilds the exact
        same routines under the exact same names before frames re-attach.
        """
        if name in self.frame_routines:
            raise WorkloadError(f"frame routine {name!r} is already registered")
        self.frame_routines[name] = step

    def new_program(self, name: str = "program") -> Program:
        process = self.process_table.spawn(name)
        program = Program(self, process.pid, name)
        self.programs.append(program)
        return program

    def _add_thread(
        self,
        program: Program,
        body: Callable[[ThreadContext], Generator],
        core_id: Optional[int],
    ) -> SimThread:
        thread_id = len(self.threads)
        if core_id is None:
            core_id = thread_id % self.config.num_cores
        context = ThreadContext(
            thread_id=thread_id,
            core_id=core_id,
            num_threads=0,  # patched in run(); programs may still add threads
            pid=program.pid,
            rng=self.rng.child(f"thread{thread_id}"),
        )
        thread = SimThread(thread_id, core_id, program.pid, body, context)
        thread.bind_resume(self._advance)
        thread.frame_env = FrameEnv(self, thread)
        self.threads.append(thread)
        program.threads.append(thread)
        self.process_table.get(program.pid).add_thread(thread_id)
        self.scheduler.place(thread_id, program.pid, core_id)
        return thread

    def _alloc_soft_bm(self, words: int) -> int:
        """Allocate pseudo-BM addresses on machines without wireless hardware."""
        addr = self._soft_bm_next
        self._soft_bm_next += words
        return addr

    # ------------------------------------------------------------------ run
    #: Default event budget before a run is declared a livelock.
    DEFAULT_MAX_EVENTS = 50_000_000

    def run(self, max_cycles: Optional[int] = None, max_events: int = DEFAULT_MAX_EVENTS) -> SimResult:
        """Run every registered thread to completion and collect results.

        One uninterrupted :meth:`begin` / :meth:`advance` / :meth:`finish`
        sequence; checkpointed executions drive the same three phases with
        :meth:`advance` called in event slices (slicing is behaviour-
        preserving — the event loop is a pure function of its queue state).
        """
        self.begin()
        self.advance(max_events=max_events, max_cycles=max_cycles)
        return self.finish(max_cycles=max_cycles, max_events=max_events)

    def begin(self) -> None:
        """Arm the run: validate threads and schedule every thread start."""
        if self._ran:
            raise WorkloadError("this Manycore has already run; build a fresh one per experiment")
        self._ran = True
        if not self.threads:
            raise WorkloadError("no threads registered; add threads through a Program first")
        for thread in self.threads:
            thread.context.num_threads = len(self.threads)
        for thread in self.threads:
            self.sim.schedule(0, self._start_thread, thread)
        self._events_start = self.sim.events_processed

    def advance(self, max_events: Optional[int] = None, max_cycles: Optional[int] = None) -> int:
        """Fire up to ``max_events`` events; returns how many actually fired.

        The engine runs the whole event loop; _advance calls ``sim.stop()``
        the moment the last thread finishes, so the driver pays no
        per-event Python call to poll for termination.
        """
        sim = self.sim
        before = sim.events_processed
        # The event loop allocates millions of short-lived, acyclic objects
        # (events, heap tuples, operation records); generational GC scans buy
        # nothing there and cost ~15% of the run.  Reference counting frees
        # the churn either way, so pause collection for the duration.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            sim.run(max_events=max_events, stop_at=max_cycles)
        finally:
            if gc_was_enabled:
                gc.enable()
        return sim.events_processed - before

    def run_complete(self, max_cycles: Optional[int] = None) -> bool:
        """True when no further :meth:`advance` can change the run's outcome:
        every thread finished, the cycle budget truncated the run, or the
        event queue drained with threads still blocked (a deadlock, which
        :meth:`finish` reports)."""
        if self._finished >= len(self.threads):
            return True
        if max_cycles is not None and self.sim.now >= max_cycles:
            return True
        return self.sim.pending_events == 0

    def finish(
        self, max_cycles: Optional[int] = None, max_events: int = DEFAULT_MAX_EVENTS
    ) -> SimResult:
        """Check how the run ended (truncation/deadlock) and build the result."""
        truncated = False
        sim = self.sim
        if self._finished < len(self.threads):
            if max_cycles is not None and sim.now >= max_cycles:
                # Only a truncation if the budget actually cut threads short;
                # a run whose last thread finishes exactly on the boundary is
                # still converged.
                truncated = True
            elif sim.events_processed - self._events_start >= max_events:
                raise DeadlockError(f"simulation exceeded {max_events} events")
            else:
                blocked = [t.thread_id for t in self.threads if not t.finished]
                raise DeadlockError(
                    f"simulation deadlocked at cycle {sim.now}; "
                    f"blocked threads: {blocked[:16]}"
                )
        return self._build_result(truncated)

    # ------------------------------------------------------------ internals
    def _start_thread(self, thread: SimThread) -> None:
        thread.start_cycle = self.sim.now
        if self.fabric is not None:
            # Bind the thread to any tone barrier armed on its core so the
            # scheduler can enforce the migration restriction of Section 5.2.
            controller = self.fabric.node(thread.core_id).tone_controller
            placement = self.scheduler.placement(thread.thread_id)
            for addr, entry in controller.alloc_b.items():
                if entry.armed and addr not in placement.tone_barriers:
                    self.scheduler.register_tone_barrier(thread.thread_id, addr)
        thread.start()
        self._advance(thread, None)

    def _advance(self, thread: SimThread, value: Any) -> None:
        if thread.state is ThreadState.FINISHED:
            return
        try:
            operation = thread.send(value)
        except StopIteration as stop:
            thread.state = ThreadState.FINISHED
            thread.finish_cycle = self.sim.now
            thread.result = stop.value
            self._finished += 1
            if self._finished >= len(self.threads):
                self.sim.stop()
            return
        thread.operations_issued += 1
        # Dispatch: one type-keyed dict probe per operation; subclasses fall
        # back to _resolve_handler, which memoizes them into the table.
        handler = self._dispatch_get(operation.__class__)
        if handler is None:
            handler = self._resolve_handler(thread, operation)
        handler(thread, operation)

    def _resume(self, thread: SimThread, delay: int, value: Any = None) -> None:
        self._schedule(delay if delay > 0 else 0, self._advance, thread, value)

    # ------------------------------------------------------------- dispatch
    def _resolve_handler(self, thread: SimThread, op: Any) -> Callable[[SimThread, Any], None]:
        """Slow path for operation subclasses: resolve by isinstance, memoize."""
        for op_type, handler in list(self._dispatch_table.items()):
            if isinstance(op, op_type):
                self._dispatch_table[op.__class__] = handler
                return handler
        raise WorkloadError(f"thread {thread.thread_id} yielded unsupported operation {op!r}")

    # The hottest handlers inline _resume and Core.add_memory_stall: one
    # schedule call and two attribute updates instead of three method calls
    # per executed memory operation.
    def _op_compute(self, thread: SimThread, op: ops.Compute) -> None:
        cycles = op.cycles
        self.cores[thread.core_id].run_compute(cycles)
        self._schedule(cycles if cycles > 0 else 0, self._advance, thread, None)

    def _op_fence(self, thread: SimThread, op: ops.Fence) -> None:
        cycles = op.cycles
        self._schedule(cycles if cycles > 0 else 0, self._advance, thread, None)

    def _op_read(self, thread: SimThread, op: ops.Read) -> None:
        value, completion = self.memory.read(thread.core_id, op.addr, op.size)
        stall = completion - self.sim.now
        if stall > 0:
            self.cores[thread.core_id].memory_stall_cycles += stall
        else:
            stall = 0
        self._schedule(stall, self._advance, thread, value)

    def _op_write(self, thread: SimThread, op: ops.Write) -> None:
        completion = self.memory.write(thread.core_id, op.addr, op.value, op.size)
        stall = completion - self.sim.now
        if stall > 0:
            self.cores[thread.core_id].memory_stall_cycles += stall
        else:
            stall = 0
        self._schedule(stall, self._advance, thread, None)

    def _op_atomic(self, thread: SimThread, op: ops.AtomicOp) -> None:
        old, success, completion = self.memory.atomic(
            thread.core_id, op.addr, op.kind, op.operand, op.expected
        )
        stall = completion - self.sim.now
        if stall > 0:
            self.cores[thread.core_id].memory_stall_cycles += stall
        else:
            stall = 0
        self._schedule(stall, self._advance, thread, (old, success))

    def _op_wait_until(self, thread: SimThread, op: ops.WaitUntil) -> None:
        self.memory.wait_until(thread.core_id, op.addr, op.predicate, thread.resume)

    # -------------------------------------------------- BM dispatch helpers
    def _bm_is_soft(self, addr: int) -> bool:
        """True when the BM address must be served by the cache hierarchy.

        Inlined arithmetic: the spill base is a config constant, so the
        check is one comparison instead of two calls into the allocator.
        """
        return self.fabric is None or addr >= self._bm_spill_base

    def _soft_bm_cached_addr(self, addr: int) -> int:
        return SPILL_MEMORY_BASE + addr * 8

    def _handle_bm_alloc(self, thread: SimThread, op: ops.BmAlloc) -> None:
        program_pid = thread.pid
        if self.fabric is None:
            addr = self._alloc_soft_bm(op.words)
            self._resume(thread, self.config.bm.round_trip, addr)
            return
        allocation = self.fabric.allocate(
            program_pid, op.words, op.tone_capable, op.participants
        )
        # The allocation instruction broadcasts one wireless message.
        self._resume(thread, self.config.data_channel.message_cycles, allocation.base_addr)

    def _handle_bm_free(self, thread: SimThread, op: ops.BmFree) -> None:
        if self.fabric is not None:
            self.fabric.free(thread.pid, op.addr, op.words)
        self._resume(thread, self.config.data_channel.message_cycles)

    def _handle_bm_load(self, thread: SimThread, op: ops.BmLoad) -> None:
        if self._bm_is_soft(op.addr):
            value, completion = self.memory.read(thread.core_id, self._soft_bm_cached_addr(op.addr))
            self._resume(thread, completion - self.sim.now, value)
            return
        node = self.fabric.nodes[thread.core_id]
        value, latency = node.bm_controller.load(op.addr)
        self._resume(thread, latency, value)

    def _handle_bm_store(self, thread: SimThread, op: ops.BmStore) -> None:
        if self._bm_is_soft(op.addr):
            completion = self.memory.write(
                thread.core_id, self._soft_bm_cached_addr(op.addr), op.value
            )
            self._resume(thread, completion - self.sim.now)
            return
        node = self.fabric.nodes[thread.core_id]
        node.bm_controller.store(op.addr, op.value, thread.resume_none)

    def _handle_bm_bulk_load(self, thread: SimThread, op: ops.BmBulkLoad) -> None:
        if self._bm_is_soft(op.addr):
            values = []
            completion = self.sim.now
            for offset in range(4):
                value, completion = self.memory.read(
                    thread.core_id, self._soft_bm_cached_addr(op.addr + offset)
                )
                values.append(value)
            self._resume(thread, completion - self.sim.now, tuple(values))
            return
        node = self.fabric.nodes[thread.core_id]
        values, latency = node.bm_controller.bulk_load(op.addr)
        self._resume(thread, latency, values)

    def _handle_bm_bulk_store(self, thread: SimThread, op: ops.BmBulkStore) -> None:
        values = tuple(op.values)
        if len(values) != 4:
            raise WorkloadError("bulk stores transfer exactly four words")
        if self._bm_is_soft(op.addr):
            completion = self.sim.now
            for offset, value in enumerate(values):
                completion = self.memory.write(
                    thread.core_id, self._soft_bm_cached_addr(op.addr + offset), value
                )
            self._resume(thread, completion - self.sim.now)
            return
        node = self.fabric.nodes[thread.core_id]
        node.bm_controller.bulk_store(op.addr, values, thread.resume_none)

    def _handle_bm_rmw(self, thread: SimThread, op: ops.BmRmw) -> None:
        if self._bm_is_soft(op.addr):
            old, success, completion = self.memory.atomic(
                thread.core_id,
                self._soft_bm_cached_addr(op.addr),
                op.kind,
                op.operand,
                op.expected,
            )
            result = RmwResult(
                old_value=old, success=success, afb=False, completion_cycle=completion
            )
            self._resume(thread, completion - self.sim.now, result)
            return
        node = self.fabric.nodes[thread.core_id]
        node.bm_controller.rmw(
            op.addr, op.kind, thread.resume, operand=op.operand, expected=op.expected
        )

    def _handle_bm_wait(self, thread: SimThread, op: ops.BmWaitUntil) -> None:
        if self._bm_is_soft(op.addr):
            self.memory.wait_until(
                thread.core_id,
                self._soft_bm_cached_addr(op.addr),
                op.predicate,
                thread.resume,
            )
            return
        self.fabric.wait_until(op.addr, op.predicate, thread.resume)

    # ------------------------------------------------- tone dispatch helpers
    def _require_tone(self, thread: SimThread) -> None:
        if self.fabric is None or self.fabric.tone_channel is None:
            raise WorkloadError(
                f"thread {thread.thread_id} used a tone operation on configuration "
                f"{self.config.name!r}, which has no tone channel"
            )

    def _handle_tone_alloc(self, thread: SimThread, op: ops.ToneBarrierAlloc) -> None:
        self._require_tone(thread)
        allocation = self.fabric.allocate(
            thread.pid, 1, tone_capable=True, participants=list(op.participants)
        )
        for participant_core in op.participants:
            for tid in self.scheduler.threads_on(participant_core):
                self.scheduler.register_tone_barrier(tid, allocation.base_addr)
        self._resume(thread, self.config.data_channel.message_cycles, allocation.base_addr)

    def _handle_tone_store(self, thread: SimThread, op: ops.ToneStore) -> None:
        self._require_tone(thread)
        node = self.fabric.nodes[thread.core_id]
        node.tone_controller.arrive(op.addr)
        self._resume(thread, self.config.bm.round_trip)

    def _handle_tone_load(self, thread: SimThread, op: ops.ToneLoad) -> None:
        self._require_tone(thread)
        value = self.fabric.memory.entry(op.addr).value
        self._resume(thread, self.config.bm.round_trip, value)

    def _handle_tone_wait(self, thread: SimThread, op: ops.ToneWait) -> None:
        self._require_tone(thread)
        self.fabric.wait_until(op.addr, Eq(op.local_sense), thread.resume)

    # --------------------------------------------------------------- results
    def _build_result(self, truncated: bool = False) -> SimResult:
        # Unfinished threads (truncated runs) are charged the cycles they
        # actually spent running, measured from their own start cycle.
        thread_cycles = [
            t.elapsed_cycles
            if t.elapsed_cycles is not None
            else self.sim.now - (t.start_cycle or 0)
            for t in self.threads
        ]
        return SimResult(
            config_name=self.config.name,
            num_cores=self.config.num_cores,
            total_cycles=self.sim.now,
            thread_cycles=thread_cycles,
            thread_results=[t.result for t in self.threads],
            stats=self.stats,
            finished_threads=self._finished,
            total_threads=len(self.threads),
            completed=self._finished == len(self.threads) and not truncated,
            events_processed=self.sim.events_processed,
        )
