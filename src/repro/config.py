"""Configuration dataclasses for every modelled subsystem.

Default values follow Table 1 of the paper (architecture parameters) and
Section 4.1 (wireless parameters).  The four architecture configurations of
Table 2 and the sensitivity variants of Table 6 are built from these
dataclasses in :mod:`repro.machine.configs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CoreConfig:
    """Timing-relevant core parameters (Table 1, "General Parameters")."""

    frequency_ghz: float = 1.0
    issue_width: int = 2
    rob_entries: int = 64
    load_store_queue: int = 20

    def validate(self) -> None:
        if self.frequency_ghz <= 0:
            raise ConfigurationError("core frequency must be positive")
        if self.issue_width < 1:
            raise ConfigurationError("issue width must be at least 1")


@dataclass(frozen=True)
class CacheConfig:
    """L1/L2 cache hierarchy parameters (Table 1)."""

    line_bytes: int = 64
    l1_size_kb: int = 32
    l1_assoc: int = 2
    l1_latency: int = 2          # round-trip cycles
    l2_bank_size_kb: int = 512   # per-core shared L2 bank
    l2_assoc: int = 8
    l2_latency: int = 6          # local bank round-trip cycles

    def validate(self) -> None:
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ConfigurationError("cache line size must be a positive power of two")
        for name in ("l1_size_kb", "l1_assoc", "l1_latency", "l2_bank_size_kb", "l2_assoc", "l2_latency"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    @property
    def l1_sets(self) -> int:
        return (self.l1_size_kb * 1024) // (self.line_bytes * self.l1_assoc)

    @property
    def l2_sets_per_bank(self) -> int:
        return (self.l2_bank_size_kb * 1024) // (self.line_bytes * self.l2_assoc)


@dataclass(frozen=True)
class NocConfig:
    """Wired 2D-mesh on-chip network parameters (Table 1)."""

    hop_latency: int = 4        # cycles per hop
    link_bits: int = 128
    router_latency: int = 1
    # Baseline+ only: virtual tree-based broadcast with flit replication [22].
    tree_broadcast: bool = False

    def validate(self) -> None:
        if self.hop_latency <= 0:
            raise ConfigurationError("hop latency must be positive")
        if self.link_bits <= 0:
            raise ConfigurationError("link width must be positive")

    def cycles_per_flit(self, message_bits: int) -> int:
        """Number of flits (and serialization cycles) for a message."""
        return max(1, -(-message_bits // self.link_bits))


@dataclass(frozen=True)
class MemoryConfig:
    """Off-chip memory parameters (Table 1)."""

    controllers: int = 4
    dram_round_trip: int = 110

    def validate(self) -> None:
        if self.controllers <= 0:
            raise ConfigurationError("need at least one memory controller")
        if self.dram_round_trip <= 0:
            raise ConfigurationError("DRAM round trip must be positive")


@dataclass(frozen=True)
class BroadcastMemoryConfig:
    """Per-core Broadcast Memory parameters (Table 1 + Section 4.2)."""

    size_kb: int = 16
    round_trip: int = 2          # cycles (Table 1: "2-cycle RT")
    entry_bits: int = 64
    page_kb: int = 4
    address_bits: int = 11       # 16KB of 64-bit entries -> 2048 entries -> 11 bits
    pid_bits: int = 8

    def validate(self) -> None:
        if self.size_kb <= 0 or self.round_trip <= 0:
            raise ConfigurationError("BM size and latency must be positive")
        if self.entry_bits not in (32, 64):
            raise ConfigurationError("BM entries are 32 or 64 bits wide")
        if self.num_entries > (1 << self.address_bits):
            raise ConfigurationError(
                "address_bits too small to address every BM entry "
                f"({self.num_entries} entries, {self.address_bits} bits)"
            )

    @property
    def num_entries(self) -> int:
        return (self.size_kb * 1024 * 8) // self.entry_bits

    @property
    def entries_per_page(self) -> int:
        return (self.page_kb * 1024 * 8) // self.entry_bits

    @property
    def num_pages(self) -> int:
        return self.size_kb // self.page_kb


@dataclass(frozen=True)
class DataChannelConfig:
    """Wireless Data channel parameters (Section 4.1).

    A transfer carries a 64-bit datum, an 11-bit BM address, a Bulk bit and a
    Tone bit (77 bits total) in 5 slots of 1 ns; the second slot is used for
    collision detection, so a collision only wastes 2 cycles.  A bulk message
    carries four 64-bit words and takes 15 cycles.
    """

    bandwidth_gbps: float = 19.0
    center_frequency_ghz: float = 60.0
    slot_cycles: int = 1
    message_cycles: int = 5
    collision_detect_cycle: int = 2
    bulk_message_cycles: int = 15
    payload_bits: int = 64
    address_bits: int = 11
    header_bits: int = 2          # Bulk bit + Tone bit

    def validate(self) -> None:
        if self.message_cycles <= self.collision_detect_cycle:
            raise ConfigurationError("collision detection must happen before message end")
        if self.bulk_message_cycles < self.message_cycles:
            raise ConfigurationError("bulk messages cannot be shorter than single messages")
        if self.bandwidth_gbps <= 0:
            raise ConfigurationError("bandwidth must be positive")

    @property
    def message_bits(self) -> int:
        return self.payload_bits + self.address_bits + self.header_bits

    @property
    def collision_penalty_cycles(self) -> int:
        """Cycles lost on the channel when a collision is detected."""
        return self.collision_detect_cycle

    @property
    def required_bandwidth_gbps(self) -> float:
        """Bandwidth implied by sending message_bits in (message_cycles-1) ns."""
        return self.message_bits / (self.message_cycles - 1)


@dataclass(frozen=True)
class ToneChannelConfig:
    """Wireless Tone channel parameters (Section 4.1 / 5.1)."""

    enabled: bool = True
    bandwidth_gbps: float = 1.0
    center_frequency_ghz: float = 90.0
    slot_cycles: int = 1
    table_entries: int = 64      # AllocB / ActiveB size

    def validate(self) -> None:
        if self.slot_cycles <= 0:
            raise ConfigurationError("tone slot must be at least one cycle")
        if self.table_entries <= 0:
            raise ConfigurationError("tone tables need at least one entry")


@dataclass(frozen=True)
class BackoffConfig:
    """Collision-resolution policy for the Data channel (Section 5.3).

    ``broadcast_aware`` is the default: exponential growth on collisions with
    contention-estimate decay driven by observed successes, which the paper
    notes is easy to build on a broadcast medium.  Plain ``exponential``
    (Ethernet-style) and ``fixed`` windows are available as ablations.
    """

    kind: str = "broadcast_aware"   # "broadcast_aware", "exponential" or "fixed"
    max_exponent: int = 10
    fixed_window: int = 8

    def validate(self) -> None:
        if self.kind not in ("broadcast_aware", "exponential", "fixed"):
            raise ConfigurationError(f"unknown backoff kind {self.kind!r}")
        if self.max_exponent < 1:
            raise ConfigurationError("max_exponent must be >= 1")
        if self.fixed_window < 1:
            raise ConfigurationError("fixed_window must be >= 1")


@dataclass(frozen=True)
class SyncConfig:
    """Which software synchronization algorithms a configuration uses (Table 2)."""

    lock_kind: str = "cas_spin"        # cas_spin | mcs | wireless
    barrier_kind: str = "centralized"  # centralized | tournament | wireless | tone
    reduction_kind: str = "lock"       # lock | wireless

    _LOCKS = ("cas_spin", "mcs", "wireless")
    _BARRIERS = ("centralized", "tournament", "wireless", "tone")
    _REDUCTIONS = ("lock", "wireless")

    def validate(self) -> None:
        if self.lock_kind not in self._LOCKS:
            raise ConfigurationError(f"unknown lock kind {self.lock_kind!r}")
        if self.barrier_kind not in self._BARRIERS:
            raise ConfigurationError(f"unknown barrier kind {self.barrier_kind!r}")
        if self.reduction_kind not in self._REDUCTIONS:
            raise ConfigurationError(f"unknown reduction kind {self.reduction_kind!r}")


@dataclass(frozen=True)
class MachineConfig:
    """Complete description of one simulated manycore."""

    name: str = "wisync"
    num_cores: int = 64
    core: CoreConfig = field(default_factory=CoreConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    noc: NocConfig = field(default_factory=NocConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    wisync_enabled: bool = True
    bm: BroadcastMemoryConfig = field(default_factory=BroadcastMemoryConfig)
    data_channel: DataChannelConfig = field(default_factory=DataChannelConfig)
    tone_channel: ToneChannelConfig = field(default_factory=ToneChannelConfig)
    backoff: BackoffConfig = field(default_factory=BackoffConfig)
    sync: SyncConfig = field(default_factory=SyncConfig)
    seed: int = 2016

    def validate(self) -> "MachineConfig":
        if self.num_cores < 1:
            raise ConfigurationError("need at least one core")
        self.core.validate()
        self.cache.validate()
        self.noc.validate()
        self.memory.validate()
        self.bm.validate()
        self.data_channel.validate()
        self.tone_channel.validate()
        self.backoff.validate()
        self.sync.validate()
        if not self.wisync_enabled:
            if self.sync.lock_kind == "wireless" or self.sync.barrier_kind in ("wireless", "tone"):
                raise ConfigurationError(
                    f"configuration {self.name!r} uses wireless synchronization "
                    "but has no wireless hardware"
                )
        if self.sync.barrier_kind == "tone" and not self.tone_channel.enabled:
            raise ConfigurationError(
                f"configuration {self.name!r} uses tone barriers but the tone channel is disabled"
            )
        return self

    # --------------------------------------------------------------- helpers
    @property
    def mesh_width(self) -> int:
        """Side of the smallest square mesh that fits ``num_cores`` nodes."""
        width = 1
        while width * width < self.num_cores:
            width += 1
        return width

    def with_cores(self, num_cores: int) -> "MachineConfig":
        return replace(self, num_cores=num_cores)

    def with_name(self, name: str) -> "MachineConfig":
        return replace(self, name=name)

    def with_seed(self, seed: int) -> "MachineConfig":
        return replace(self, seed=seed)

    def replace(self, **kwargs) -> "MachineConfig":
        return replace(self, **kwargs)


def default_machine_config(num_cores: int = 64) -> MachineConfig:
    """The paper's default WiSync configuration (Table 1) for ``num_cores``."""
    return MachineConfig(num_cores=num_cores).validate()
