"""Per-core accounting.

Cores do not model individual instructions; they account for the cycles each
thread spends computing versus waiting on memory or synchronization, which is
what the evaluation reports (execution time, throughput, channel utilization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config import CoreConfig
from repro.errors import WorkloadError


@dataclass
class Core:
    """One core of the manycore: occupancy and simple accounting."""

    core_id: int
    config: CoreConfig
    busy_cycles: int = 0
    memory_stall_cycles: int = 0
    sync_stall_cycles: int = 0
    instructions_retired: int = 0
    current_thread: Optional[int] = None

    def run_compute(self, cycles: int) -> int:
        """Account for a compute phase; returns the cycles consumed.

        The 2-issue core retires roughly two instructions per cycle, but
        workloads already express compute phases in cycles, so the phase
        length is charged as-is and the instruction count is derived.
        """
        if cycles < 0:
            raise WorkloadError("compute cycles must be non-negative")
        self.busy_cycles += cycles
        self.instructions_retired += cycles * self.config.issue_width
        return cycles

    def add_memory_stall(self, cycles: int) -> None:
        self.memory_stall_cycles += max(0, cycles)

    def add_sync_stall(self, cycles: int) -> None:
        self.sync_stall_cycles += max(0, cycles)

    @property
    def total_accounted_cycles(self) -> int:
        return self.busy_cycles + self.memory_stall_cycles + self.sync_stall_cycles

    def utilization(self, total_cycles: int) -> float:
        """Fraction of cycles spent computing rather than stalled."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / total_cycles)
