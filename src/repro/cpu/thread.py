"""Simulated software threads.

A thread's body is either a Python generator — every ``yield`` hands an
operation from :mod:`repro.isa.operations` to the machine and the result
comes back as the value of the ``yield`` expression — or a
:class:`~repro.cpu.frames.FrameBody`, in which case the thread runs as an
explicit stack of resumable frames driven by a trampoline speaking the
same send/StopIteration protocol.  The machine drives both through
:meth:`SimThread.send` and cannot tell them apart; only the frame
representation is natively checkpointable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional

from repro.cpu.frames import Call, Frame, FrameBody, FrameEnv, Op
from repro.sim.rng import DeterministicRng


class ThreadState(enum.Enum):
    """Lifecycle of a simulated thread."""

    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    FINISHED = "finished"


@dataclass
class ThreadContext:
    """Read-only view handed to workload thread bodies.

    Thread bodies receive this object as their only argument; it tells them
    who they are and gives them a private deterministic random stream for
    think-time jitter.
    """

    thread_id: int
    core_id: int
    num_threads: int
    pid: int
    rng: DeterministicRng


class ThreadResume:
    """Schedulable callback that resumes a thread with the delivered value.

    One shared instance per thread replaces the per-suspension
    ``lambda value: machine._advance(thread, value)`` closures the machine
    used to allocate on every blocking operation: cheaper on the hot path,
    and — unlike a closure — describable by the snapshot codec.
    """

    __slots__ = ("advance", "thread")

    def __init__(self, advance: Callable[["SimThread", Any], None], thread: "SimThread") -> None:
        self.advance = advance
        self.thread = thread

    def __call__(self, value: Any) -> None:
        self.advance(self.thread, value)


class ThreadResumeNone(ThreadResume):
    """Resume a thread with ``None``, ignoring whatever the caller delivers
    (completion cycles from BM stores, for example)."""

    __slots__ = ()

    def __call__(self, *_ignored: Any) -> None:
        self.advance(self.thread, None)


class SimThread:
    """One simulated thread bound to a core."""

    def __init__(
        self,
        thread_id: int,
        core_id: int,
        pid: int,
        body: Callable[[ThreadContext], Generator],
        context: ThreadContext,
    ) -> None:
        self.thread_id = thread_id
        self.core_id = core_id
        self.pid = pid
        self.body = body
        self.context = context
        self.generator: Optional[Generator] = None
        self.frames: Optional[List[Frame]] = None
        self.frame_env: Optional[FrameEnv] = None
        self.state = ThreadState.READY
        self.start_cycle: Optional[int] = None
        self.finish_cycle: Optional[int] = None
        self.operations_issued = 0
        self.result: Any = None
        #: Set by the machine when the thread is registered (bind_resume).
        self.resume: Optional[ThreadResume] = None
        self.resume_none: Optional[ThreadResumeNone] = None
        #: Bound per representation in :meth:`start`; the machine's dispatch
        #: loop calls ``thread.send(value)`` without knowing which it is.
        self.send: Optional[Callable[[Any], Any]] = None

    def bind_resume(self, advance: Callable[["SimThread", Any], None]) -> None:
        """Create the shared resume callables (called once by the machine)."""
        self.resume = ThreadResume(advance, self)
        self.resume_none = ThreadResumeNone(advance, self)

    @property
    def uses_frames(self) -> bool:
        """True when the body runs on the resumable-frame trampoline."""
        return isinstance(self.body, FrameBody)

    def start(self) -> None:
        """Instantiate the body (called by the machine when scheduling)."""
        if isinstance(self.body, FrameBody):
            self.frames = self.body.spawn_stack()
            self.send = self._frame_send
        else:
            self.generator = self.body(self.context)
            self.send = self.generator.send
        self.state = ThreadState.RUNNING

    def _frame_send(self, value: Any) -> Any:
        """Trampoline: drive the frame stack until it suspends or finishes.

        Speaks the generator protocol — returns the next operation, raises
        ``StopIteration(result)`` when the root frame returns — so the
        machine's ``except StopIteration`` path works unchanged.
        """
        stack = self.frames
        env = self.frame_env
        routines = env.machine.frame_routines
        while True:
            frame = stack[-1]
            action = routines[frame.routine](frame, value, env)
            cls = action.__class__
            if cls is Op:
                frame.label = action.label
                return action.operation
            if cls is Call:
                frame.label = action.label
                stack.append(Frame(action.routine, locals=action.locals))
                value = None
                continue
            stack.pop()
            if not stack:
                raise StopIteration(action.value)
            value = action.value

    @property
    def finished(self) -> bool:
        return self.state is ThreadState.FINISHED

    @property
    def elapsed_cycles(self) -> Optional[int]:
        if self.start_cycle is None or self.finish_cycle is None:
            return None
        return self.finish_cycle - self.start_cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimThread(tid={self.thread_id}, core={self.core_id}, "
            f"pid={self.pid}, state={self.state.value})"
        )
