"""Simulated software threads.

A thread's body is a Python generator: every ``yield`` hands an operation
from :mod:`repro.isa.operations` to the machine, and the result of the
operation comes back as the value of the ``yield`` expression.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.sim.rng import DeterministicRng


class ThreadState(enum.Enum):
    """Lifecycle of a simulated thread."""

    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    FINISHED = "finished"


@dataclass
class ThreadContext:
    """Read-only view handed to workload thread bodies.

    Thread bodies receive this object as their only argument; it tells them
    who they are and gives them a private deterministic random stream for
    think-time jitter.
    """

    thread_id: int
    core_id: int
    num_threads: int
    pid: int
    rng: DeterministicRng


class SimThread:
    """One simulated thread bound to a core."""

    def __init__(
        self,
        thread_id: int,
        core_id: int,
        pid: int,
        body: Callable[[ThreadContext], Generator],
        context: ThreadContext,
    ) -> None:
        self.thread_id = thread_id
        self.core_id = core_id
        self.pid = pid
        self.body = body
        self.context = context
        self.generator: Optional[Generator] = None
        self.state = ThreadState.READY
        self.start_cycle: Optional[int] = None
        self.finish_cycle: Optional[int] = None
        self.operations_issued = 0
        self.result: Any = None

    def start(self) -> Generator:
        """Instantiate the generator (called by the machine when scheduling)."""
        self.generator = self.body(self.context)
        self.state = ThreadState.RUNNING
        return self.generator

    @property
    def finished(self) -> bool:
        return self.state is ThreadState.FINISHED

    @property
    def elapsed_cycles(self) -> Optional[int]:
        if self.start_cycle is None or self.finish_cycle is None:
            return None
        return self.finish_cycle - self.start_cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimThread(tid={self.thread_id}, core={self.core_id}, "
            f"pid={self.pid}, state={self.state.value})"
        )
