"""Resumable thread frames: thread bodies as explicit, serializable stacks.

A generator thread body keeps its progress in a live CPython frame —
instruction pointer, locals, the whole ``yield from`` chain — which is
exactly the state a checkpoint cannot capture.  This module provides the
alternative representation: a thread is an explicit stack of
:class:`Frame` records, each naming a *routine* (a pure step function
registered on the machine), a *label* (which suspension point inside the
routine to resume at), and a dict of plain-data *locals*.

A routine is a function ``step(frame, value, env) -> Op | Call | Ret``:

* ``Op(operation, label)`` — suspend: hand ``operation`` to the machine and,
  when its result comes back, re-enter this routine at ``label`` with the
  result as ``value``.
* ``Call(routine, locals, label)`` — push a callee frame; when it returns,
  re-enter this routine at ``label`` with the callee's return value.
* ``Ret(value)`` — pop this frame, returning ``value`` to the caller (or
  finishing the thread if this was the root frame).

The trampoline (:meth:`repro.cpu.thread.SimThread.send`) drives the stack
with exactly the generator protocol — it returns the next operation or
raises ``StopIteration(result)`` — so the machine's dispatch loop cannot
tell the two representations apart and unported workloads keep the
generator path untouched.

The serializability contract (enforced by lint rule SNAP002 and checked at
capture time): everything stored in ``Frame.locals`` must be plain data —
ints, strings, bools, None, or :class:`~repro.isa.predicates.Predicate`
records.  Operation results that are tuples (``AtomicOp``, ``cas``) exist
only *inside* a trampoline step; routines must unpack them into scalars
before suspending.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import SnapshotError

#: Label every frame starts at.
START = "start"


class Op:
    """Suspend the routine: issue ``operation``, resume at ``label``."""

    __slots__ = ("operation", "label")

    def __init__(self, operation: Any, label: str) -> None:
        self.operation = operation
        self.label = label


class Call:
    """Push a callee frame; resume at ``label`` with its return value."""

    __slots__ = ("routine", "locals", "label")

    def __init__(self, routine: str, locals: Optional[Dict[str, Any]], label: str) -> None:
        self.routine = routine
        self.locals = locals
        self.label = label


class Ret:
    """Pop this frame, handing ``value`` back to the caller."""

    __slots__ = ("value",)

    def __init__(self, value: Any = None) -> None:
        self.value = value


class Frame:
    """One resumable activation record: routine name, label, plain locals."""

    __slots__ = ("routine", "label", "locals")

    def __init__(
        self,
        routine: str,
        label: str = START,
        locals: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.routine = routine
        self.label = label
        self.locals = {} if locals is None else locals

    def describe(self) -> Dict[str, Any]:
        """Plain-data form; locals are validated by the snapshot codec."""
        return {"routine": self.routine, "label": self.label, "locals": dict(self.locals)}

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Frame":
        try:
            return cls(payload["routine"], payload["label"], dict(payload["locals"]))
        except (KeyError, TypeError) as error:
            raise SnapshotError(f"malformed frame payload {payload!r}: {error}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Frame({self.routine}@{self.label}, {self.locals})"


class FrameBody:
    """A frames-mode thread body: the root routine plus its initial locals.

    Passed to ``Program.add_thread`` in place of a generator function; the
    machine detects the type and runs the thread on the trampoline.  The
    ``locals`` template is copied per thread, so one ``FrameBody`` serves
    every thread of a workload (per-thread variation comes from
    ``env.ctx``).
    """

    __slots__ = ("routine", "locals")

    def __init__(self, routine: str, locals: Optional[Dict[str, Any]] = None) -> None:
        self.routine = routine
        self.locals = {} if locals is None else locals

    def spawn_stack(self) -> List[Frame]:
        return [Frame(self.routine, START, dict(self.locals))]


class FrameEnv:
    """Ambient context handed to every routine step.

    Routines reach build-time structure through here — the thread's
    :class:`~repro.cpu.thread.ThreadContext` (identity + rng) and the
    machine's sync-object registry — instead of capturing it in locals,
    which keeps frames plain data.
    """

    __slots__ = ("machine", "thread")

    def __init__(self, machine: Any, thread: Any) -> None:
        self.machine = machine
        self.thread = thread

    @property
    def ctx(self) -> Any:
        return self.thread.context

    def sync(self, sync_id: int) -> Any:
        """Resolve a registered synchronization object by its stable id."""
        return self.machine.sync_objects[sync_id]
