"""Core and thread timing abstractions.

The paper models out-of-order 2-issue x86 cores at 1 GHz; synchronization
results are dominated by memory-system and wireless latencies, so the core
model here is timing-abstract: a thread issues operations, the core accounts
for its busy/stalled cycles, and compute phases advance time directly.
"""

from repro.cpu.core import Core
from repro.cpu.thread import SimThread, ThreadContext, ThreadState

__all__ = ["Core", "SimThread", "ThreadContext", "ThreadState"]
