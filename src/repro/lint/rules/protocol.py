"""PROTO001: wire-protocol and journal closure.

The broker and its workers speak JSON-lines-over-TCP messages tagged with a
``"type"`` literal, and the crash-safety journal appends records tagged with
a ``"kind"`` literal.  Both vocabularies are stringly-typed, so adding a
message the other side never handles — or journaling a record replay never
aggregates — compiles, passes unit tests that don't exercise it, and then
loses data in production.  This rule extracts both vocabularies from the AST
and flags any kind that is sent-but-never-handled or journaled-but-never-
replayed.

Side attribution: dict literals built *inside* a broker-side class
(``Broker``, or the sweep service's ``ServiceBroker``/``JobStore``) are
broker-sent (must be compared somewhere outside those classes — the worker
functions); literals built outside are worker-sent (must be compared inside
a broker-side class).  Both vocabularies are aggregated across
``runner/distributed.py`` *and* every ``service/`` module, because the
service daemon speaks the same wire protocol and appends to the same
journal format — a service-only message (``reject``) handled only in the
worker's handshake, or a service-only journal kind (``job-submitted``)
replayed only by ``ServiceJournal``, closes the vocabulary across module
boundaries.  Journal replay handling counts only equality comparisons in
``runner/journal.py``, so a deleted ``elif kind == KIND_X`` aggregation
branch is caught even while ``_KNOWN_KINDS`` still lists the kind.

The service's HTTP payloads deliberately stay out of this vocabulary: they
tag with ``state``, never ``type``/``kind``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import (
    Finding,
    ModuleInfo,
    ModuleWalker,
    ProjectRule,
    module_string_env,
    str_constants,
)


class Proto001ProtocolClosure(ProjectRule):
    id = "PROTO001"
    title = "wire-protocol or journal vocabulary not closed"
    fix_hint = (
        "handle the kind on the receiving side (broker dispatch / worker "
        "reply loop / journal replay), or remove the dead sender"
    )

    #: Classes whose dict literals count as broker-sent: the single-sweep
    #: broker plus the sweep service's two broker-side halves.
    BROKER_CLASSES = ("Broker", "ServiceBroker", "JobStore")

    def check_project(
        self, modules: Sequence[ModuleInfo], walker: ModuleWalker
    ) -> Iterable[Finding]:
        distributed = walker.find(modules, "runner/distributed.py")
        if distributed is None:
            return []
        wire_modules = [distributed] + [
            module
            for module in modules
            if module is not distributed
            and (module.rel.startswith("service/") or "/service/" in module.rel)
        ]
        findings: List[Finding] = []
        findings.extend(self._check_wire(wire_modules))
        journal = walker.find(list(modules) + [distributed], "runner/journal.py")
        findings.extend(self._check_journal(wire_modules, journal))
        return findings

    # ------------------------------------------------------------- wire kinds
    def _check_wire(self, modules: Sequence[ModuleInfo]) -> List[Finding]:
        broker_sent: Dict[str, Tuple[ModuleInfo, int]] = {}
        worker_sent: Dict[str, Tuple[ModuleInfo, int]] = {}
        handled_in_broker: Set[str] = set()
        handled_outside: Set[str] = set()
        for module in modules:
            env = module_string_env(module.tree)
            sent = self._tagged_dicts(module.tree, "type")
            for (kind, in_broker), line in sent.items():
                side = broker_sent if in_broker else worker_sent
                side.setdefault(kind, (module, line))
            for kind, in_broker in self._compared_strings(module.tree, env):
                (handled_in_broker if in_broker else handled_outside).add(kind)

        classes = "/".join(self.BROKER_CLASSES)
        findings: List[Finding] = []
        for kind in sorted(set(worker_sent) - handled_in_broker):
            module, line = worker_sent[kind]
            findings.append(
                self._at(
                    module,
                    line,
                    f"message kind {kind!r} is sent by workers but the broker "
                    f"never handles it (no comparison inside class {classes})",
                )
            )
        for kind in sorted(set(broker_sent) - handled_outside):
            module, line = broker_sent[kind]
            findings.append(
                self._at(
                    module,
                    line,
                    f"message kind {kind!r} is sent by the broker but workers "
                    f"never handle it (no comparison outside class {classes})",
                )
            )
        return findings

    # ---------------------------------------------------------- journal kinds
    def _check_journal(
        self, modules: Sequence[ModuleInfo], journal: Optional[ModuleInfo]
    ) -> List[Finding]:
        journaled: Dict[str, Tuple[ModuleInfo, int]] = {}
        for module in modules:
            for (kind, _in_broker), line in self._tagged_dicts(
                module.tree, "kind"
            ).items():
                journaled.setdefault(kind, (module, line))
        if not journaled or journal is None:
            return []
        env = module_string_env(journal.tree)
        replayed: Set[str] = set()
        for node in ast.walk(journal.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not all(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            for expr in [node.left] + list(node.comparators):
                replayed.update(self._resolve(expr, env))
        findings: List[Finding] = []
        for kind in sorted(set(journaled) - replayed):
            module, line = journaled[kind]
            findings.append(
                self._at(
                    module,
                    line,
                    f"journal record kind {kind!r} is written by the broker "
                    f"but runner/journal.py replay never aggregates it "
                    f"(no equality comparison)",
                )
            )
        return findings

    # --------------------------------------------------------------- helpers
    def _tagged_dicts(
        self, tree: ast.Module, tag: str
    ) -> Dict[Tuple[str, bool], int]:
        """``{(literal, built-inside-Broker): first lineno}`` for every dict
        literal carrying ``tag`` as a constant-string key."""
        found: Dict[Tuple[str, bool], int] = {}

        def visit(node: ast.AST, in_broker: bool) -> None:
            for child in ast.iter_child_nodes(node):
                child_in_broker = in_broker
                if isinstance(child, ast.ClassDef):
                    child_in_broker = child.name in self.BROKER_CLASSES
                elif isinstance(child, ast.Dict):
                    for key, value in zip(child.keys, child.values):
                        if (
                            isinstance(key, ast.Constant)
                            and key.value == tag
                            and isinstance(value, ast.Constant)
                            and isinstance(value.value, str)
                        ):
                            found.setdefault((value.value, in_broker), child.lineno)
                visit(child, child_in_broker)

        visit(tree, False)
        return found

    def _compared_strings(
        self, tree: ast.Module, env: Dict[str, List[str]]
    ) -> Set[Tuple[str, bool]]:
        """``(literal, compared-inside-Broker)`` for every string that appears
        in a comparison (``==``, ``!=``, ``in``, ``not in``)."""
        found: Set[Tuple[str, bool]] = set()

        def visit(node: ast.AST, in_broker: bool) -> None:
            for child in ast.iter_child_nodes(node):
                child_in_broker = in_broker
                if isinstance(child, ast.ClassDef):
                    child_in_broker = child.name in self.BROKER_CLASSES
                elif isinstance(child, ast.Compare):
                    for expr in [child.left] + list(child.comparators):
                        for literal in self._resolve(expr, env):
                            found.add((literal, in_broker))
                visit(child, child_in_broker)

        visit(tree, False)
        return found

    def _resolve(self, expr: ast.expr, env: Dict[str, List[str]]) -> List[str]:
        values = str_constants(expr)
        if values:
            return values
        if isinstance(expr, ast.Name):
            return env.get(expr.id, [])
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            resolved: List[str] = []
            for element in expr.elts:
                resolved.extend(self._resolve(element, env))
            return resolved
        return []

    def _at(self, module: ModuleInfo, lineno: int, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=module.display,
            rel=module.rel,
            line=lineno,
            column=1,
            message=message,
            severity=self.severity,
            fix_hint=self.fix_hint,
        )
