"""ERR001/SLOT001: library-wide API contracts.

ERR001 enforces the :mod:`repro.errors` contract — every error the library
raises derives from :class:`~repro.errors.ReproError` so callers can catch
library failures without masking programming errors.  SLOT001 catches
assignments to attributes a ``__slots__`` class never declared, which raise
``AttributeError`` at runtime on exactly the path that exercises them.
"""

from __future__ import annotations

import ast
import builtins
from typing import Dict, Iterable, List, Optional, Set

from repro.lint.engine import Finding, ModuleInfo, Rule, class_slots


def _repro_error_names() -> Set[str]:
    """Names of every class in the ReproError hierarchy, via live introspection
    so the rule tracks :mod:`repro.errors` without a parallel hand-kept list."""
    from repro.errors import ReproError

    names: Set[str] = set()
    stack: List[type] = [ReproError]
    while stack:
        cls = stack.pop()
        if cls.__name__ in names:
            continue
        names.add(cls.__name__)
        stack.extend(cls.__subclasses__())
    return names


_BUILTIN_EXCEPTIONS = frozenset(
    name
    for name, obj in vars(builtins).items()
    if isinstance(obj, type) and issubclass(obj, BaseException)
)

#: Builtins with a sanctioned idiomatic meaning that is *not* "library error":
#: abstract methods, iterator/generator protocol, interpreter control flow.
_IDIOMATIC_RAISES = frozenset(
    {
        "NotImplementedError",
        "StopIteration",
        "StopAsyncIteration",
        "GeneratorExit",
        "KeyboardInterrupt",
        "SystemExit",
    }
)


class Err001ErrorHierarchy(Rule):
    """``raise`` of an exception type outside the ReproError hierarchy."""

    id = "ERR001"
    title = "raise outside the ReproError hierarchy"
    fix_hint = (
        "raise a ReproError subclass from repro.errors (ConfigurationError, "
        "SimulationError, ...); for deliberate control-flow signals add "
        "`# repro: noqa[ERR001] -- <why>`"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        allowed = _repro_error_names()
        local_allowed, local_outside = self._local_classes(module.tree, allowed)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = self._raised_name(node.exc)
            if name is None:
                continue
            if name in allowed or name in local_allowed:
                continue
            if name in local_outside:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"raise of {name}, defined outside the ReproError "
                        f"hierarchy; derive it from ReproError in errors.py",
                    )
                )
            elif name in _BUILTIN_EXCEPTIONS and name not in _IDIOMATIC_RAISES:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"raise of builtin {name}; library errors must derive "
                        f"from ReproError so callers can catch them as a family",
                    )
                )
        return findings

    def _raised_name(self, exc: ast.expr) -> Optional[str]:
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name):
            return exc.id
        return None

    def _local_classes(self, tree: ast.Module, allowed: Set[str]):
        """Module-defined exception classes, split into (derives-from-allowed,
        exception-but-outside-hierarchy).  Resolved transitively in definition
        order; classes with unresolvable bases are ignored."""
        local_allowed: Set[str] = set()
        local_outside: Set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = [
                base.id if isinstance(base, ast.Name) else base.attr
                for base in node.bases
                if isinstance(base, (ast.Name, ast.Attribute))
            ]
            if any(name in allowed or name in local_allowed for name in base_names):
                local_allowed.add(node.name)
            elif any(
                name in local_outside
                or (name in _BUILTIN_EXCEPTIONS and name not in {"Warning"})
                for name in base_names
            ):
                # Warning subclasses are emitted via warnings.warn, not raised;
                # treat them as outside only if actually raised.
                local_outside.add(node.name)
        return local_allowed, local_outside


class Slot001UndeclaredSlot(Rule):
    """Assignment to ``self.X`` not declared in the class's ``__slots__``."""

    id = "SLOT001"
    title = "assignment to an undeclared __slots__ attribute"
    fix_hint = "declare the attribute in __slots__ (slotted instances have no __dict__)"

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        slots_by_class: Dict[str, Optional[List[str]]] = {}
        class_nodes: Dict[str, ast.ClassDef] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                class_nodes[node.name] = node
                slots_by_class[node.name] = class_slots(node)

        findings: List[Finding] = []
        for name, node in class_nodes.items():
            writable = self._writable_names(name, class_nodes, slots_by_class)
            if writable is None:
                continue
            findings.extend(self._check_class(module, node, writable))
        return findings

    def _writable_names(
        self,
        name: str,
        class_nodes: Dict[str, ast.ClassDef],
        slots_by_class: Dict[str, Optional[List[str]]],
        _seen: Optional[Set[str]] = None,
    ) -> Optional[Set[str]]:
        """The full writable attribute set for a slotted class, or ``None``
        when the class is not fully slotted (has __dict__, or an unresolvable
        or unslotted base makes the writable surface unknowable)."""
        seen = _seen or set()
        if name in seen:
            return None
        seen.add(name)
        slots = slots_by_class.get(name)
        if slots is None or "__dict__" in slots:
            return None
        writable = set(slots)
        node = class_nodes[name]
        for base in node.bases:
            if isinstance(base, ast.Name):
                if base.id == "object":
                    continue
                if base.id not in class_nodes:
                    return None
                inherited = self._writable_names(
                    base.id, class_nodes, slots_by_class, seen
                )
                if inherited is None:
                    return None
                writable |= inherited
            else:
                return None
        return writable

    def _check_class(
        self, module: ModuleInfo, node: ast.ClassDef, writable: Set[str]
    ) -> Iterable[Finding]:
        allowed = set(writable) | self._descriptor_names(node)
        findings: List[Finding] = []
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if self._is_class_or_static(item) or not item.args.args:
                continue
            self_name = item.args.args[0].arg
            for inner in ast.walk(item):
                targets: List[ast.expr] = []
                if isinstance(inner, ast.Assign):
                    targets = list(inner.targets)
                elif isinstance(inner, (ast.AnnAssign, ast.AugAssign)):
                    targets = [inner.target]
                for target in self._flatten(targets):
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == self_name
                        and target.attr not in allowed
                    ):
                        findings.append(
                            self.finding(
                                module,
                                target,
                                f"assignment to self.{target.attr}, which is "
                                f"not declared in {node.name}.__slots__; this "
                                f"raises AttributeError at runtime",
                            )
                        )
        return findings

    def _descriptor_names(self, node: ast.ClassDef) -> Set[str]:
        """Property names (``self.p = ...`` goes through the setter)."""
        names: Set[str] = set()
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for decorator in item.decorator_list:
                    if isinstance(decorator, ast.Name) and decorator.id == "property":
                        names.add(item.name)
                    elif isinstance(decorator, ast.Attribute) and decorator.attr in {
                        "setter",
                        "deleter",
                    }:
                        names.add(item.name)
        return names

    def _is_class_or_static(self, item: ast.AST) -> bool:
        for decorator in getattr(item, "decorator_list", []):
            if isinstance(decorator, ast.Name) and decorator.id in {
                "classmethod",
                "staticmethod",
            }:
                return True
        return False

    def _flatten(self, targets: List[ast.expr]) -> Iterable[ast.expr]:
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                yield from self._flatten(list(target.elts))
            else:
                yield target
