"""The rule battery for ``repro lint``."""

from __future__ import annotations

from typing import Tuple

from repro.lint.engine import Rule
from repro.lint.rules.contracts import Err001ErrorHierarchy, Slot001UndeclaredSlot
from repro.lint.rules.determinism import Det001AmbientEntropy, Det002UnorderedIteration
from repro.lint.rules.protocol import Proto001ProtocolClosure
from repro.lint.rules.snapshots import (
    Snap001SnapshotCompleteness,
    Snap002FrameLocalsPlainData,
)


def default_rules() -> Tuple[Rule, ...]:
    """One fresh instance of every shipped rule, in catalog order."""
    return (
        Det001AmbientEntropy(),
        Det002UnorderedIteration(),
        Snap001SnapshotCompleteness(),
        Snap002FrameLocalsPlainData(),
        Proto001ProtocolClosure(),
        Err001ErrorHierarchy(),
        Slot001UndeclaredSlot(),
    )


__all__ = [
    "default_rules",
    "Det001AmbientEntropy",
    "Det002UnorderedIteration",
    "Snap001SnapshotCompleteness",
    "Snap002FrameLocalsPlainData",
    "Proto001ProtocolClosure",
    "Err001ErrorHierarchy",
    "Slot001UndeclaredSlot",
]
