"""SNAP001/SNAP002: snapshot-completeness and frame-serializability drift.

Checkpoint/restore (PR 6) verifies a restored machine bit-for-bit against a
captured *native state*; that capture is a hand-maintained list.  A new
mutable attribute on :class:`Simulator` or :class:`Manycore` that nobody adds
to the capture silently weakens `_verify_native` until a restore diverges in
production.  SNAP001 turns that drift into a lint failure at the moment the
attribute is introduced: every ``__init__`` attribute must either be captured
or appear in the rule's exemption table with a reason.  It also checks the v2
thread-frame fields: every slot of :class:`~repro.cpu.frames.Frame` must be
read by ``snapshot/native.py:_capture_thread``.

SNAP002 enforces the frame-serializability contract documented in
:mod:`repro.cpu.frames`: everything stored in ``Frame.locals`` must be plain
data (ints, floats, strings, bools, None, Predicate records, and
tuples/lists thereof).  Lambdas, generators, sets, and dicts stored in a
frame local only blow up later, at the first native capture of that thread —
this rule rejects them where they are written, including in the locals
templates passed to ``Call(...)`` and ``FrameBody(...)``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import (
    Finding,
    ModuleInfo,
    ModuleWalker,
    ProjectRule,
    Rule,
    class_slots,
    find_class,
    find_method,
    init_self_attributes,
)


def _norm(name: str) -> str:
    return name.lstrip("_")


class Snap001SnapshotCompleteness(ProjectRule):
    id = "SNAP001"
    title = "snapshot capture out of sync with machine state"
    fix_hint = (
        "capture the new attribute in engine.checkpoint_state() / "
        "snapshot/execution.py:_native_state(), or exempt it in "
        "lint/rules/snapshots.py with a reason"
    )

    #: Simulator.__init__ attributes deliberately not in checkpoint_state():
    ENGINE_EXEMPT: Dict[str, str] = {
        "_queue": "live callbacks (bound methods, generator frames); restore "
        "reconstructs the queue by deterministic replay",
        "_running": "transient run-loop flag, always False between slices",
        "_stop": "transient stop request, always False between slices",
        "_cancelled": "covered indirectly: pending_events captures "
        "len(_queue) - _cancelled",
    }

    #: Manycore.__init__ attributes deliberately not in _native_state():
    MANYCORE_EXEMPT: Dict[str, str] = {
        "config": "validated immutable configuration; recorded in the spec",
        "tracer": "side-channel event log, not simulation state",
        "topology": "pure function of config.num_cores",
        "mesh": "rebuilt by replay; externally visible state lands in stats",
        "memory": "rebuilt by replay; externally visible state lands in stats",
        "cores": "rebuilt by replay; externally visible state lands in stats",
        "fabric": "rebuilt by replay; externally visible state lands in stats "
        "and the rng tree",
        "process_table": "rebuilt deterministically when programs respawn "
        "during replay",
        "scheduler": "rebuilt deterministically during replay",
        "programs": "workload definitions; recorded in the spec",
        "_soft_bm_next": "derived deterministically during replay",
        "_ran": "one-shot guard flag, re-armed by replay",
        "_events_start": "derived from the engine counters during replay",
        "_bm_spill_base": "pure function of config",
        "_schedule": "hot-path bound method, not state",
        "_dispatch_table": "hot-path dispatch table, not state",
        "_dispatch_get": "hot-path bound method, not state",
        "frame_routines": "build-time routine table (static sync routines + "
        "workload closures), rebuilt identically by a deterministic build",
    }

    #: Flyweight slots that are not simulation state:
    FLYWEIGHT_EXEMPT: Set[str] = {"name"}

    def check_project(
        self, modules: Sequence[ModuleInfo], walker: ModuleWalker
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        engine = walker.find(modules, "sim/engine.py")
        if engine is not None:
            findings.extend(self._check_engine(engine))
        manycore = walker.find(modules, "machine/manycore.py")
        if manycore is not None:
            execution = walker.find(list(modules) + [manycore], "snapshot/execution.py")
            findings.extend(self._check_manycore(manycore, execution))
        stats = walker.find(modules, "sim/stats.py")
        if stats is not None:
            findings.extend(self._check_flyweights(stats))
        frames = walker.find(modules, "cpu/frames.py")
        if frames is not None:
            native = walker.find(list(modules) + [frames], "snapshot/native.py")
            if native is not None:
                findings.extend(self._check_frames(frames, native))
        return findings

    # ------------------------------------------------------------- Simulator
    def _check_engine(self, module: ModuleInfo) -> List[Finding]:
        simulator = find_class(module.tree, "Simulator")
        if simulator is None:
            return []
        checkpoint = find_method(simulator, "checkpoint_state")
        attrs = init_self_attributes(simulator)
        captured = self._dict_keys(checkpoint) if checkpoint is not None else set()
        properties = {
            item.name
            for item in simulator.body
            if isinstance(item, ast.FunctionDef)
            and any(
                isinstance(d, ast.Name) and d.id == "property"
                for d in item.decorator_list
            )
        }
        findings: List[Finding] = []
        captured_norm = {_norm(key) for key in captured}
        for attr, lineno in sorted(attrs.items()):
            if _norm(attr) in captured_norm or attr in self.ENGINE_EXEMPT:
                continue
            findings.append(
                self._at(
                    module,
                    lineno,
                    f"Simulator.__init__ assigns self.{attr} but "
                    f"checkpoint_state() does not capture it; restored "
                    f"simulations would silently lose it",
                )
            )
        known_norm = {_norm(a) for a in attrs} | {_norm(p) for p in properties}
        for key in sorted(captured):
            if _norm(key) not in known_norm:
                findings.append(
                    self._at(
                        module,
                        checkpoint.lineno if checkpoint is not None else 0,
                        f"checkpoint_state() captures {key!r}, which is not an "
                        f"attribute or property of Simulator (stale capture)",
                    )
                )
        return findings

    # -------------------------------------------------------------- Manycore
    def _check_manycore(
        self, module: ModuleInfo, execution: Optional[ModuleInfo]
    ) -> List[Finding]:
        manycore = find_class(module.tree, "Manycore")
        if manycore is None or execution is None:
            return []
        native_state = None
        for node in ast.walk(execution.tree):
            if isinstance(node, ast.FunctionDef) and node.name == "_native_state":
                native_state = node
                break
        captured: Set[str] = set()
        if native_state is not None:
            for node in ast.walk(native_state):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "machine"
                ):
                    captured.add(node.attr)
        findings: List[Finding] = []
        captured_norm = {_norm(name) for name in captured}
        for attr, lineno in sorted(init_self_attributes(manycore).items()):
            if _norm(attr) in captured_norm or attr in self.MANYCORE_EXEMPT:
                continue
            findings.append(
                self._at(
                    module,
                    lineno,
                    f"Manycore.__init__ assigns self.{attr} but "
                    f"snapshot/execution.py:_native_state() does not capture "
                    f"it; checkpoints would silently omit it",
                )
            )
        return findings

    # ------------------------------------------------------------ flyweights
    def _check_flyweights(self, module: ModuleInfo) -> List[Finding]:
        registry = find_class(module.tree, "StatsRegistry")
        to_dict = find_method(registry, "to_dict") if registry is not None else None
        if to_dict is None:
            return []
        serialized = {
            node.attr for node in ast.walk(to_dict) if isinstance(node, ast.Attribute)
        }
        findings: List[Finding] = []
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            slots = class_slots(node)
            if not slots:
                continue
            for slot in slots:
                if slot in self.FLYWEIGHT_EXEMPT or slot.startswith("_"):
                    continue  # identity / derived caches, rebuilt on demand
                if slot not in serialized:
                    findings.append(
                        self._at(
                            module,
                            node.lineno,
                            f"{node.name}.__slots__ declares {slot!r} but "
                            f"StatsRegistry.to_dict() never serializes it; "
                            f"snapshots would silently drop it",
                        )
                    )
        return findings

    # --------------------------------------------------------- thread frames
    def _check_frames(
        self, frames: ModuleInfo, native: ModuleInfo
    ) -> List[Finding]:
        frame_class = find_class(frames.tree, "Frame")
        if frame_class is None:
            return []
        slots = class_slots(frame_class)
        capture = None
        for node in ast.walk(native.tree):
            if isinstance(node, ast.FunctionDef) and node.name == "_capture_thread":
                capture = node
                break
        if capture is None:
            return []
        captured: Set[str] = set()
        for node in ast.walk(capture):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "frame"
            ):
                captured.add(node.attr)
        findings: List[Finding] = []
        for slot in sorted(slots):
            if slot in captured:
                continue
            findings.append(
                self._at(
                    frames,
                    frame_class.lineno,
                    f"Frame.__slots__ declares {slot!r} but "
                    f"snapshot/native.py:_capture_thread() never reads "
                    f"frame.{slot}; native thread captures would silently "
                    f"drop it",
                )
            )
        return findings

    # --------------------------------------------------------------- helpers
    def _dict_keys(self, function: ast.FunctionDef) -> Set[str]:
        keys: Set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        keys.add(key.value)
        return keys

    def _at(self, module: ModuleInfo, lineno: int, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=module.display,
            rel=module.rel,
            line=lineno,
            column=1,
            message=message,
            severity=self.severity,
            fix_hint=self.fix_hint,
        )


class Snap002FrameLocalsPlainData(Rule):
    """Frame locals must hold plain data, checked where they are written."""

    id = "SNAP002"
    title = "frame local holds non-serializable data"
    fix_hint = (
        "store only ints, floats, strings, bools, None, Predicate records, "
        "and tuples/lists of those in frame locals; unpack composite results "
        "inside the step and rebuild derived structures on demand"
    )

    #: Frame constructors whose second positional argument is a locals
    #: template that restore round-trips through JSON.
    TEMPLATE_CALLS = ("Call", "FrameBody")

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.FunctionDef) and self._takes_frame(node):
                findings.extend(self._check_step(module, node))
        findings.extend(self._check_templates(module))
        return findings

    # ------------------------------------------------------- step functions
    def _takes_frame(self, func: ast.FunctionDef) -> bool:
        args = func.args
        every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        return any(arg.arg == "frame" for arg in every)

    def _check_step(self, module: ModuleInfo, func: ast.FunctionDef) -> List[Finding]:
        aliases = self._locals_aliases(func)
        findings: List[Finding] = []
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Assign):
                pairs = []
                for target in stmt.targets:
                    pairs.extend(self._store_pairs(target, stmt.value))
            elif isinstance(stmt, ast.AugAssign):
                pairs = list(self._store_pairs(stmt.target, stmt.value))
            else:
                continue
            for target, value in pairs:
                if not self._is_locals_store(target, aliases):
                    continue
                reason = self._bad_value(value)
                if reason is None:
                    continue
                findings.append(
                    self.finding(
                        module,
                        value,
                        f"{func.name}: frame local {self._key_repr(target)} is "
                        f"assigned {reason}; frame locals must be plain data "
                        f"so native snapshots can capture the frame",
                    )
                )
        return findings

    def _locals_aliases(self, func: ast.FunctionDef) -> Set[str]:
        """Names bound to ``frame.locals`` anywhere in the step."""
        aliases: Set[str] = set()
        for stmt in ast.walk(func):
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                self._collect_aliases(target, stmt.value, aliases)
        return aliases

    def _collect_aliases(
        self, target: ast.expr, value: ast.expr, aliases: Set[str]
    ) -> None:
        if isinstance(target, ast.Name) and self._is_frame_locals(value):
            aliases.add(target.id)
            return
        if (
            isinstance(target, (ast.Tuple, ast.List))
            and isinstance(value, (ast.Tuple, ast.List))
            and len(target.elts) == len(value.elts)
        ):
            for t, v in zip(target.elts, value.elts):
                self._collect_aliases(t, v, aliases)

    def _is_frame_locals(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "locals"
            and isinstance(node.value, ast.Name)
            and node.value.id == "frame"
        )

    def _store_pairs(
        self, target: ast.expr, value: ast.expr
    ) -> Iterator[Tuple[ast.expr, ast.expr]]:
        """(subscript-target, assigned-expression) pairs for one statement."""
        if isinstance(target, ast.Subscript):
            yield target, value
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and len(target.elts) == len(
                value.elts
            ):
                for t, v in zip(target.elts, value.elts):
                    yield from self._store_pairs(t, v)
            else:
                # Unmatched unpack: pair each element with the whole value,
                # which only ever flags literal bad expressions.
                for t in target.elts:
                    yield from self._store_pairs(t, value)

    def _is_locals_store(self, target: ast.expr, aliases: Set[str]) -> bool:
        if not isinstance(target, ast.Subscript):
            return False
        base = target.value
        if isinstance(base, ast.Name):
            return base.id in aliases
        return self._is_frame_locals(base)

    def _key_repr(self, target: ast.Subscript) -> str:
        key = target.slice
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            return repr(key.value)
        return "(dynamic key)"

    # ------------------------------------------------------ locals templates
    def _check_templates(self, module: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self.TEMPLATE_CALLS
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Dict)
            ):
                continue
            template = node.args[1]
            for key in template.keys:
                if key is None:
                    continue
                if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"{node.func.id}(...) locals template key must be "
                            f"a string constant; non-string keys do not "
                            f"survive the snapshot JSON round trip",
                        )
                    )
            for value in template.values:
                reason = self._bad_value(value)
                if reason is None:
                    continue
                findings.append(
                    self.finding(
                        module,
                        value,
                        f"{node.func.id}(...) locals template holds {reason}; "
                        f"frame locals must be plain data so native "
                        f"snapshots can capture the frame",
                    )
                )
        return findings

    # ---------------------------------------------------------------- values
    def _bad_value(self, expr: ast.expr) -> Optional[str]:
        """Why ``expr`` cannot live in frame locals, or None if it can."""
        if isinstance(expr, ast.Lambda):
            return "a lambda (live code, not serializable)"
        if isinstance(expr, ast.GeneratorExp):
            return "a generator expression (live frame, not serializable)"
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return "a set (unordered; not capturable by _encode_value)"
        if isinstance(expr, (ast.Dict, ast.DictComp)):
            return "a dict (not capturable as a frame-local value)"
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in ("set", "frozenset", "dict")
        ):
            return f"a {expr.func.id}() (not capturable by _encode_value)"
        if isinstance(expr, (ast.Tuple, ast.List)):
            for element in expr.elts:
                reason = self._bad_value(element)
                if reason is not None:
                    return reason
        return None
