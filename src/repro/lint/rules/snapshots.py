"""SNAP001: snapshot-completeness drift.

Checkpoint/restore (PR 6) verifies a restored machine bit-for-bit against a
captured *native state*; that capture is a hand-maintained list.  A new
mutable attribute on :class:`Simulator` or :class:`Manycore` that nobody adds
to the capture silently weakens `_verify_native` until a restore diverges in
production.  This rule turns that drift into a lint failure at the moment the
attribute is introduced: every ``__init__`` attribute must either be captured
or appear in the rule's exemption table with a reason.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.lint.engine import (
    Finding,
    ModuleInfo,
    ModuleWalker,
    ProjectRule,
    class_slots,
    find_class,
    find_method,
    init_self_attributes,
)


def _norm(name: str) -> str:
    return name.lstrip("_")


class Snap001SnapshotCompleteness(ProjectRule):
    id = "SNAP001"
    title = "snapshot capture out of sync with machine state"
    fix_hint = (
        "capture the new attribute in engine.checkpoint_state() / "
        "snapshot/execution.py:_native_state(), or exempt it in "
        "lint/rules/snapshots.py with a reason"
    )

    #: Simulator.__init__ attributes deliberately not in checkpoint_state():
    ENGINE_EXEMPT: Dict[str, str] = {
        "_queue": "live callbacks (bound methods, generator frames); restore "
        "reconstructs the queue by deterministic replay",
        "_running": "transient run-loop flag, always False between slices",
        "_stop": "transient stop request, always False between slices",
        "_cancelled": "covered indirectly: pending_events captures "
        "len(_queue) - _cancelled",
    }

    #: Manycore.__init__ attributes deliberately not in _native_state():
    MANYCORE_EXEMPT: Dict[str, str] = {
        "config": "validated immutable configuration; recorded in the spec",
        "tracer": "side-channel event log, not simulation state",
        "topology": "pure function of config.num_cores",
        "mesh": "rebuilt by replay; externally visible state lands in stats",
        "memory": "rebuilt by replay; externally visible state lands in stats",
        "cores": "rebuilt by replay; externally visible state lands in stats",
        "fabric": "rebuilt by replay; externally visible state lands in stats "
        "and the rng tree",
        "process_table": "rebuilt deterministically when programs respawn "
        "during replay",
        "scheduler": "rebuilt deterministically during replay",
        "programs": "workload definitions; recorded in the spec",
        "_soft_bm_next": "derived deterministically during replay",
        "_ran": "one-shot guard flag, re-armed by replay",
        "_events_start": "derived from the engine counters during replay",
        "_bm_spill_base": "pure function of config",
        "_schedule": "hot-path bound method, not state",
        "_dispatch_table": "hot-path dispatch table, not state",
        "_dispatch_get": "hot-path bound method, not state",
    }

    #: Flyweight slots that are not simulation state:
    FLYWEIGHT_EXEMPT: Set[str] = {"name"}

    def check_project(
        self, modules: Sequence[ModuleInfo], walker: ModuleWalker
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        engine = walker.find(modules, "sim/engine.py")
        if engine is not None:
            findings.extend(self._check_engine(engine))
        manycore = walker.find(modules, "machine/manycore.py")
        if manycore is not None:
            execution = walker.find(list(modules) + [manycore], "snapshot/execution.py")
            findings.extend(self._check_manycore(manycore, execution))
        stats = walker.find(modules, "sim/stats.py")
        if stats is not None:
            findings.extend(self._check_flyweights(stats))
        return findings

    # ------------------------------------------------------------- Simulator
    def _check_engine(self, module: ModuleInfo) -> List[Finding]:
        simulator = find_class(module.tree, "Simulator")
        if simulator is None:
            return []
        checkpoint = find_method(simulator, "checkpoint_state")
        attrs = init_self_attributes(simulator)
        captured = self._dict_keys(checkpoint) if checkpoint is not None else set()
        properties = {
            item.name
            for item in simulator.body
            if isinstance(item, ast.FunctionDef)
            and any(
                isinstance(d, ast.Name) and d.id == "property"
                for d in item.decorator_list
            )
        }
        findings: List[Finding] = []
        captured_norm = {_norm(key) for key in captured}
        for attr, lineno in sorted(attrs.items()):
            if _norm(attr) in captured_norm or attr in self.ENGINE_EXEMPT:
                continue
            findings.append(
                self._at(
                    module,
                    lineno,
                    f"Simulator.__init__ assigns self.{attr} but "
                    f"checkpoint_state() does not capture it; restored "
                    f"simulations would silently lose it",
                )
            )
        known_norm = {_norm(a) for a in attrs} | {_norm(p) for p in properties}
        for key in sorted(captured):
            if _norm(key) not in known_norm:
                findings.append(
                    self._at(
                        module,
                        checkpoint.lineno if checkpoint is not None else 0,
                        f"checkpoint_state() captures {key!r}, which is not an "
                        f"attribute or property of Simulator (stale capture)",
                    )
                )
        return findings

    # -------------------------------------------------------------- Manycore
    def _check_manycore(
        self, module: ModuleInfo, execution: Optional[ModuleInfo]
    ) -> List[Finding]:
        manycore = find_class(module.tree, "Manycore")
        if manycore is None or execution is None:
            return []
        native_state = None
        for node in ast.walk(execution.tree):
            if isinstance(node, ast.FunctionDef) and node.name == "_native_state":
                native_state = node
                break
        captured: Set[str] = set()
        if native_state is not None:
            for node in ast.walk(native_state):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "machine"
                ):
                    captured.add(node.attr)
        findings: List[Finding] = []
        captured_norm = {_norm(name) for name in captured}
        for attr, lineno in sorted(init_self_attributes(manycore).items()):
            if _norm(attr) in captured_norm or attr in self.MANYCORE_EXEMPT:
                continue
            findings.append(
                self._at(
                    module,
                    lineno,
                    f"Manycore.__init__ assigns self.{attr} but "
                    f"snapshot/execution.py:_native_state() does not capture "
                    f"it; checkpoints would silently omit it",
                )
            )
        return findings

    # ------------------------------------------------------------ flyweights
    def _check_flyweights(self, module: ModuleInfo) -> List[Finding]:
        registry = find_class(module.tree, "StatsRegistry")
        to_dict = find_method(registry, "to_dict") if registry is not None else None
        if to_dict is None:
            return []
        serialized = {
            node.attr for node in ast.walk(to_dict) if isinstance(node, ast.Attribute)
        }
        findings: List[Finding] = []
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            slots = class_slots(node)
            if not slots:
                continue
            for slot in slots:
                if slot in self.FLYWEIGHT_EXEMPT or slot.startswith("_"):
                    continue  # identity / derived caches, rebuilt on demand
                if slot not in serialized:
                    findings.append(
                        self._at(
                            module,
                            node.lineno,
                            f"{node.name}.__slots__ declares {slot!r} but "
                            f"StatsRegistry.to_dict() never serializes it; "
                            f"snapshots would silently drop it",
                        )
                    )
        return findings

    # --------------------------------------------------------------- helpers
    def _dict_keys(self, function: ast.FunctionDef) -> Set[str]:
        keys: Set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        keys.add(key.value)
        return keys

    def _at(self, module: ModuleInfo, lineno: int, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=module.display,
            rel=module.rel,
            line=lineno,
            column=1,
            message=message,
            severity=self.severity,
            fix_hint=self.fix_hint,
        )
