"""DET001/DET002: sources of nondeterminism inside sim-core code.

The whole reproduction rests on one contract: a simulation is a pure function
of (spec, seed).  Distributed sweeps, checkpoint restore, and chaos recovery
are all verified *bit-identical* against serial runs, so any ambient entropy
inside the simulated machine — wall-clock reads, process-global RNG, hash-
order iteration — eventually surfaces as an unattributable golden diff.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.lint.engine import (
    Finding,
    ModuleInfo,
    Rule,
    SCOPE_SIM_CORE,
    dotted_name,
)

_WALL_CLOCK = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
)
_UUID_FNS = frozenset({"uuid1", "uuid3", "uuid4"})
_DATETIME_METHODS = frozenset({"now", "utcnow", "today"})
_TRACKED_MODULES = frozenset({"random", "os", "time", "uuid", "datetime", "secrets"})


class Det001AmbientEntropy(Rule):
    """Direct use of process-global randomness or wall-clock time in sim-core."""

    id = "DET001"
    title = "ambient entropy in sim-core code"
    scope = SCOPE_SIM_CORE
    fix_hint = (
        "route randomness through a named DeterministicRng stream "
        "(machine.rng.child(...)) and time through the engine clock "
        "(Simulator.now); host-side infrastructure belongs outside sim-core "
        "packages"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        aliases: Dict[str, str] = {}  # local name -> real module ("random", ...)
        direct: Dict[str, str] = {}  # local name -> qualified banned callable
        datetime_classes: Set[str] = set()  # local aliases of datetime.datetime

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".", 1)[0]
                    if root in _TRACKED_MODULES:
                        aliases[alias.asname or root] = root
            elif isinstance(node, ast.ImportFrom) and node.module:
                root = node.module.split(".", 1)[0]
                for alias in node.names:
                    local = alias.asname or alias.name
                    if root == "random" or root == "secrets":
                        direct[local] = f"{root}.{alias.name}"
                    elif root == "os" and alias.name == "urandom":
                        direct[local] = "os.urandom"
                    elif root == "uuid" and alias.name in _UUID_FNS:
                        direct[local] = f"uuid.{alias.name}"
                    elif root == "time" and alias.name in _WALL_CLOCK:
                        direct[local] = f"time.{alias.name}"
                    elif root == "datetime" and alias.name == "datetime":
                        datetime_classes.add(local)

        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            banned = self._banned_call(node.func, aliases, direct, datetime_classes)
            if banned is not None:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"call to {banned}() in sim-core code; results would "
                        f"no longer be a pure function of (spec, seed)",
                    )
                )
        return findings

    def _banned_call(
        self,
        func: ast.expr,
        aliases: Dict[str, str],
        direct: Dict[str, str],
        datetime_classes: Set[str],
    ) -> Optional[str]:
        if isinstance(func, ast.Name):
            return direct.get(func.id)
        dotted = dotted_name(func)
        if dotted is None or "." not in dotted:
            return None
        head, _, rest = dotted.partition(".")
        if head in datetime_classes and rest in _DATETIME_METHODS:
            return f"datetime.{rest}"
        real = aliases.get(head)
        if real is None:
            return None
        if real == "random":
            return f"random.{rest}"
        if real == "secrets":
            return f"secrets.{rest}"
        if real == "os" and rest == "urandom":
            return "os.urandom"
        if real == "uuid" and rest in _UUID_FNS:
            return f"uuid.{rest}"
        if real == "time" and rest in _WALL_CLOCK:
            return f"time.{rest}"
        if real == "datetime":
            # datetime.datetime.now / datetime.date.today
            parts = rest.split(".")
            if len(parts) == 2 and parts[0] in {"datetime", "date"} and parts[1] in _DATETIME_METHODS:
                return f"datetime.{parts[0]}.{parts[1]}"
        return None


class Det002UnorderedIteration(Rule):
    """Iteration over bare sets (hash order) in sim-core code.

    CPython set iteration order depends on the hash function — randomized per
    process for str/bytes — so a ``for x in some_set`` whose body schedules
    events or accumulates stats silently breaks cross-process bit-identity.
    Dict views are insertion-ordered (deterministic), so they are flagged only
    inside functions that schedule events, where iteration order becomes event
    order.
    """

    id = "DET002"
    title = "iteration over an unordered collection in sim-core code"
    scope = SCOPE_SIM_CORE
    fix_hint = (
        "wrap the iterable in sorted(...) or keep an explicitly ordered "
        "structure (list, insertion-ordered dict); if the element order is "
        "provably deterministic, add `# repro: noqa[DET002] -- <why>`"
    )

    _VIEW_METHODS = frozenset({"keys", "values", "items"})
    _SET_RETURNING_METHODS = frozenset(
        {"copy", "union", "intersection", "difference", "symmetric_difference"}
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        for class_node, function in self._functions(module.tree):
            set_attrs = self._set_attributes(class_node) if class_node else set()
            set_locals = self._set_locals(function)
            schedules = self._schedules_events(function)
            for iter_node, owner in self._iteration_sites(function):
                if self._is_set_valued(iter_node, set_locals, set_attrs):
                    findings.append(
                        self.finding(
                            module,
                            owner,
                            "iteration over a bare set: element order depends "
                            "on the process hash seed, not on simulation state",
                        )
                    )
                elif schedules and self._is_dict_view(iter_node):
                    findings.append(
                        self.finding(
                            module,
                            owner,
                            "iteration over a dict view in an event-scheduling "
                            "function: iteration order becomes event order; "
                            "sort explicitly",
                        )
                    )
        return findings

    # ------------------------------------------------------------ structure
    def _functions(self, tree: ast.Module):
        """(enclosing class or None, function) pairs, covering nesting."""
        pairs = []

        def visit(node: ast.AST, class_node: Optional[ast.ClassDef]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    visit(child, child)
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    pairs.append((class_node, child))
                    visit(child, class_node)
                else:
                    visit(child, class_node)

        visit(tree, None)
        return pairs

    def _set_attributes(self, class_node: ast.ClassDef) -> Set[str]:
        """Instance attributes that hold sets: assigned set expressions in any
        method, or class-level ``X: Set[...]`` annotations (dataclass fields)."""
        attrs: Set[str] = set()
        for item in class_node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                if self._is_set_annotation(item.annotation):
                    attrs.add(item.target.id)
        for node in ast.walk(class_node):
            if isinstance(node, ast.Assign):
                if self._is_set_expression(node.value, set(), set()):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            attrs.add(target.attr)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target = node.target
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and (
                        self._is_set_annotation(node.annotation)
                        or self._is_set_expression(node.value, set(), set())
                    )
                ):
                    attrs.add(target.attr)
        return attrs

    def _is_set_annotation(self, annotation: ast.expr) -> bool:
        if isinstance(annotation, ast.Name):
            return annotation.id in {"set", "frozenset", "Set", "FrozenSet", "MutableSet"}
        if isinstance(annotation, ast.Subscript):
            return self._is_set_annotation(annotation.value)
        if isinstance(annotation, ast.Attribute):
            return annotation.attr in {"Set", "FrozenSet", "MutableSet"}
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            head = annotation.value.split("[", 1)[0].strip()
            return head in {"set", "frozenset", "Set", "FrozenSet", "MutableSet"}
        return False

    def _set_locals(self, function: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and self._is_set_expression(
                node.value, names, set()
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if self._is_set_annotation(node.annotation):
                    names.add(node.target.id)
        args = getattr(function, "args", None)
        if args is not None:
            for arg in list(args.args) + list(args.kwonlyargs):
                if arg.annotation is not None and self._is_set_annotation(arg.annotation):
                    names.add(arg.arg)
        return names

    def _schedules_events(self, function: ast.AST) -> bool:
        for node in ast.walk(function):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in {"schedule", "schedule_at"}:
                    return True
        return False

    def _iteration_sites(self, function: ast.AST):
        """(iterable expression, node to report) pairs inside ``function``,
        excluding nested function bodies (they are visited separately)."""
        sites = []

        def visit(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    continue
                if isinstance(child, (ast.For, ast.AsyncFor)):
                    sites.append((child.iter, child))
                elif isinstance(
                    child, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    for generator in child.generators:
                        sites.append((generator.iter, child))
                visit(child)

        visit(function)
        return sites

    # --------------------------------------------------------------- typing
    def _is_set_valued(
        self, node: ast.expr, set_locals: Set[str], set_attrs: Set[str]
    ) -> bool:
        """Does ``node`` evaluate to a set — or to a list/tuple that merely
        materializes a set's hash order (``list(some_set)``)?"""
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in {"list", "tuple", "iter", "reversed"} and len(node.args) == 1:
                return self._is_set_valued(node.args[0], set_locals, set_attrs)
        return self._is_set_expression(node, set_locals, set_attrs)

    def _is_set_expression(
        self, node: ast.expr, set_locals: Set[str], set_attrs: Set[str]
    ) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_locals
        if isinstance(node, ast.Attribute):
            return (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in set_attrs
            )
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expression(
                node.left, set_locals, set_attrs
            ) or self._is_set_expression(node.right, set_locals, set_attrs)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
                return True
            if isinstance(func, ast.Attribute):
                if func.attr in self._SET_RETURNING_METHODS:
                    return self._is_set_expression(func.value, set_locals, set_attrs)
                if func.attr == "get" and len(node.args) == 2:
                    return self._is_set_expression(node.args[1], set_locals, set_attrs)
        return False

    def _is_dict_view(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self._VIEW_METHODS
            and not node.args
        )
