"""Static analysis for the determinism & contract rules of the reproduction.

Every guarantee the repo makes — golden-pinned figures, distributed sweeps
bit-identical to serial, snapshot restore verified bit-for-bit, chaos
recovery identical to baseline — rests on contracts nothing used to check
statically.  ``repro lint`` walks the AST and fails fast on:

==========  ==============================================================
DET001      ambient entropy (``random``/``os.urandom``/``uuid4``/wall
            clock) inside sim-core packages
DET002      iteration over bare sets / dict views where order leaks into
            event order or stats
SNAP001     machine attributes missing from the checkpoint capture lists
PROTO001    broker/worker message kinds or journal record kinds that one
            side emits and the other never handles
ERR001      ``raise`` of exception types outside the ReproError hierarchy
SLOT001     assignment to attributes missing from ``__slots__``
==========  ==============================================================

Suppress a deliberate violation inline with ``# repro: noqa[RULE-ID] --
reason``; grandfather pre-existing findings with a baseline file
(``--baseline``).  See the README's "Static analysis" section.
"""

from __future__ import annotations

from repro.lint.engine import (
    Finding,
    LintEngine,
    ModuleInfo,
    ModuleWalker,
    ProjectRule,
    Rule,
    SCOPE_LIBRARY,
    SCOPE_PROJECT,
    SCOPE_SIM_CORE,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    SIM_CORE_PACKAGES,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.rules import default_rules

__all__ = [
    "Finding",
    "LintEngine",
    "ModuleInfo",
    "ModuleWalker",
    "ProjectRule",
    "Rule",
    "SCOPE_LIBRARY",
    "SCOPE_PROJECT",
    "SCOPE_SIM_CORE",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "SIM_CORE_PACKAGES",
    "apply_baseline",
    "default_rules",
    "load_baseline",
    "write_baseline",
]
