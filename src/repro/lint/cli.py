"""Implementation of the ``repro lint`` subcommand.

Kept out of :mod:`repro.runner.cli` so the (fast-import) CLI front end only
pays for the lint machinery when the subcommand actually runs.

Exit codes follow the CLI convention: 0 clean (or every finding suppressed /
baselined), 1 new findings, 2 usage or input errors (via :class:`LintError`
-> :class:`ReproError` handling in the front end).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, TextIO

from repro.errors import LintError
from repro.lint.engine import (
    Finding,
    LintEngine,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.rules import default_rules


def _default_paths() -> List[str]:
    """Lint the installed ``repro`` package when no paths are given."""
    import repro

    package_dir = Path(repro.__file__).parent
    return [str(package_dir)]


def _split_rule_list(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def _format_text(
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    baseline_path: Optional[str],
    stream: TextIO,
) -> None:
    last_hint = None
    for finding in new:
        stream.write(finding.format_text() + "\n")
        if finding.fix_hint and finding.fix_hint != last_hint:
            stream.write(f"    hint: {finding.fix_hint}\n")
        last_hint = finding.fix_hint
    if new:
        summary = f"{len(new)} finding{'s' if len(new) != 1 else ''}"
    else:
        summary = "clean"
    if baselined:
        summary += f" ({len(baselined)} grandfathered by {baseline_path})"
    stream.write(summary + "\n")


def _format_json(
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    rules: Sequence[str],
    stream: TextIO,
) -> None:
    counts: dict = {}
    for finding in new:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    payload = {
        "version": 1,
        "rules": list(rules),
        "findings": [finding.to_dict() for finding in new],
        "counts": counts,
        "total": len(new),
        "baselined": len(baselined),
    }
    json.dump(payload, stream, indent=2)
    stream.write("\n")


def run_lint(args, stream: Optional[TextIO] = None) -> int:
    """Entry point called by the CLI front end with the parsed namespace."""
    out = stream if stream is not None else sys.stdout
    engine = LintEngine(
        default_rules(),
        select=_split_rule_list(args.select),
        ignore=_split_rule_list(args.ignore),
    )
    if getattr(args, "list_rules", False):
        for rule in engine.rules:
            out.write(f"{rule.id}  [{rule.scope}]  {rule.title}\n")
        return 0

    paths = list(args.paths) if args.paths else _default_paths()
    findings = engine.run(paths)

    baseline_path = getattr(args, "baseline", None)
    if getattr(args, "write_baseline", False):
        if baseline_path is None:
            raise LintError("--write-baseline requires --baseline FILE")
        write_baseline(findings, Path(baseline_path))
        out.write(
            f"wrote {len(findings)} finding"
            f"{'s' if len(findings) != 1 else ''} to {baseline_path}\n"
        )
        return 0

    baselined: List[Finding] = []
    if baseline_path is not None:
        fingerprints = load_baseline(Path(baseline_path))
        findings, baselined = apply_baseline(findings, fingerprints)

    if args.format == "json":
        _format_json(findings, baselined, [rule.id for rule in engine.rules], out)
    else:
        _format_text(findings, baselined, baseline_path, out)
    return 1 if findings else 0
