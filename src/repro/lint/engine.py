"""Core machinery for ``repro lint``: findings, rules, walking, baselines.

The engine is deliberately small: rules are plain objects with a ``check``
method over parsed modules, the walker parses every file exactly once and
shares the trees, and suppression/baseline handling lives here so individual
rules never need to think about it.

Two kinds of rules exist:

* **module rules** (:class:`Rule`) look at one module at a time, optionally
  restricted to sim-core paths (``scope = SCOPE_SIM_CORE``);
* **project rules** (:class:`ProjectRule`) cross-check several modules
  against each other (snapshot completeness, wire-protocol closure) and may
  pull anchor modules from disk when they were not part of the scanned set.

Findings carry a line-number-independent *fingerprint* (rule + module-relative
path + message) so a committed baseline survives unrelated edits that shift
line numbers.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import LintError

#: Packages whose code runs *inside* the simulated machine: everything here
#: must be bit-identical across serial/parallel/distributed/restored runs, so
#: the determinism rules (DET001/DET002) apply.  Everything else —
#: ``runner/``, ``snapshot/``, ``analysis/``, ``experiments/`` — is host-side
#: infrastructure where wall-clock time and real entropy are legitimate
#: (retry jitter, cache staleness stamps, run ids); that is the path-scope
#: exemption the rule catalog documents.
SIM_CORE_PACKAGES = frozenset(
    {
        "sim",
        "core",
        "cpu",
        "mem",
        "noc",
        "wireless",
        "sync",
        "machine",
        "workloads",
        "isa",
        "osmodel",
    }
)

SCOPE_SIM_CORE = "sim-core"
SCOPE_LIBRARY = "library"
SCOPE_PROJECT = "project"

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: ``# repro: noqa[DET001]`` or ``# repro: noqa[DET001, ERR001]`` suppresses
#: the named rules on that line; ``# repro: noqa`` with no bracket suppresses
#: every rule.  Anything after ``--`` is a free-form reason (encouraged).
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_\-,\s]+)\])?(?:\s*--\s*(?P<reason>.*))?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str  #: path as scanned (what the user sees, file:line clickable)
    rel: str  #: package-relative path (stable across checkouts; fingerprinted)
    line: int
    column: int
    message: str
    severity: str = SEVERITY_ERROR
    fix_hint: Optional[str] = None

    def fingerprint(self) -> str:
        """Stable identity for baseline matching, independent of line numbers."""
        digest = hashlib.sha256(
            f"{self.rule}|{self.rel}|{self.message}".encode("utf-8")
        ).hexdigest()
        return digest[:16]

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "severity": self.severity,
            "message": self.message,
            "fix_hint": self.fix_hint,
            "fingerprint": self.fingerprint(),
        }

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"


@dataclass
class ModuleInfo:
    """A parsed module plus everything rules need to reason about it."""

    path: Path  #: resolved absolute path
    display: str  #: path as given on the command line (used in findings)
    rel: str  #: posix path relative to the ``repro`` package / scan root
    source: str
    tree: ast.Module
    #: line -> suppressed rule ids (``None`` means every rule) for that line.
    noqa: Dict[int, Optional[frozenset]] = field(default_factory=dict)

    @property
    def top_package(self) -> str:
        return self.rel.split("/", 1)[0] if "/" in self.rel else ""

    @property
    def is_sim_core(self) -> bool:
        return self.top_package in SIM_CORE_PACKAGES

    def suppressed(self, line: int, rule_id: str) -> bool:
        rules = self.noqa.get(line, False)
        if rules is False:
            return False
        return rules is None or rule_id in rules


def _parse_noqa(source: str) -> Dict[int, Optional[frozenset]]:
    table: Dict[int, Optional[frozenset]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "noqa" not in text:
            continue
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            table[lineno] = None
        else:
            table[lineno] = frozenset(
                part.strip().upper() for part in rules.split(",") if part.strip()
            )
    return table


def _relative_module_path(path: Path, root: Optional[Path]) -> str:
    """Path of ``path`` relative to its ``repro`` package (or the scan root).

    ``src/repro/sim/engine.py`` -> ``sim/engine.py`` regardless of where the
    checkout lives; a fixture tree without a ``repro`` directory falls back to
    the scanned root, so ``<tmp>/sim/mod.py`` scanned from ``<tmp>`` still
    classifies as sim-core.
    """
    parts = path.parts
    for index in range(len(parts) - 1, 0, -1):
        if parts[index - 1] == "repro":
            return "/".join(parts[index:])
    if root is not None:
        try:
            return path.relative_to(root).as_posix()
        except ValueError:
            pass
    return path.name


class ModuleWalker:
    """Loads and parses modules exactly once; shared by every rule."""

    def __init__(self) -> None:
        self._cache: Dict[Path, ModuleInfo] = {}

    def load(
        self, path: Path, display: Optional[str] = None, root: Optional[Path] = None
    ) -> ModuleInfo:
        resolved = Path(path).resolve()
        cached = self._cache.get(resolved)
        if cached is not None:
            return cached
        try:
            source = resolved.read_text(encoding="utf-8")
        except OSError as error:
            raise LintError(f"cannot read {path}: {error}")
        try:
            tree = ast.parse(source, filename=str(resolved))
        except SyntaxError as error:
            raise LintError(
                f"{display or path}:{error.lineno or 0}: syntax error: {error.msg}"
            )
        info = ModuleInfo(
            path=resolved,
            display=str(display or path),
            rel=_relative_module_path(resolved, root),
            source=source,
            tree=tree,
            noqa=_parse_noqa(source),
        )
        self._cache[resolved] = info
        return info

    def collect(self, paths: Sequence[str]) -> List[ModuleInfo]:
        """Every ``.py`` module under ``paths``, sorted for stable output."""
        modules: List[ModuleInfo] = []
        seen: Set[Path] = set()
        for raw in paths:
            path = Path(raw)
            if not path.exists():
                raise LintError(f"no such file or directory: {raw}")
            if path.is_dir():
                root = path.resolve()
                for file_path in sorted(path.rglob("*.py")):
                    info = self.load(file_path, display=str(file_path), root=root)
                    if info.path not in seen:
                        seen.add(info.path)
                        modules.append(info)
            elif path.suffix == ".py":
                info = self.load(path, display=raw, root=path.resolve().parent)
                if info.path not in seen:
                    seen.add(info.path)
                    modules.append(info)
            else:
                raise LintError(f"not a python file: {raw}")
        return modules

    def find(self, modules: Sequence[ModuleInfo], rel_suffix: str) -> Optional[ModuleInfo]:
        """The scanned module whose package-relative path ends with ``rel_suffix``,
        falling back to loading it from disk next to a scanned sibling."""
        for module in modules:
            if module.rel == rel_suffix or module.rel.endswith("/" + rel_suffix):
                return module
        for module in modules:
            rel_parts = module.rel.split("/")
            if len(module.path.parts) < len(rel_parts):
                continue
            package_root = Path(*module.path.parts[: len(module.path.parts) - len(rel_parts)])
            candidate = package_root / rel_suffix
            if candidate.is_file():
                return self.load(candidate, display=str(candidate))
        return None


class Rule:
    """A single-module check.  Subclasses set the class attributes and
    implement :meth:`check_module`."""

    id: str = ""
    title: str = ""
    scope: str = SCOPE_LIBRARY
    severity: str = SEVERITY_ERROR
    fix_hint: str = ""

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ModuleInfo,
        node: ast.AST,
        message: str,
        fix_hint: Optional[str] = None,
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=module.display,
            rel=module.rel,
            line=getattr(node, "lineno", 0),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=self.severity,
            fix_hint=fix_hint if fix_hint is not None else (self.fix_hint or None),
        )


class ProjectRule(Rule):
    """A cross-module check over the whole scanned set."""

    scope = SCOPE_PROJECT

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        return ()

    def check_project(
        self, modules: Sequence[ModuleInfo], walker: ModuleWalker
    ) -> Iterable[Finding]:
        raise NotImplementedError


class LintEngine:
    """Runs a rule battery over a set of paths and returns ordered findings."""

    def __init__(
        self,
        rules: Sequence[Rule],
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> None:
        known = {rule.id for rule in rules}
        chosen = list(rules)
        if select is not None:
            wanted = {rule_id.upper() for rule_id in select}
            unknown = wanted - known
            if unknown:
                raise LintError(f"unknown rule id(s) in --select: {', '.join(sorted(unknown))}")
            chosen = [rule for rule in chosen if rule.id in wanted]
        if ignore is not None:
            dropped = {rule_id.upper() for rule_id in ignore}
            unknown = dropped - known
            if unknown:
                raise LintError(f"unknown rule id(s) in --ignore: {', '.join(sorted(unknown))}")
            chosen = [rule for rule in chosen if rule.id not in dropped]
        self.rules: Tuple[Rule, ...] = tuple(chosen)

    def run(self, paths: Sequence[str]) -> List[Finding]:
        walker = ModuleWalker()
        modules = walker.collect(paths)
        by_path = {module.path: module for module in modules}
        findings: List[Finding] = []
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                raw = rule.check_project(modules, walker)
            else:
                raw = []
                for module in modules:
                    if rule.scope == SCOPE_SIM_CORE and not module.is_sim_core:
                        continue
                    raw.extend(rule.check_module(module))
            for item in raw:
                module = by_path.get(Path(item.path).resolve())
                if module is None:
                    # Finding in an anchor module pulled from disk: look it
                    # up in the walker cache so noqa still applies.
                    module = walker._cache.get(Path(item.path).resolve())
                if module is not None and module.suppressed(item.line, item.rule):
                    continue
                findings.append(item)
        findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule, f.message))
        return findings


# --------------------------------------------------------------- baselines
def load_baseline(path: Path) -> Set[str]:
    """Fingerprints grandfathered by a committed baseline file."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise LintError(f"cannot read baseline {path}: {error}")
    except ValueError as error:
        raise LintError(f"baseline {path} is not valid JSON: {error}")
    if not isinstance(payload, dict) or "findings" not in payload:
        raise LintError(f"baseline {path} must be an object with a 'findings' list")
    fingerprints: Set[str] = set()
    for entry in payload["findings"]:
        if not isinstance(entry, dict) or not isinstance(entry.get("fingerprint"), str):
            raise LintError(f"baseline {path} has an entry without a fingerprint")
        fingerprints.add(entry["fingerprint"])
    return fingerprints


def write_baseline(findings: Sequence[Finding], path: Path) -> None:
    payload = {
        "version": 1,
        "comment": (
            "Grandfathered `repro lint` findings.  Entries are matched by "
            "fingerprint (rule + module path + message, line-independent); "
            "fix the finding and delete its entry rather than adding new ones."
        ),
        "findings": [
            {
                "fingerprint": finding.fingerprint(),
                "rule": finding.rule,
                "module": finding.rel,
                "message": finding.message,
            }
            for finding in findings
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(
    findings: Sequence[Finding], fingerprints: Set[str]
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (new, baselined)."""
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        (baselined if finding.fingerprint() in fingerprints else new).append(finding)
    return new, baselined


# ---------------------------------------------------------- shared AST kit
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def str_constants(node: ast.AST) -> List[str]:
    """Every string literal directly in ``node`` (constant or tuple/list/set)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        values: List[str] = []
        for element in node.elts:
            values.extend(str_constants(element))
        return values
    return []


def module_string_env(tree: ast.Module) -> Dict[str, List[str]]:
    """Top-level ``NAME = "literal"`` (and tuple-unpack / collection) bindings.

    Lets rules resolve comparisons like ``kind == KIND_ASSIGNED`` without
    importing the module under analysis.
    """
    env: Dict[str, List[str]] = {}
    for statement in tree.body:
        if not isinstance(statement, ast.Assign):
            continue
        for target in statement.targets:
            if isinstance(target, ast.Name):
                values = str_constants(statement.value)
                if values:
                    env[target.id] = values
            elif isinstance(target, ast.Tuple) and isinstance(statement.value, ast.Tuple):
                if len(target.elts) == len(statement.value.elts):
                    for name_node, value_node in zip(target.elts, statement.value.elts):
                        if isinstance(name_node, ast.Name):
                            values = str_constants(value_node)
                            if values:
                                env[name_node.id] = values
    return env


def init_self_attributes(class_node: ast.ClassDef) -> Dict[str, int]:
    """``{attribute: lineno}`` for every ``self.X = ...`` in ``__init__``."""
    attrs: Dict[str, int] = {}
    for item in class_node.body:
        if isinstance(item, ast.FunctionDef) and item.name == "__init__":
            self_name = item.args.args[0].arg if item.args.args else "self"
            for node in ast.walk(item):
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets = [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == self_name
                    ):
                        attrs.setdefault(target.attr, target.lineno)
    return attrs


def class_slots(class_node: ast.ClassDef) -> Optional[List[str]]:
    """The ``__slots__`` literal of a class body, or ``None`` if absent."""
    for item in class_node.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return str_constants(item.value)
    return None


def find_class(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def find_method(class_node: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for item in class_node.body:
        if isinstance(item, ast.FunctionDef) and item.name == name:
            return item
    return None
