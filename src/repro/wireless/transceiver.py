"""Per-node wireless transceiver: PHY serialization plus the MAC.

The MAC decides when a write is sent on the Data channel, detects collisions
(reported back by the channel), runs the backoff policy, and retries until
the transfer succeeds (Section 3.2).  A node has at most one broadcast store
in flight at a time — subsequent stores from the same core wait until the
current one has performed globally (Section 4.2.1) — so the transceiver
keeps a small FIFO of pending transmissions.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.config import DataChannelConfig
from repro.sim.stats import StatsRegistry
from repro.wireless.backoff import BackoffPolicy
from repro.wireless.channel import DataChannel, TransmissionHandle, WirelessMessage


class _PendingSend:
    __slots__ = ("send_id", "message", "on_complete", "handle", "done")

    def __init__(
        self,
        send_id: int,
        message: WirelessMessage,
        on_complete: Callable[[WirelessMessage, int], None],
    ) -> None:
        #: Stable per-transceiver id; the snapshot codec uses ``(node,
        #: send_id)`` to re-link channel attempts to their pending sends.
        self.send_id = send_id
        self.message = message
        self.on_complete = on_complete
        self.handle: Optional[TransmissionHandle] = None
        self.done = False


class _SendComplete:
    """Describable completion hook the channel calls when a transfer lands."""

    __slots__ = ("transceiver", "pending")

    def __init__(self, transceiver: "Transceiver", pending: _PendingSend) -> None:
        self.transceiver = transceiver
        self.pending = pending

    def __call__(self, message: WirelessMessage, cycle: int) -> None:
        self.transceiver._on_complete(self.pending, message, cycle)


class SendTicket:
    """Handle to a queued or in-flight transceiver send, allowing aborts.

    Used by the BM controller to abort an RMW's broadcast once its atomicity
    has failed, so the stale value never occupies the Data channel.
    """

    def __init__(self, transceiver: "Transceiver", pending: _PendingSend) -> None:
        self._transceiver = transceiver
        self._pending = pending

    def cancel(self) -> bool:
        """Abort the send; returns True if nothing was (or will be) transmitted."""
        return self._transceiver._cancel(self._pending)


class Transceiver:
    """MAC front end of one node."""

    def __init__(
        self,
        node_id: int,
        channel: DataChannel,
        backoff: BackoffPolicy,
        config: DataChannelConfig,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        self.node_id = node_id
        self.channel = channel
        self.backoff = backoff
        self.config = config
        self.stats = stats if stats is not None else StatsRegistry()
        self._queue: Deque[_PendingSend] = deque()
        self._in_flight: Optional[_PendingSend] = None
        self._next_send_id = 0
        self.sent_messages = 0
        self.collisions_seen = 0
        # Per-node flyweight stat handles, bound once per transceiver.
        self._sent_counter = self.stats.counter(f"transceiver/{node_id}/sent")
        self._collision_counter = self.stats.counter(f"transceiver/{node_id}/collisions")
        # Every antenna hears every transfer; observed successes relax the
        # contention window (Section 5.3's decrement rule on a broadcast medium).
        self.channel.add_listener(self._on_observed_message)

    # ---------------------------------------------------------------- sends
    def send_store(
        self,
        bm_addr: int,
        value: int,
        on_complete: Callable[[WirelessMessage, int], None],
    ) -> SendTicket:
        """Broadcast a single-word BM store."""
        message = WirelessMessage(sender=self.node_id, bm_addr=bm_addr, value=value)
        return self._enqueue(self._new_pending(message, on_complete))

    def send_bulk_store(
        self,
        bm_addr: int,
        values: Tuple[int, int, int, int],
        on_complete: Callable[[WirelessMessage, int], None],
    ) -> SendTicket:
        """Broadcast a Bulk store of four consecutive BM entries (15 cycles)."""
        message = WirelessMessage(
            sender=self.node_id,
            bm_addr=bm_addr,
            value=values[0],
            bulk=True,
            bulk_values=tuple(values),
        )
        return self._enqueue(self._new_pending(message, on_complete))

    def send_tone_init(
        self,
        bm_addr: int,
        on_complete: Callable[[WirelessMessage, int], None],
    ) -> SendTicket:
        """Send the Data-channel message with the Tone bit set.

        The first core to arrive at a tone barrier announces it this way
        (Section 4.2.2); the 64-bit data field is immaterial.
        """
        message = WirelessMessage(sender=self.node_id, bm_addr=bm_addr, value=0, tone_bit=True)
        return self._enqueue(self._new_pending(message, on_complete))

    @property
    def queue_depth(self) -> int:
        return len(self._queue) + (1 if self._in_flight is not None else 0)

    # ------------------------------------------------------------- internals
    def _new_pending(self, message: WirelessMessage, on_complete: Callable) -> _PendingSend:
        pending = _PendingSend(self._next_send_id, message, on_complete)
        self._next_send_id += 1
        return pending

    def _enqueue(self, pending: _PendingSend) -> SendTicket:
        self._queue.append(pending)
        self._pump()
        return SendTicket(self, pending)

    def _pump(self) -> None:
        if self._in_flight is not None or not self._queue:
            return
        pending = self._queue.popleft()
        self._in_flight = pending
        # Under observed contention the MAC spreads even fresh transmissions
        # over its backoff window instead of piling onto the next free slot.
        deferral = self.backoff.deferral()
        earliest = self.channel.sim.now + deferral if deferral > 0 else None
        pending.handle = self.channel.transmit(
            pending.message,
            on_complete=_SendComplete(self, pending),
            on_collision=self._on_collision,
            earliest=earliest,
        )

    def _cancel(self, pending: _PendingSend) -> bool:
        if pending.done:
            return False
        if pending in self._queue:
            self._queue.remove(pending)
            pending.done = True
            return True
        if self._in_flight is pending:
            assert pending.handle is not None
            if pending.handle.cancel():
                pending.done = True
                self._in_flight = None
                self._pump()
                return True
            return False
        return False

    def _on_complete(self, pending: _PendingSend, message: WirelessMessage, cycle: int) -> None:
        pending.done = True
        self._in_flight = None
        self.sent_messages += 1
        self.backoff.on_success()
        self._sent_counter.add()
        pending.on_complete(message, cycle)
        self._pump()

    def _on_collision(self, message: WirelessMessage) -> int:
        self.collisions_seen += 1
        self._collision_counter.add()
        return self.backoff.on_collision()

    def _on_observed_message(self, message: WirelessMessage, cycle: int) -> None:
        if message.sender != self.node_id:
            self.backoff.on_observed_success()
