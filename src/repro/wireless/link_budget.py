"""RF area/power/bandwidth scaling model (paper Section 2 and Table 4).

The paper starts from the measured 65 nm design of Yu et al. [51]
(16 Gb/s, 0.23 mm^2, 31.2 mW) and projects it to 22 nm using a sublinear
area-scaling rule and the 1.67x-per-generation power-scaling trend of
Chang et al. [11], arriving at ~0.1 mm^2 and 16 mW for the data transceiver
plus antenna.  The tone-channel extension (extra circuitry plus a second
90 GHz antenna) adds ~0.04 mm^2 and 2 mW, for a total of 0.14 mm^2 / 18 mW.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

from repro.errors import ConfigurationError

#: CMOS technology generations relevant to the projection (nm).
TECHNOLOGY_LADDER = [65, 45, 32, 22, 14]

#: Power shrinks by this factor per technology generation (Chang et al. [11]).
POWER_SCALING_PER_GENERATION = 1.67

#: Area shrinks sublinearly with feature size: area ~ (node_ratio)**AREA_EXPONENT.
#: The paper calls its choice "more conservative than the linear trend";
#: 0.78 reproduces 0.23 mm^2 @ 65 nm -> ~0.1 mm^2 @ 22 nm.
AREA_SCALING_EXPONENT = 0.78


@dataclass(frozen=True)
class RfDesignPoint:
    """One transceiver+antenna implementation point."""

    technology_nm: int
    bandwidth_gbps: float
    area_mm2: float
    power_mw: float
    center_frequency_ghz: float = 60.0
    antennas: int = 1

    def with_bandwidth(self, bandwidth_gbps: float) -> "RfDesignPoint":
        return replace(self, bandwidth_gbps=bandwidth_gbps)


#: Measured 65 nm reference design (Yu et al. [51]).
YU_65NM_REFERENCE = RfDesignPoint(
    technology_nm=65,
    bandwidth_gbps=16.0,
    area_mm2=0.23,
    power_mw=31.2,
    center_frequency_ghz=60.0,
    antennas=1,
)


def _generations_between(from_nm: int, to_nm: int) -> int:
    """Number of technology generations between two nodes on the ladder."""
    if from_nm not in TECHNOLOGY_LADDER or to_nm not in TECHNOLOGY_LADDER:
        raise ConfigurationError(
            f"technology nodes must be one of {TECHNOLOGY_LADDER} (got {from_nm}, {to_nm})"
        )
    return abs(TECHNOLOGY_LADDER.index(to_nm) - TECHNOLOGY_LADDER.index(from_nm))


def scale_design_point(reference: RfDesignPoint, technology_nm: int) -> RfDesignPoint:
    """Project a measured design to another technology node.

    Area scales sublinearly with the feature-size ratio; power scales by
    1.67x per generation.  Bandwidth is kept constant, matching the paper's
    conservative assumption ("providing the same 16 Gb/s or perhaps higher").
    """
    if technology_nm > reference.technology_nm:
        raise ConfigurationError("projection to an older technology is not supported")
    ratio = technology_nm / reference.technology_nm
    area = reference.area_mm2 * (ratio ** AREA_SCALING_EXPONENT)
    generations = _generations_between(reference.technology_nm, technology_nm)
    power = reference.power_mw / (POWER_SCALING_PER_GENERATION ** generations)
    return RfDesignPoint(
        technology_nm=technology_nm,
        bandwidth_gbps=reference.bandwidth_gbps,
        area_mm2=round(area, 3),
        power_mw=round(power, 1),
        center_frequency_ghz=reference.center_frequency_ghz,
        antennas=reference.antennas,
    )


def tone_extension_cost(technology_nm: int = 22) -> RfDesignPoint:
    """Cost of the tone-channel circuitry plus the second (90 GHz) antenna.

    Scaled from the 65 nm tone-capable front ends of [14, 49]; at 22 nm the
    paper estimates 0.04 mm^2 and 2 mW.
    """
    if technology_nm == 22:
        return RfDesignPoint(
            technology_nm=22,
            bandwidth_gbps=1.0,
            area_mm2=0.04,
            power_mw=2.0,
            center_frequency_ghz=90.0,
            antennas=1,
        )
    reference = RfDesignPoint(
        technology_nm=65,
        bandwidth_gbps=1.0,
        area_mm2=0.09,
        power_mw=6.0,
        center_frequency_ghz=90.0,
        antennas=1,
    )
    return scale_design_point(reference, technology_nm)


def wisync_rf_budget(technology_nm: int = 22) -> RfDesignPoint:
    """Total per-node RF cost: data transceiver + antenna + tone extension.

    At 22 nm this is the paper's 0.14 mm^2 / 18 mW figure used in Table 4.
    The data-channel part is taken at the paper's rounded 22 nm estimate
    (0.1 mm^2, 16 mW) rather than the raw scaling output.
    """
    if technology_nm == 22:
        data_part = RfDesignPoint(
            technology_nm=22,
            bandwidth_gbps=16.0,
            area_mm2=0.10,
            power_mw=16.0,
            center_frequency_ghz=60.0,
            antennas=1,
        )
    else:
        data_part = scale_design_point(YU_65NM_REFERENCE, technology_nm)
    tone_part = tone_extension_cost(technology_nm)
    return RfDesignPoint(
        technology_nm=technology_nm,
        bandwidth_gbps=data_part.bandwidth_gbps,
        area_mm2=round(data_part.area_mm2 + tone_part.area_mm2, 3),
        power_mw=round(data_part.power_mw + tone_part.power_mw, 1),
        center_frequency_ghz=data_part.center_frequency_ghz,
        antennas=2,
    )


def future_design_points() -> List[RfDesignPoint]:
    """Exploratory points discussed in Section 2 ("Future Trends")."""
    return [
        RfDesignPoint(technology_nm=22, bandwidth_gbps=32.0, area_mm2=0.10, power_mw=30.0),
        RfDesignPoint(technology_nm=14, bandwidth_gbps=64.0, area_mm2=0.01, power_mw=10.0,
                      center_frequency_ghz=300.0),
    ]
