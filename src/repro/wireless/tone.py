"""The wireless Tone channel (Sections 4.1, 4.2.2 and 5.1).

Nodes do not send data on this channel — only a presence tone.  The channel
is slotted at one cycle and the slots are assigned round-robin to the
currently *active* tone barriers, so several barriers can share the channel.
For a given barrier, every armed node that has not yet arrived keeps emitting
a tone in the barrier's slots; when the channel falls silent in one of those
slots, every node knows that all participants have arrived and toggles the
corresponding Broadcast-Memory location.

This module models the channel-level behaviour: who is emitting a tone for
which barrier, and when silence is detected.  The per-node AllocB/ActiveB
bookkeeping lives in :mod:`repro.core.tone_controller`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.config import ToneChannelConfig
from repro.errors import ToneBarrierError
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry
from repro.sim.trace import Tracer


@dataclass
class _ActiveBarrier:
    """Channel-side state of one active tone barrier."""

    bm_addr: int
    activated_at: int
    emitting: Set[int] = field(default_factory=set)
    generation: int = 0


class ToneChannel:
    """Slot-multiplexed tone channel with silence detection."""

    def __init__(
        self,
        sim: Simulator,
        config: ToneChannelConfig,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.stats = stats if stats is not None else StatsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self._active: Dict[int, _ActiveBarrier] = {}
        #: Active barrier addresses in activation order (slot assignment order).
        self._active_order: List[int] = []
        self._completion_listeners: List[Callable[[int, int], None]] = []
        self.completed_barriers = 0
        self._activations_counter = self.stats.counter("tone/activations")
        self._completions_counter = self.stats.counter("tone/completions")

    # ------------------------------------------------------------ listeners
    def add_completion_listener(self, callback: Callable[[int, int], None]) -> None:
        """``callback(bm_addr, detection_cycle)`` fires when a barrier completes."""
        self._completion_listeners.append(callback)

    # ----------------------------------------------------------------- state
    @property
    def active_barrier_count(self) -> int:
        return len(self._active_order)

    def is_active(self, bm_addr: int) -> bool:
        return bm_addr in self._active

    def emitting_nodes(self, bm_addr: int) -> Set[int]:
        barrier = self._active.get(bm_addr)
        return set(barrier.emitting) if barrier is not None else set()

    # ------------------------------------------------------------ operations
    def activate(self, bm_addr: int, emitters: Set[int]) -> None:
        """A barrier becomes active: ``emitters`` start issuing tones.

        Called when the first-arrival message is delivered on the Data
        channel.  ``emitters`` is the set of armed nodes that have not yet
        arrived; it may legitimately be empty (everyone arrived while the
        activation message was in flight), in which case the barrier
        completes immediately.
        """
        if not self.config.enabled:
            raise ToneBarrierError("tone channel is disabled in this configuration")
        if bm_addr in self._active:
            raise ToneBarrierError(f"tone barrier at BM address {bm_addr} is already active")
        barrier = _ActiveBarrier(bm_addr=bm_addr, activated_at=self.sim.now, emitting=set(emitters))
        self._active[bm_addr] = barrier
        self._active_order.append(bm_addr)
        self._activations_counter.add()
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now, "tone", "tone.activate", f"addr={bm_addr} emitters={len(emitters)}"
            )
        if not barrier.emitting:
            self._schedule_completion(barrier)

    def stop_tone(self, bm_addr: int, node: int) -> None:
        """``node`` arrives at the barrier and stops emitting its tone."""
        barrier = self._active.get(bm_addr)
        if barrier is None:
            raise ToneBarrierError(f"no active tone barrier at BM address {bm_addr}")
        barrier.emitting.discard(node)
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, f"node{node}", "tone.stop", f"addr={bm_addr}")
        if not barrier.emitting:
            self._schedule_completion(barrier)

    # ------------------------------------------------------------- internals
    def detection_latency(self) -> int:
        """Cycles from channel silence to every node observing it.

        With ``k`` active barriers sharing the channel round-robin, the slot
        belonging to a given barrier recurs every ``k`` slots, so silence is
        observed within ``k`` slots plus one listening slot.
        """
        active = max(1, len(self._active_order))
        return active * self.config.slot_cycles + self.config.slot_cycles

    def _schedule_completion(self, barrier: _ActiveBarrier) -> None:
        latency = self.detection_latency()
        generation = barrier.generation
        self.sim.schedule(latency, self._complete, barrier.bm_addr, generation)

    def _complete(self, bm_addr: int, generation: int) -> None:
        barrier = self._active.get(bm_addr)
        if barrier is None or barrier.generation != generation:
            return
        if barrier.emitting:
            # A racing emitter re-appeared before detection (should not happen
            # with the protocol as modelled, but guard against it).
            return
        del self._active[bm_addr]
        self._active_order.remove(bm_addr)
        self.completed_barriers += 1
        self._completions_counter.add()
        detection_cycle = self.sim.now
        if self.tracer.enabled:
            self.tracer.emit(detection_cycle, "tone", "tone.complete", f"addr={bm_addr}")
        for listener in self._completion_listeners:
            listener(bm_addr, detection_cycle)
