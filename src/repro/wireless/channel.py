"""The shared wireless Data channel.

Single-channel medium shared by every transceiver on the chip.  Transfers
are slotted at one cycle; an ordinary message takes 5 cycles (collision
detected and aborted after 2), a Bulk message takes 15 cycles (Section 4.1).
Exactly one transmitter can use the channel at a time; simultaneous attempts
collide and the colliding MACs back off.

The channel is the serialization point that gives broadcast-memory writes
their chip-wide total order.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.config import DataChannelConfig
from repro.errors import WirelessError
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry
from repro.sim.trace import Tracer

#: Event priority used for channel arbitration so that every transmission
#: attempt registered for a cycle is visible before the winner is decided.
ARBITRATION_PRIORITY = 10


class WirelessMessage(NamedTuple):
    """One Data-channel transfer (Section 4.1 message format).

    A NamedTuple rather than a frozen dataclass: messages are created on
    every broadcast store and frozen-dataclass construction (one guarded
    ``object.__setattr__`` per field) is measurably slower.
    """

    sender: int
    bm_addr: int
    value: int = 0
    bulk: bool = False
    tone_bit: bool = False
    bulk_values: Tuple[int, ...] = ()

    def duration(self, config: DataChannelConfig) -> int:
        """Channel occupancy of this message in cycles."""
        return config.bulk_message_cycles if self.bulk else config.message_cycles


class _Attempt:
    __slots__ = (
        "attempt_id",
        "message",
        "on_complete",
        "on_collision",
        "enqueued_at",
        "cancelled",
        "started",
    )

    def __init__(
        self,
        attempt_id: int,
        message: WirelessMessage,
        on_complete: Callable[[WirelessMessage, int], None],
        on_collision: Callable[[WirelessMessage], int],
        enqueued_at: int,
    ) -> None:
        #: Stable per-channel id so scheduled ``_complete`` events and the
        #: per-cycle attempt lists can be snapshotted and re-linked.
        self.attempt_id = attempt_id
        self.message = message
        self.on_complete = on_complete
        self.on_collision = on_collision
        self.enqueued_at = enqueued_at
        self.cancelled = False
        self.started = False


class TransmissionHandle:
    """Handle to a queued transmission, allowing the MAC to abort it.

    The BM controller aborts a pending RMW broadcast when its atomicity has
    already failed (Section 4.2.1: the instruction "neither broadcasts its
    value nor updates the local BM").  Cancellation only succeeds while the
    message has not yet started occupying the channel.
    """

    def __init__(self, attempt: _Attempt) -> None:
        self._attempt = attempt

    @property
    def started(self) -> bool:
        return self._attempt.started

    @property
    def cancelled(self) -> bool:
        return self._attempt.cancelled

    def cancel(self) -> bool:
        """Abort the transmission; returns True if it had not started yet."""
        if self._attempt.started:
            return False
        self._attempt.cancelled = True
        return True


class DataChannel:
    """Event-accurate single-frequency-band data channel with collisions."""

    def __init__(
        self,
        sim: Simulator,
        config: DataChannelConfig,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.stats = stats if stats is not None else StatsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self._busy_until: int = 0
        self._next_attempt_id = 0
        self._attempts_by_cycle: Dict[int, List[_Attempt]] = {}
        #: Cycles with an arbitration event already scheduled (set semantics:
        #: a cycle is either pending or not — no per-cycle flag values).
        self._arbitration_pending: Set[int] = set()
        self._listeners: List[Callable[[WirelessMessage, int], None]] = []
        self.total_messages = 0
        self.total_collisions = 0
        # Flyweight stat handles, bound once so the per-message hot path does
        # no string-keyed registry lookups.
        self._messages_counter = self.stats.counter("wireless/messages")
        self._collisions_counter = self.stats.counter("wireless/collisions")
        self._channel_util = self.stats.utilization("wireless/data_channel")
        self._latency_hist = self.stats.histogram("wireless/transfer_latency")

    # ------------------------------------------------------------ listeners
    def add_listener(self, callback: Callable[[WirelessMessage, int], None]) -> None:
        """Register a callback invoked for every successfully delivered message.

        All antennas are always listening (Section 3.1), so a listener sees
        every message regardless of sender.  The callback receives the
        message and its delivery (completion) cycle.
        """
        self._listeners.append(callback)

    # ------------------------------------------------------------- transmit
    def transmit(
        self,
        message: WirelessMessage,
        on_complete: Callable[[WirelessMessage, int], None],
        on_collision: Callable[[WirelessMessage], int],
        earliest: Optional[int] = None,
    ) -> TransmissionHandle:
        """Queue a transmission attempt.

        ``on_complete(message, completion_cycle)`` fires when the transfer
        succeeds; ``on_collision(message)`` is consulted on each collision
        and must return the sender's backoff delay in cycles.  The returned
        handle can cancel the transmission while it has not started.
        """
        now = self.sim.now
        start = max(now, self._busy_until, earliest if earliest is not None else now)
        attempt = _Attempt(
            attempt_id=self._next_attempt_id,
            message=message,
            on_complete=on_complete,
            on_collision=on_collision,
            enqueued_at=now,
        )
        self._next_attempt_id += 1
        self._register_attempt(start, attempt)
        return TransmissionHandle(attempt)

    def busy_until(self) -> int:
        """Earliest cycle the channel is currently expected to be free."""
        return self._busy_until

    # --------------------------------------------------------------- internal
    def _register_attempt(self, cycle: int, attempt: _Attempt) -> None:
        if cycle < self.sim.now:
            raise WirelessError("attempt registered in the past")
        self._attempts_by_cycle.setdefault(cycle, []).append(attempt)
        if cycle not in self._arbitration_pending:
            self._arbitration_pending.add(cycle)
            self.sim.schedule_at(cycle, self._arbitrate, cycle, priority=ARBITRATION_PRIORITY)

    def _arbitrate(self, cycle: int) -> None:
        attempts = self._attempts_by_cycle.pop(cycle, [])
        self._arbitration_pending.discard(cycle)
        attempts = [attempt for attempt in attempts if not attempt.cancelled]
        if not attempts:
            return
        if cycle < self._busy_until:
            # The channel became busy after these attempts were queued
            # (another sender won an earlier slot); re-queue at the next
            # expected-free cycle, as the MAC does (Section 4.1).  Attempts
            # that targeted different original slots keep their relative
            # order (slot-granular deference), so a deferred sender does not
            # lose the spreading its earlier backoff achieved.
            for index, attempt in enumerate(attempts):
                self._register_attempt(self._busy_until + index, attempt)
            return
        if len(attempts) == 1:
            self._deliver(cycle, attempts[0])
            return
        self._collide(cycle, attempts)

    def _deliver(self, cycle: int, attempt: _Attempt) -> None:
        attempt.started = True
        duration = attempt.message.duration(self.config)
        completion = cycle + duration
        self._busy_until = completion
        self.total_messages += 1
        self._messages_counter.add()
        self._channel_util.add_busy(duration)
        self._latency_hist.record(completion - attempt.enqueued_at)
        if self.tracer.enabled:
            self.tracer.emit(
                cycle,
                f"node{attempt.message.sender}",
                "wireless.send",
                f"addr={attempt.message.bm_addr} bulk={attempt.message.bulk} tone={attempt.message.tone_bit}",
            )
        self.sim.schedule_at(completion, self._complete, attempt, completion)

    def _complete(self, attempt: _Attempt, completion: int) -> None:
        """Deliver a finished transfer to its sender and to every antenna.

        All antennas are always listening, so this fans out to every
        registered listener — O(nodes) work per delivered message (each node's
        transceiver observes the transfer, plus the fabric's value-plane
        listener).  That cost is inherent to modelling a broadcast medium;
        the short-circuit below only spares listener-less channels (unit
        tests, standalone channel studies).
        """
        attempt.on_complete(attempt.message, completion)
        listeners = self._listeners
        if not listeners:
            return
        message = attempt.message
        for listener in listeners:
            listener(message, completion)

    def _collide(self, cycle: int, attempts: Sequence[_Attempt]) -> None:
        penalty = self.config.collision_penalty_cycles
        free_at = cycle + penalty
        self._busy_until = max(self._busy_until, free_at)
        self.total_collisions += 1
        self._collisions_counter.add()
        self._channel_util.add_busy(penalty)
        if self.tracer.enabled:
            self.tracer.emit(cycle, "channel", "wireless.collision", f"senders={len(attempts)}")
        for attempt in attempts:
            backoff = attempt.on_collision(attempt.message)
            if backoff < 0:
                raise WirelessError("backoff must be non-negative")
            # The retry slot is relative to the end of the collision window;
            # if the channel is busy again by then, the arbitration of that
            # slot defers the attempt while preserving its backoff offset.
            self._register_attempt(free_at + backoff, attempt)
