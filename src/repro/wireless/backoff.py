"""Collision-resolution (backoff) policies for the wireless MAC.

The paper uses the classic exponential backoff of Ethernet [32]: after a
collision the transmitter waits a uniformly random number of cycles in
``[0, 2^i - 1]`` where ``i`` grows with every collision and shrinks with
every successful transmission (Section 5.3).  A fixed-window policy is
provided as an ablation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.config import BackoffConfig
from repro.errors import ConfigurationError
from repro.sim.rng import DeterministicRng


class BackoffPolicy(ABC):
    """Per-transceiver collision backoff state machine."""

    @abstractmethod
    def on_collision(self) -> int:
        """Record a collision and return the number of cycles to wait."""

    @abstractmethod
    def on_success(self) -> None:
        """Record a successful transmission (contention is easing)."""

    @abstractmethod
    def reset(self) -> None:
        """Forget all contention history."""

    def deferral(self) -> int:
        """Slots to defer a *fresh* transmission under observed contention.

        While the MAC has recently seen collisions it does not blast a new
        message into the first free slot (where every other contender would
        also transmit); it spreads the attempt over its current contention
        window, exactly as it does for retries.  With no contention history
        the deferral is zero, so uncontended stores keep their 5-cycle
        latency.
        """
        return 0

    def on_observed_success(self) -> None:
        """Another node's transmission succeeded.

        All antennas hear every transfer (Section 3.1), so the MAC can relax
        its contention window whenever the channel drains a message, not only
        on its own successes — the paper's "decremented at every successful
        transmission" rule applied to the broadcast medium.
        """
        return None


class ExponentialBackoff(BackoffPolicy):
    """Binary exponential backoff with success-driven decay.

    ``i`` is incremented on every collision (up to ``max_exponent``) and
    decremented on every success, exactly as described in Section 5.3.
    """

    def __init__(self, rng: DeterministicRng, max_exponent: int = 10) -> None:
        if max_exponent < 1:
            raise ConfigurationError("max_exponent must be >= 1")
        self.rng = rng
        self.max_exponent = max_exponent
        self.exponent = 0
        self.collisions = 0
        self.successes = 0

    def on_collision(self) -> int:
        self.collisions += 1
        self.exponent = min(self.max_exponent, self.exponent + 1)
        window = (1 << self.exponent) - 1
        return self.rng.randint(0, window) if window > 0 else 0

    def on_success(self) -> None:
        self.successes += 1
        self.exponent = max(0, self.exponent - 1)

    def reset(self) -> None:
        # All state, not just the window: a reset transceiver must not carry
        # contention statistics from its previous life into new measurements.
        self.exponent = 0
        self.collisions = 0
        self.successes = 0

    def deferral(self) -> int:
        if self.exponent == 0:
            return 0
        window = (1 << self.exponent) - 1
        return self.rng.randint(0, window)

    def on_observed_success(self) -> None:
        self.exponent = max(0, self.exponent - 1)


class BroadcastAwareBackoff(BackoffPolicy):
    """Contention-window backoff that exploits the broadcast medium.

    Section 5.3 observes that adaptive collision-resolution policies are easy
    on this network "because all nodes have all the information at all
    times".  This policy keeps a running estimate of the number of contending
    transmitters: collisions grow the estimate multiplicatively (as in
    exponential backoff), while every successful transmission heard on the
    channel shrinks it by one — a success means one contender has left the
    fray.  Both retries and fresh transmissions under contention are spread
    over a window proportional to the estimate, which keeps the channel close
    to fully utilized during synchronization bursts (barriers, reductions)
    without starving the last arrivals.
    """

    def __init__(self, rng: DeterministicRng, max_window: int = 512) -> None:
        if max_window < 2:
            raise ConfigurationError("max_window must be >= 2")
        self.rng = rng
        self.max_window = max_window
        self.estimate = 1.0
        self.collisions = 0
        self.successes = 0

    def _window(self) -> int:
        return max(1, min(self.max_window, int(round(self.estimate))))

    def on_collision(self) -> int:
        self.collisions += 1
        self.estimate = min(float(self.max_window), max(2.0, self.estimate * 2.0))
        return self.rng.randint(0, self._window() - 1)

    def on_success(self) -> None:
        self.successes += 1
        self.estimate = max(1.0, self.estimate / 2.0)

    def on_observed_success(self) -> None:
        self.estimate = max(1.0, self.estimate - 1.0)

    def deferral(self) -> int:
        window = self._window()
        if window <= 1:
            return 0
        return self.rng.randint(0, window - 1)

    def reset(self) -> None:
        self.estimate = 1.0
        self.collisions = 0
        self.successes = 0


class FixedBackoff(BackoffPolicy):
    """Uniform backoff over a fixed window (ablation baseline)."""

    def __init__(self, rng: DeterministicRng, window: int = 8) -> None:
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        self.rng = rng
        self.window = window
        self.collisions = 0
        self.successes = 0

    def on_collision(self) -> int:
        self.collisions += 1
        return self.rng.randint(0, self.window - 1)

    def on_success(self) -> None:
        self.successes += 1

    def reset(self) -> None:
        self.collisions = 0
        self.successes = 0


def make_backoff(config: BackoffConfig, rng: DeterministicRng) -> BackoffPolicy:
    """Build the backoff policy named by the configuration."""
    if config.kind == "broadcast_aware":
        return BroadcastAwareBackoff(rng, max_window=1 << config.max_exponent)
    if config.kind == "exponential":
        return ExponentialBackoff(rng, max_exponent=config.max_exponent)
    if config.kind == "fixed":
        return FixedBackoff(rng, window=config.fixed_window)
    raise ConfigurationError(f"unknown backoff kind {config.kind!r}")
