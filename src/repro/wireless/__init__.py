"""On-chip wireless communication substrate.

Models the two channels of Section 4.1: the 19 Gb/s **Data channel** (5-cycle
messages, collision detection in the second cycle, exponential backoff) and
the 1 Gb/s **Tone channel** (1-bit tones, round-robin slot multiplexing among
active barriers), plus the per-node transceiver MAC and the RF area/power
scaling model of Section 2.
"""

from repro.wireless.backoff import (
    BackoffPolicy,
    BroadcastAwareBackoff,
    ExponentialBackoff,
    FixedBackoff,
    make_backoff,
)
from repro.wireless.channel import DataChannel, WirelessMessage
from repro.wireless.link_budget import (
    RfDesignPoint,
    YU_65NM_REFERENCE,
    scale_design_point,
    tone_extension_cost,
    wisync_rf_budget,
)
from repro.wireless.tone import ToneChannel
from repro.wireless.transceiver import Transceiver

__all__ = [
    "BackoffPolicy",
    "BroadcastAwareBackoff",
    "ExponentialBackoff",
    "FixedBackoff",
    "make_backoff",
    "DataChannel",
    "WirelessMessage",
    "ToneChannel",
    "Transceiver",
    "RfDesignPoint",
    "YU_65NM_REFERENCE",
    "scale_design_point",
    "tone_extension_cost",
    "wisync_rf_budget",
]
