"""Deterministic random-number streams.

Every stochastic component (e.g. the exponential-backoff MAC in each
transceiver, workload think-time jitter) draws from its own named stream so
results are reproducible and independent of the order in which components
happen to be constructed.

Streams are also *checkpointable*: :meth:`DeterministicRng.getstate` /
:meth:`DeterministicRng.setstate` round-trip one stream's Mersenne-Twister
state through JSON, and every stream remembers the children derived from it
(:meth:`DeterministicRng.child`), so :meth:`tree_getstate` /
:meth:`tree_setstate` can capture and restore the whole derivation tree of a
machine — a restored simulation draws the identical random sequence.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, Iterator, List, Sequence, TypeVar

from repro.errors import SnapshotError

T = TypeVar("T")


def _derive_seed(root_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class DeterministicRng:
    """A named, reproducible random stream derived from a root seed."""

    def __init__(self, root_seed: int, name: str) -> None:
        self.root_seed = int(root_seed)
        self.name = name
        self._random = random.Random(  # repro: noqa[DET001] -- this IS the determinism boundary: seeded from the sha256-derived stream name, never from ambient entropy
            _derive_seed(self.root_seed, name)
        )
        self._children: List["DeterministicRng"] = []

    def child(self, name: str) -> "DeterministicRng":
        """Derive an independent sub-stream, e.g. per node or per thread.

        The child is remembered so checkpointing can enumerate the whole
        derivation tree; each call derives a *fresh* stream (two calls with
        the same name yield two independent objects with identical state).
        """
        rng = DeterministicRng(self.root_seed, f"{self.name}/{name}")
        self._children.append(rng)
        return rng

    # ----------------------------------------------------------- primitives
    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high], inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def choice(self, seq: Sequence[T]) -> T:
        return self._random.choice(seq)

    def shuffle(self, items: List[T]) -> List[T]:
        """Return a shuffled copy (the input list is not modified)."""
        copy = list(items)
        self._random.shuffle(copy)
        return copy

    def jitter(self, mean: int, fraction: float = 0.1) -> int:
        """An integer near ``mean`` with +/- ``fraction`` relative jitter."""
        if mean <= 0:
            return 0
        spread = max(1, int(mean * fraction))
        return max(0, mean + self._random.randint(-spread, spread))

    # -------------------------------------------------------- state capture
    def getstate(self) -> Dict[str, Any]:
        """This stream's state as a JSON-safe dict (inverse of :meth:`setstate`).

        Carries the derivation info (``root_seed`` + full ``name`` path) so a
        restore can verify it is being applied to the same stream.
        """
        version, internal, gauss_next = self._random.getstate()
        return {
            "root_seed": self.root_seed,
            "name": self.name,
            "state": [int(version), [int(word) for word in internal], gauss_next],
        }

    def setstate(self, payload: Dict[str, Any]) -> None:
        """Restore a state captured by :meth:`getstate` on the same stream."""
        if (
            payload.get("name") != self.name
            or int(payload.get("root_seed", -1)) != self.root_seed
        ):
            raise SnapshotError(
                f"rng state for stream {payload.get('name')!r} "
                f"(root seed {payload.get('root_seed')!r}) cannot be applied to "
                f"stream {self.name!r} (root seed {self.root_seed})"
            )
        try:
            version, internal, gauss_next = payload["state"]
            self._random.setstate(
                (int(version), tuple(int(word) for word in internal), gauss_next)
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SnapshotError(
                f"malformed rng state for stream {self.name!r}: {error}"
            )

    def iter_tree(self) -> Iterator["DeterministicRng"]:
        """This stream and every stream derived from it, depth-first."""
        yield self
        for child in self._children:
            yield from child.iter_tree()

    def tree_getstate(self) -> Dict[str, Dict[str, Any]]:
        """State of the whole derivation tree, keyed by full stream name."""
        states: Dict[str, Dict[str, Any]] = {}
        for rng in self.iter_tree():
            if rng.name in states:
                raise SnapshotError(
                    f"rng stream name {rng.name!r} is not unique in the "
                    f"derivation tree; checkpointing needs distinct names"
                )
            states[rng.name] = rng.getstate()
        return states

    def tree_setstate(self, states: Dict[str, Dict[str, Any]]) -> None:
        """Restore every stream of the tree from :meth:`tree_getstate` output.

        The tree shapes must match exactly: a stream with no captured state,
        or leftover captured states with no matching stream, mean the
        restored machine diverged from the one that was checkpointed.
        """
        remaining = dict(states)
        for rng in self.iter_tree():
            payload = remaining.pop(rng.name, None)
            if payload is None:
                raise SnapshotError(
                    f"no captured rng state for stream {rng.name!r}; the "
                    f"restored machine derived streams the snapshot never saw"
                )
            rng.setstate(payload)
        if remaining:
            raise SnapshotError(
                f"captured rng states for {sorted(remaining)} have no matching "
                f"stream in the restored machine"
            )
