"""Deterministic random-number streams.

Every stochastic component (e.g. the exponential-backoff MAC in each
transceiver, workload think-time jitter) draws from its own named stream so
results are reproducible and independent of the order in which components
happen to be constructed.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


def _derive_seed(root_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class DeterministicRng:
    """A named, reproducible random stream derived from a root seed."""

    def __init__(self, root_seed: int, name: str) -> None:
        self.root_seed = int(root_seed)
        self.name = name
        self._random = random.Random(_derive_seed(self.root_seed, name))

    def child(self, name: str) -> "DeterministicRng":
        """Derive an independent sub-stream, e.g. per node or per thread."""
        return DeterministicRng(self.root_seed, f"{self.name}/{name}")

    # ----------------------------------------------------------- primitives
    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high], inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def choice(self, seq: Sequence[T]) -> T:
        return self._random.choice(seq)

    def shuffle(self, items: List[T]) -> List[T]:
        """Return a shuffled copy (the input list is not modified)."""
        copy = list(items)
        self._random.shuffle(copy)
        return copy

    def jitter(self, mean: int, fraction: float = 0.1) -> int:
        """An integer near ``mean`` with +/- ``fraction`` relative jitter."""
        if mean <= 0:
            return 0
        spread = max(1, int(mean * fraction))
        return max(0, mean + self._random.randint(-spread, spread))
