"""Cycle-granular discrete-event simulator.

Every timing model in the library (caches, mesh network, wireless channels,
cores) shares a single :class:`Simulator` instance and advances time by
scheduling callbacks.  Time is measured in integer processor cycles at the
paper's 1 GHz clock, so one cycle is also one nanosecond.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import Event


class Simulator:
    """A deterministic event-driven simulator with integer cycle time."""

    def __init__(self) -> None:
        self._now: int = 0
        self._queue: list = []
        self._seq: int = 0
        self._running: bool = False
        self._events_processed: int = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)

    # ------------------------------------------------------------ scheduling
    def schedule(
        self,
        delay: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + int(delay), callback, *args, priority=priority)

    def schedule_at(
        self,
        time: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute cycle ``time``."""
        time = int(time)
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at cycle {time}, current cycle is {self._now}"
            )
        event = Event(time=time, priority=priority, seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    # --------------------------------------------------------------- running
    def step(self) -> bool:
        """Fire the next non-cancelled event.  Returns False if queue empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError("event queue corrupted: time went backwards")
            self._now = event.time
            self._events_processed += 1
            event.fire()
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` cycles, or ``max_events``.

        Returns the simulation time at which the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run call)")
        self._running = True
        fired = 0
        try:
            while self._queue:
                if max_events is not None and fired >= max_events:
                    break
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                self._events_processed += 1
                event.fire()
                fired += 1
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def drain(self, max_events: int = 10_000_000) -> int:
        """Run until no events remain, guarding against runaway simulations."""
        count = 0
        while self.step():
            count += 1
            if count > max_events:
                raise SimulationError(f"simulation exceeded {max_events} events; likely livelock")
        return self._now
