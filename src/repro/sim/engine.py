"""Cycle-granular discrete-event simulator.

Every timing model in the library (caches, mesh network, wireless channels,
cores) shares a single :class:`Simulator` instance and advances time by
scheduling callbacks.  Time is measured in integer processor cycles at the
paper's 1 GHz clock, so one cycle is also one nanosecond.

The event queue is engineered for the hot path: heap entries are plain
``(time, priority, seq, event)`` tuples (compared in C — ``seq`` is unique,
so the trailing :class:`~repro.sim.events.Event` record is never compared),
events are ``__slots__`` records rather than dataclasses, ``run``/``step``/
``drain`` all share one loop, and cancelled events are counted and lazily
compacted out of the heap instead of accumulating until popped.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import Event


class Simulator:
    """A deterministic event-driven simulator with integer cycle time."""

    #: Cancelled entries tolerated before the queue is compacted in place.
    COMPACT_THRESHOLD = 512

    def __init__(self) -> None:
        #: Current simulation time in cycles.  Plain attributes (not
        #: properties): ``now`` is read on every hot path in the library and
        #: a property descriptor call per read is measurable overhead.
        #: Treat both as read-only from outside the engine.
        self.now: int = 0
        #: Number of events fired so far (cancelled events excluded).
        self.events_processed: int = 0
        self._queue: list = []
        self._seq: int = 0
        self._running: bool = False
        self._cancelled: int = 0
        self._stop: bool = False

    # ------------------------------------------------------------------ time
    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still in the queue."""
        return len(self._queue) - self._cancelled

    def checkpoint_state(self) -> dict:
        """The engine's enumerable counters, as a JSON-safe dict.

        This is the *native* half of a checkpoint: the event queue itself
        holds live callbacks (bound methods, generator frames) that cannot be
        serialized, so restore reconstructs it by deterministic replay and
        then verifies these counters match bit-for-bit.
        """
        return {
            "now": self.now,
            "seq": self._seq,
            "events_processed": self.events_processed,
            "pending_events": self.pending_events,
        }

    # ------------------------------------------------------------ scheduling
    def schedule(
        self,
        delay: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self.now + int(delay)
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, args, self)
        heapq.heappush(self._queue, (time, priority, seq, event))
        return event

    def schedule_at(
        self,
        time: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute cycle ``time``."""
        time = int(time)
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at cycle {time}, current cycle is {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, args, self)
        heapq.heappush(self._queue, (time, priority, seq, event))
        return event

    # -------------------------------------------------------- cancellation
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` for events still in the queue."""
        self._cancelled += 1
        if (
            self._cancelled >= self.COMPACT_THRESHOLD
            and self._cancelled * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, preserving pop order.

        In-place (slice assignment) so a loop holding a reference to the
        queue list keeps seeing the live heap.  Entries keep their unique
        ``(time, priority, seq)`` keys, so the heap pops in exactly the same
        order after compaction.
        """
        queue = self._queue
        live = [entry for entry in queue if not entry[3].cancelled]
        for entry in queue:
            event = entry[3]
            if event.cancelled:
                event._sim = None
        queue[:] = live
        heapq.heapify(queue)
        self._cancelled = 0

    # --------------------------------------------------------------- running
    def stop(self) -> None:
        """Request the current run loop to return after the event in flight.

        Lets a callback end the run the moment a termination condition is
        met (e.g. the last workload thread finishing) without the driver
        paying a per-event Python call to poll for it.
        """
        self._stop = True

    def _loop(
        self,
        until: Optional[int],
        max_events: Optional[int],
        stop_at: Optional[int] = None,
    ) -> int:
        """The one event loop behind run/step/drain; returns events fired.

        ``until`` is a pre-fire bound: events past it stay queued and time
        advances to exactly ``until``.  ``stop_at`` is a post-fire bound:
        the event that reaches (or crosses) it still fires, matching the
        truncation semantics of ``Manycore.run(max_cycles=...)``.
        """
        queue = self._queue
        heappop = heapq.heappop
        fired = 0
        while queue:
            if max_events is not None and fired >= max_events:
                return fired
            entry = queue[0]
            event = entry[3]
            if event.cancelled:
                heappop(queue)
                self._cancelled -= 1
                event._sim = None
                continue
            time = entry[0]
            if until is not None and time > until:
                self.now = until
                return fired
            heappop(queue)
            event._sim = None
            self.now = time
            self.events_processed += 1
            event.callback(*event.args)
            fired += 1
            if self._stop:
                self._stop = False
                return fired
            if stop_at is not None and time >= stop_at:
                return fired
        if until is not None and until > self.now:
            self.now = until
        return fired

    def step(self) -> bool:
        """Fire the next non-cancelled event.  Returns False if queue empty."""
        return self._loop(None, 1) > 0

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop_at: Optional[int] = None,
    ) -> int:
        """Run until the queue drains, a bound is hit, or :meth:`stop` is called.

        ``until`` stops *before* firing events beyond it (and advances time
        to ``until``); ``stop_at`` stops *after* firing the event that
        reached it.  Returns the simulation time at which the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run call)")
        self._running = True
        self._stop = False
        try:
            self._loop(until, max_events, stop_at)
        finally:
            self._running = False
        return self.now

    def drain(self, max_events: int = 10_000_000) -> int:
        """Run until no events remain, guarding against runaway simulations.

        Unlike :meth:`run`, draining ignores :meth:`stop` requests: it keeps
        looping until the queue is truly empty (or the event budget is
        spent), so a callback-driven stop never masquerades as a livelock.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant drain call)")
        self._running = True
        self._stop = False
        remaining = max_events
        try:
            while True:
                before = self.events_processed
                self._loop(None, remaining)
                remaining -= self.events_processed - before
                if self.pending_events == 0:
                    return self.now
                if remaining <= 0:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events; likely livelock"
                    )
                # _loop returned early because a callback called stop();
                # keep draining the remainder.
        finally:
            self._running = False
