"""Discrete-event simulation engine used by every timing model in repro.

The engine is deliberately small: a cycle-granular event queue
(:class:`~repro.sim.engine.Simulator`), deterministic per-component random
number streams (:class:`~repro.sim.rng.DeterministicRng`), and statistics
helpers (:mod:`repro.sim.stats`).  Higher layers (memory, NoC, wireless,
machine) schedule callbacks on the shared simulator instance.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.process import SimProcess, Timeout, WaitCondition
from repro.sim.rng import DeterministicRng
from repro.sim.stats import Counter, Histogram, StatsRegistry, UtilizationTracker

__all__ = [
    "Simulator",
    "Event",
    "SimProcess",
    "Timeout",
    "WaitCondition",
    "DeterministicRng",
    "Counter",
    "Histogram",
    "StatsRegistry",
    "UtilizationTracker",
]
