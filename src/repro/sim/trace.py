"""Optional event tracing.

Traces are invaluable when debugging interleavings (e.g. verifying the total
order of broadcast-memory writes).  Tracing is off by default because the
full-application experiments generate millions of events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced event: when, who, what."""

    cycle: int
    source: str
    kind: str
    detail: str = ""


class Tracer:
    """Collects :class:`TraceRecord` objects when enabled."""

    def __init__(self, enabled: bool = False, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.records: List[TraceRecord] = []

    def emit(self, cycle: int, source: str, kind: str, detail: str = "") -> None:
        """Record one trace event (no-op when disabled).

        Hot call sites must check :attr:`enabled` *before* building the
        ``detail`` string (``if tracer.enabled: tracer.emit(..., f"...")``)
        so that disabled tracing costs one attribute check instead of an
        f-string format per event.
        """
        if not self.enabled:
            return
        if self.capacity is not None and len(self.records) >= self.capacity:
            return
        self.records.append(TraceRecord(cycle=cycle, source=source, kind=kind, detail=detail))

    def filter(self, kind: Optional[str] = None, source: Optional[str] = None) -> List[TraceRecord]:
        """Return records matching the given kind and/or source."""
        result = []
        for record in self.records:
            if kind is not None and record.kind != kind:
                continue
            if source is not None and record.source != source:
                continue
            result.append(record)
        return result

    def kinds(self) -> Iterable[str]:
        return sorted({record.kind for record in self.records})

    def clear(self) -> None:
        self.records.clear()
