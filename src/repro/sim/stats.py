"""Statistics collection for the timing models.

The registry is intentionally simple: named counters, histograms, and
time-weighted utilization trackers.  Experiments read these to produce the
paper's tables (e.g. Table 5 reports Data-channel utilization as a percentage
of total cycles).

The stat objects are flyweights: hot-path models call
``registry.counter(name)`` **once at construction** and keep the returned
handle, so recording a sample is a single attribute update with no
string-keyed lookup.  Because handles may be bound eagerly (before any event
touches them), :meth:`StatsRegistry.snapshot` and
:meth:`StatsRegistry.to_dict` skip stats that never recorded anything —
results are therefore independent of when (or whether) a model bound its
handles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import AnalysisError, SimulationError


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Streaming histogram with mean/min/max/percentile support.

    Percentile queries sort the samples; the sorted view is cached and
    invalidated by :meth:`record`, so repeated percentile queries between
    records cost one sort total.
    """

    __slots__ = ("name", "samples", "_sorted")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[float] = []
        self._sorted: Optional[List[float]] = None

    def record(self, value: float) -> None:
        self.samples.append(float(value))
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return self.total / len(self.samples) if self.samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def percentile(self, fraction: float) -> float:
        """Return the ``fraction`` (0..1) percentile of recorded samples."""
        if not self.samples:
            return 0.0
        ordered = self._sorted
        if ordered is None or len(ordered) != len(self.samples):
            ordered = self._sorted = sorted(self.samples)
        index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
        return ordered[index]


class UtilizationTracker:
    """Tracks how many cycles a shared resource was busy.

    Used for the wireless Data channel (Table 5) and for NoC links.
    """

    __slots__ = ("name", "busy_cycles", "busy_intervals")

    def __init__(self, name: str) -> None:
        self.name = name
        self.busy_cycles: int = 0
        self.busy_intervals: int = 0

    def add_busy(self, cycles: int) -> None:
        if cycles < 0:
            raise SimulationError("busy cycles must be non-negative")
        self.busy_cycles += cycles
        self.busy_intervals += 1

    def utilization(self, total_cycles: int) -> float:
        """Fraction of ``total_cycles`` the resource was busy."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / total_cycles)


@dataclass
class StatsRegistry:
    """Container for all statistics produced by one simulation run."""

    counters: Dict[str, Counter] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)
    utilizations: Dict[str, UtilizationTracker] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name)
        return self.histograms[name]

    def utilization(self, name: str) -> UtilizationTracker:
        if name not in self.utilizations:
            self.utilizations[name] = UtilizationTracker(name)
        return self.utilizations[name]

    def counter_value(self, name: str, default: int = 0) -> int:
        counter = self.counters.get(name)
        return counter.value if counter is not None else default

    def snapshot(self) -> Dict[str, float]:
        """Flatten all statistics into a plain dictionary for reporting.

        Stats that never recorded anything (zero counters, empty histograms,
        trackers with no busy intervals) are omitted: they are artifacts of
        eagerly bound flyweight handles, and omitting them keeps snapshots
        identical whether handles were bound eagerly or on first use.
        """
        flat: Dict[str, float] = {}
        for name, counter in self.counters.items():
            if counter.value:
                flat[f"counter/{name}"] = counter.value
        for name, histogram in self.histograms.items():
            if histogram.samples:
                flat[f"hist/{name}/count"] = histogram.count
                flat[f"hist/{name}/mean"] = histogram.mean
        for name, tracker in self.utilizations.items():
            if tracker.busy_intervals:
                flat[f"util/{name}/busy_cycles"] = tracker.busy_cycles
        return flat

    def to_dict(self) -> Dict[str, object]:
        """Serialize every statistic (JSON-safe; inverse of :meth:`from_dict`).

        Histogram samples are stored in full so reconstructed registries
        answer mean/percentile queries identically to the originals — the
        property sweeps rely on when results cross a process boundary or
        come back from the on-disk cache.  Untouched stats are skipped for
        the same reason they are skipped in :meth:`snapshot`.
        """
        return {
            "counters": {
                name: counter.value for name, counter in self.counters.items() if counter.value
            },
            "histograms": {
                name: list(hist.samples) for name, hist in self.histograms.items() if hist.samples
            },
            "utilizations": {
                name: {"busy_cycles": t.busy_cycles, "busy_intervals": t.busy_intervals}
                for name, t in self.utilizations.items()
                if t.busy_intervals
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "StatsRegistry":
        """Rebuild a registry serialized with :meth:`to_dict`."""
        registry = cls()
        for name, value in (payload.get("counters") or {}).items():
            registry.counter(name).add(int(value))
        for name, samples in (payload.get("histograms") or {}).items():
            registry.histogram(name).samples = [float(s) for s in samples]
        for name, entry in (payload.get("utilizations") or {}).items():
            tracker = registry.utilization(name)
            tracker.busy_cycles = int(entry["busy_cycles"])
            tracker.busy_intervals = int(entry["busy_intervals"])
        return registry

    def merge(self, other: "StatsRegistry") -> None:
        """Accumulate another registry into this one (used by sweeps)."""
        for name, counter in other.counters.items():
            self.counter(name).add(counter.value)
        for name, histogram in other.histograms.items():
            mine = self.histogram(name)
            mine.samples.extend(histogram.samples)
            mine._sorted = None
        for name, tracker in other.utilizations.items():
            mine_u = self.utilization(name)
            mine_u.busy_cycles += tracker.busy_cycles
            mine_u.busy_intervals += tracker.busy_intervals


def geometric_mean(values: List[float]) -> float:
    """Geometric mean used throughout the paper's evaluation section."""
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        if value <= 0:
            raise AnalysisError("geometric mean requires positive values")
        product *= value
    return product ** (1.0 / len(values))


def arithmetic_mean(values: List[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)
