"""Event objects managed by the simulation engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Tuple


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, priority, seq)``.  ``seq`` is a
    monotonically increasing tie-breaker assigned by the simulator so that
    events scheduled earlier run earlier at the same cycle, which keeps every
    simulation fully deterministic.
    """

    time: int
    priority: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: Tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when it is popped."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback unless the event was cancelled."""
        if not self.cancelled:
            self.callback(*self.args)
