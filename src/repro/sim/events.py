"""Event objects managed by the simulation engine."""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple


class Event:
    """Handle to one scheduled callback.

    The simulator's heap holds plain ``(time, priority, seq, event)`` tuples
    that compare in C; ``seq`` is a unique monotonically increasing
    tie-breaker assigned by the simulator, so comparisons never reach the
    event object itself and ordering stays ``(time, priority, seq)`` — events
    scheduled earlier run earlier at the same cycle, which keeps every
    simulation fully deterministic.  The ``Event`` is the mutable half of the
    entry: callback, args, and the cancellation flag, in a ``__slots__``
    record so the per-event allocation stays cheap.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: int,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
        sim: Optional[object] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        # Back-reference so cancellation can be counted (and compacted away)
        # by the owning simulator; cleared when the event leaves the queue.
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when it is popped."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._note_cancelled()
