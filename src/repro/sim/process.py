"""Generator-based processes layered on the event engine.

The machine layer drives workload threads itself, but a lightweight process
abstraction is useful for unit tests and for auxiliary activities (e.g. a
background traffic injector).  A process is a generator that yields
:class:`Timeout` or :class:`WaitCondition` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional

from repro.errors import SimulationError
from repro.sim.engine import Simulator


@dataclass
class Timeout:
    """Suspend the process for a fixed number of cycles."""

    cycles: int


class WaitCondition:
    """Suspend the process until :meth:`notify` is called.

    The value passed to ``notify`` becomes the result of the ``yield``.
    """

    def __init__(self) -> None:
        self._waiters: List[SimProcess] = []
        self._fired = False
        self._value: Any = None

    @property
    def fired(self) -> bool:
        return self._fired

    def add_waiter(self, process: "SimProcess") -> None:
        self._waiters.append(process)

    def notify(self, value: Any = None) -> None:
        """Wake every waiting process at the current cycle."""
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            process._resume(value)


class SimProcess:
    """Drives a generator coroutine over a simulator."""

    def __init__(
        self,
        sim: Simulator,
        generator: Generator,
        name: str = "process",
        on_finish: Optional[Callable[[Any], None]] = None,
    ) -> None:
        self.sim = sim
        self.generator = generator
        self.name = name
        self.finished = False
        self.result: Any = None
        self._on_finish = on_finish

    def start(self, delay: int = 0) -> "SimProcess":
        self.sim.schedule(delay, self._resume, None)
        return self

    # ------------------------------------------------------------------ core
    def _resume(self, value: Any) -> None:
        if self.finished:
            raise SimulationError(f"process {self.name!r} resumed after finishing")
        try:
            request = self.generator.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            if self._on_finish is not None:
                self._on_finish(self.result)
            return
        self._dispatch(request)

    def _dispatch(self, request: Any) -> None:
        if isinstance(request, Timeout):
            if request.cycles < 0:
                raise SimulationError("Timeout cycles must be non-negative")
            self.sim.schedule(request.cycles, self._resume, None)
        elif isinstance(request, WaitCondition):
            if request.fired:
                self.sim.schedule(0, self._resume, request._value)
            else:
                request.add_waiter(self)
        elif isinstance(request, int):
            self.sim.schedule(request, self._resume, None)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported request {request!r}"
            )
