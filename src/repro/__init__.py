"""WiSync reproduction library.

A behavioural/timing reproduction of *WiSync: An Architecture for Fast
Synchronization through On-Chip Wireless Communication* (ASPLOS 2016): a
manycore timing model with a conventional cache-coherent memory hierarchy, a
wired 2D mesh, and the WiSync wireless Broadcast Memory with its Data and
Tone channels, plus the synchronization library, workloads, and experiment
harness needed to regenerate every table and figure of the paper's
evaluation.

Typical use::

    from repro import Manycore, SyncFactory, wisync
    from repro.isa.operations import Compute

    machine = Manycore(wisync(num_cores=16))
    program = machine.new_program("demo")
    sync = SyncFactory(program)
    barrier = sync.create_barrier(num_threads=16)

    def body(ctx):
        yield Compute(100)
        yield from barrier.wait(ctx)

    for _ in range(16):
        program.add_thread(body)
    result = machine.run()
    print(result.summary())
"""

from repro.config import (
    BackoffConfig,
    BroadcastMemoryConfig,
    CacheConfig,
    CoreConfig,
    DataChannelConfig,
    MachineConfig,
    MemoryConfig,
    NocConfig,
    SyncConfig,
    ToneChannelConfig,
    default_machine_config,
)
from repro.machine import (
    Manycore,
    Program,
    SimResult,
    baseline,
    baseline_plus,
    config_by_name,
    paper_configurations,
    sensitivity_variants,
    wisync,
    wisync_not,
)
from repro.analysis import MetricFrame, Report, compare_frames, load_frame
from repro.runner import (
    DistributedExecutor,
    ParallelExecutor,
    ResultCache,
    Runner,
    RunSpec,
    SerialExecutor,
    SweepResult,
    SweepSpec,
    register_workload,
    workload_names,
)
from repro.sync import SyncFactory

__version__ = "1.2.0"

__all__ = [
    "__version__",
    # configuration
    "MachineConfig",
    "CoreConfig",
    "CacheConfig",
    "NocConfig",
    "MemoryConfig",
    "BroadcastMemoryConfig",
    "DataChannelConfig",
    "ToneChannelConfig",
    "BackoffConfig",
    "SyncConfig",
    "default_machine_config",
    # machine
    "Manycore",
    "Program",
    "SimResult",
    "baseline",
    "baseline_plus",
    "wisync",
    "wisync_not",
    "paper_configurations",
    "sensitivity_variants",
    "config_by_name",
    # synchronization
    "SyncFactory",
    # declarative run API
    "RunSpec",
    "SweepSpec",
    "Runner",
    "SweepResult",
    "SerialExecutor",
    "ParallelExecutor",
    "DistributedExecutor",
    "ResultCache",
    "register_workload",
    "workload_names",
    # analysis API
    "MetricFrame",
    "Report",
    "compare_frames",
    "load_frame",
]
