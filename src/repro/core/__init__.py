"""WiSync core architecture: the paper's primary contribution.

This package models the per-core Broadcast Memory (BM), the BM controller
with its Write Completion and Atomicity Failure bits, TLB-based BM address
translation with PID-tagged chunk protection, the tone controller with its
AllocB/ActiveB tables, and the :class:`~repro.core.fabric.BroadcastFabric`
that connects all of it to the wireless Data and Tone channels.
"""

from repro.core.allocator import BmAllocator
from repro.core.bm_controller import BmController, RmwResult
from repro.core.broadcast_memory import BmEntry, BroadcastMemory
from repro.core.fabric import BroadcastFabric
from repro.core.node import WiSyncNode
from repro.core.tone_controller import ToneController
from repro.core.translation import BmTlb, PageMapping

__all__ = [
    "BmEntry",
    "BroadcastMemory",
    "BmAllocator",
    "BmController",
    "RmwResult",
    "BroadcastFabric",
    "WiSyncNode",
    "ToneController",
    "BmTlb",
    "PageMapping",
]
