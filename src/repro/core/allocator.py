"""Broadcast-memory entry allocation (Section 4.4).

Allocation is chunk-granular (one 64-bit entry per chunk) so that multiple
programs can share physical pages without page-level fragmentation.  When
the BM runs out of space, further variables are transparently allocated in
regular cached memory and accessed through the wired network — the fallback
the paper uses for dedup and fluidanimate, whose lock arrays exceed 16 KB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.config import BroadcastMemoryConfig
from repro.errors import AllocationError


@dataclass(frozen=True)
class BmAllocation:
    """Result of an allocation request."""

    base_addr: int
    words: int
    pid: int
    spilled: bool = False

    @property
    def addresses(self) -> List[int]:
        return list(range(self.base_addr, self.base_addr + self.words))


@dataclass
class BmAllocator:
    """First-fit allocator over the BM entry space with spill-over support.

    Spilled allocations are given addresses at or above ``spill_base`` (one
    past the last physical BM entry); callers route accesses to such
    addresses through the cached-memory hierarchy instead of the wireless
    network.
    """

    config: BroadcastMemoryConfig
    _owner: Dict[int, int] = field(default_factory=dict)       # addr -> pid
    _free_spill_addr: int = field(default=-1)
    _per_pid: Dict[int, Set[int]] = field(default_factory=dict)
    spilled_allocations: int = 0

    def __post_init__(self) -> None:
        if self._free_spill_addr < 0:
            self._free_spill_addr = self.spill_base

    @property
    def capacity(self) -> int:
        return self.config.num_entries

    @property
    def spill_base(self) -> int:
        return self.config.num_entries

    @property
    def allocated_count(self) -> int:
        return len(self._owner)

    @property
    def free_count(self) -> int:
        return self.capacity - len(self._owner)

    def is_spilled(self, addr: int) -> bool:
        return addr >= self.spill_base

    def owner_of(self, addr: int) -> Optional[int]:
        return self._owner.get(addr)

    # ------------------------------------------------------------ allocation
    def allocate(self, pid: int, words: int = 1, allow_spill: bool = True) -> BmAllocation:
        """Allocate ``words`` consecutive entries for ``pid``.

        Falls back to spill addresses when the BM cannot hold the request and
        ``allow_spill`` is set; raises :class:`AllocationError` otherwise.
        """
        if words < 1:
            raise AllocationError("allocation must request at least one word")
        base = self._find_free_run(words)
        if base is not None:
            for addr in range(base, base + words):
                self._owner[addr] = pid
            self._per_pid.setdefault(pid, set()).update(range(base, base + words))
            return BmAllocation(base_addr=base, words=words, pid=pid, spilled=False)
        if not allow_spill:
            raise AllocationError(
                f"broadcast memory full: cannot allocate {words} entries for process {pid}"
            )
        base = self._free_spill_addr
        self._free_spill_addr += words
        self.spilled_allocations += 1
        self._per_pid.setdefault(pid, set()).update(range(base, base + words))
        return BmAllocation(base_addr=base, words=words, pid=pid, spilled=True)

    def free(self, pid: int, base_addr: int, words: int = 1) -> None:
        """Release an allocation (spilled ranges are simply forgotten)."""
        owned = self._per_pid.get(pid, set())
        for addr in range(base_addr, base_addr + words):
            if addr < self.spill_base:
                if self._owner.get(addr) != pid:
                    raise AllocationError(
                        f"process {pid} cannot free BM entry {addr} it does not own"
                    )
                del self._owner[addr]
            owned.discard(addr)

    def free_all(self, pid: int) -> int:
        """Release every allocation of a terminating process; returns count."""
        owned = self._per_pid.pop(pid, set())
        released = 0
        for addr in owned:
            if addr < self.spill_base and self._owner.get(addr) == pid:
                del self._owner[addr]
                released += 1
        return released

    def allocations_of(self, pid: int) -> Set[int]:
        return set(self._per_pid.get(pid, set()))

    # ------------------------------------------------------------- internals
    def _find_free_run(self, words: int) -> Optional[int]:
        """First-fit search for ``words`` consecutive free entries."""
        run_start = 0
        run_length = 0
        for addr in range(self.capacity):
            if addr in self._owner:
                run_start = addr + 1
                run_length = 0
                continue
            run_length += 1
            if run_length >= words:
                return run_start
        return None
