"""Per-core WiSync hardware bundle (Figure 2).

Each node of the manycore contains the core with its caches (modelled in
:mod:`repro.mem` / :mod:`repro.cpu`), plus the WiSync additions bundled here:
the transceiver (PHY + MAC), the Broadcast-Memory controller with its WCB and
AFB bits, and the tone controller with its AllocB/ActiveB tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bm_controller import BmController
from repro.core.tone_controller import ToneController
from repro.wireless.transceiver import Transceiver


@dataclass
class WiSyncNode:
    """The wireless-synchronization hardware attached to one core."""

    node_id: int
    transceiver: Transceiver
    bm_controller: BmController
    tone_controller: ToneController

    def describe(self) -> str:
        """One-line summary used by examples and debugging output."""
        return (
            f"node {self.node_id}: "
            f"{self.transceiver.sent_messages} wireless messages sent, "
            f"{self.transceiver.collisions_seen} collisions, "
            f"{self.bm_controller.rmws_issued} BM RMWs "
            f"({self.bm_controller.rmw_failures} atomicity failures), "
            f"{self.tone_controller.barriers_initiated} tone barriers initiated"
        )
