"""The Broadcast Memory (BM).

Every node has a small (default 16 KB) memory holding the program variables
declared ``broadcast``.  All BMs hold the exact same, replicated contents and
are kept consistent by the wireless Data channel, which provides a chip-wide
total order of writes (Section 3.1).  Because the contents are identical on
every node at all times, this class models the *replicated contents once*;
per-node state that genuinely differs between nodes (Armed/Arrived bits,
WCB/AFB) lives in the per-node controllers.

Each 64-bit entry is tagged with the PID of the process that allocated it,
and every access checks the tag (Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.config import BroadcastMemoryConfig
from repro.errors import MemoryError_, ProtectionError


@dataclass
class BmEntry:
    """One 64-bit BM entry with its protection tag."""

    value: int = 0
    pid: Optional[int] = None
    allocated: bool = False
    tone_capable: bool = False


class BroadcastMemory:
    """Replicated broadcast-memory contents plus per-entry PID tags."""

    def __init__(self, config: BroadcastMemoryConfig) -> None:
        self.config = config
        self._entries: Dict[int, BmEntry] = {}
        self._value_mask = (1 << config.entry_bits) - 1

    # ------------------------------------------------------------ structure
    @property
    def num_entries(self) -> int:
        return self.config.num_entries

    def entry(self, addr: int) -> BmEntry:
        entry = self._entries.get(addr)
        if entry is None:
            self._check_addr(addr)
            entry = self._entries[addr] = BmEntry()
        return entry

    def allocated_entries(self) -> Iterator[int]:
        return iter(sorted(addr for addr, e in self._entries.items() if e.allocated))

    def allocated_count(self) -> int:
        return sum(1 for e in self._entries.values() if e.allocated)

    # ------------------------------------------------------------ allocation
    def allocate_entry(self, addr: int, pid: int, tone_capable: bool = False) -> None:
        """Tag an entry as owned by ``pid`` (performed in every BM at once)."""
        entry = self.entry(addr)
        if entry.allocated:
            raise MemoryError_(f"BM entry {addr} is already allocated (pid={entry.pid})")
        entry.allocated = True
        entry.pid = pid
        entry.tone_capable = tone_capable
        entry.value = 0

    def free_entry(self, addr: int, pid: int) -> None:
        entry = self.entry(addr)
        if not entry.allocated:
            raise MemoryError_(f"BM entry {addr} is not allocated")
        if entry.pid != pid:
            raise ProtectionError(
                f"process {pid} cannot free BM entry {addr} owned by process {entry.pid}"
            )
        self._entries[addr] = BmEntry()

    # --------------------------------------------------------------- access
    def read(self, addr: int, pid: Optional[int] = None) -> int:
        """Protected read of an entry's 64-bit value."""
        entry = self.entry(addr)
        self._check_protection(addr, entry, pid)
        return entry.value

    def write(self, addr: int, value: int, pid: Optional[int] = None) -> None:
        """Protected write (invoked when a broadcast completes)."""
        entry = self.entry(addr)
        self._check_protection(addr, entry, pid)
        entry.value = value & self._value_mask

    def toggle(self, addr: int) -> int:
        """Hardware toggle used by the tone controller at barrier completion.

        The location can only take the values zero and non-zero
        (Section 4.2.2); toggling maps 0 -> 1 and non-zero -> 0.
        """
        entry = self.entry(addr)
        entry.value = 0 if entry.value else 1
        return entry.value

    def is_tone_capable(self, addr: int) -> bool:
        return self.entry(addr).tone_capable

    def owner_pid(self, addr: int) -> Optional[int]:
        return self.entry(addr).pid

    # ------------------------------------------------------------- internals
    def _check_addr(self, addr: int) -> None:
        if not 0 <= addr < self.config.num_entries:
            raise MemoryError_(
                f"BM address {addr} out of range (BM has {self.config.num_entries} entries)"
            )

    def _check_protection(self, addr: int, entry: BmEntry, pid: Optional[int]) -> None:
        if pid is None:
            return
        if not entry.allocated:
            raise ProtectionError(f"process {pid} accessed unallocated BM entry {addr}")
        if entry.pid != pid:
            raise ProtectionError(
                f"PID mismatch on BM entry {addr}: tag={entry.pid}, accessor={pid}"
            )
