"""The broadcast fabric: everything the wireless network keeps consistent.

``BroadcastFabric`` owns the replicated Broadcast Memory, the BM allocator,
the Data and Tone channels, and the per-node hardware bundles.  It is the
single point through which BM values change, which is what gives broadcast
writes their chip-wide total order (Section 3.1, Figure 1) and what lets the
fabric implement the Atomicity Failure Bit and the tone-barrier protocol.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.config import MachineConfig
from repro.core.allocator import BmAllocation, BmAllocator
from repro.core.bm_controller import BmController
from repro.core.broadcast_memory import BroadcastMemory
from repro.core.node import WiSyncNode
from repro.core.tone_controller import ToneController
from repro.core.translation import BmTlb
from repro.errors import WirelessError
from repro.sim.engine import Simulator
from repro.sim.rng import DeterministicRng
from repro.sim.stats import StatsRegistry
from repro.sim.trace import Tracer
from repro.wireless.backoff import make_backoff
from repro.wireless.channel import DataChannel, WirelessMessage
from repro.wireless.tone import ToneChannel
from repro.wireless.transceiver import Transceiver


class _Waiter:
    __slots__ = ("predicate", "callback")

    def __init__(
        self, predicate: Callable[[int], bool], callback: Callable[[int], None]
    ) -> None:
        self.predicate = predicate
        self.callback = callback


class _PendingRmw:
    __slots__ = ("node", "addr", "failed", "on_fail")

    def __init__(
        self, node: int, addr: int, on_fail: Optional[Callable[[], None]] = None
    ) -> None:
        self.node = node
        self.addr = addr
        self.failed = False
        self.on_fail = on_fail


class BroadcastFabric:
    """Chip-wide wireless synchronization fabric."""

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[Tracer] = None,
        rng: Optional[DeterministicRng] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.stats = stats if stats is not None else StatsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.rng = rng if rng is not None else DeterministicRng(config.seed, "fabric")
        self.memory = BroadcastMemory(config.bm)
        self.allocator = BmAllocator(config.bm)
        self.tlb = BmTlb(config.bm)
        self.data_channel = DataChannel(sim, config.data_channel, self.stats, self.tracer)
        self.tone_channel: Optional[ToneChannel] = None
        if config.tone_channel.enabled:
            self.tone_channel = ToneChannel(sim, config.tone_channel, self.stats, self.tracer)
            self.tone_channel.add_completion_listener(self._on_tone_complete)
        self.data_channel.add_listener(self._on_message_delivered)
        self.nodes: List[WiSyncNode] = []
        self._waiters: Dict[int, List[_Waiter]] = {}
        self._pending_rmw: Dict[int, _PendingRmw] = {}
        #: Insertion-ordered token index per address (dict-as-ordered-set, so
        #: failure notification order is explicit and snapshot-stable).
        self._pending_by_addr: Dict[int, Dict[int, None]] = {}
        self._next_token = 0
        self.total_writes = 0
        # Flyweight stat handles for the per-broadcast-write hot path.
        self._writes_applied_counter = self.stats.counter("bm/writes_applied")

    # -------------------------------------------------------------- assembly
    def create_node(self, node_id: int) -> WiSyncNode:
        """Instantiate the WiSync hardware bundle for one core."""
        backoff = make_backoff(self.config.backoff, self.rng.child(f"mac{node_id}"))
        transceiver = Transceiver(
            node_id=node_id,
            channel=self.data_channel,
            backoff=backoff,
            config=self.config.data_channel,
            stats=self.stats,
        )
        bm_controller = BmController(node_id, self, transceiver, self.config.bm)
        tone_controller = ToneController(
            node_id, self.tone_channel, transceiver, self.config.tone_channel
        )
        node = WiSyncNode(
            node_id=node_id,
            transceiver=transceiver,
            bm_controller=bm_controller,
            tone_controller=tone_controller,
        )
        self.nodes.append(node)
        return node

    def node(self, node_id: int) -> WiSyncNode:
        return self.nodes[node_id]

    # ------------------------------------------------------------ allocation
    def allocate(
        self,
        pid: int,
        words: int = 1,
        tone_capable: bool = False,
        participants: Optional[Sequence[int]] = None,
    ) -> BmAllocation:
        """Allocate BM entries in every BM and, if requested, a tone barrier.

        Tone-capable allocations create an AllocB entry in every node's tone
        controller; the entry is armed on the nodes listed in
        ``participants`` (Section 4.4: the runtime must know the
        participants of a tone barrier in advance).
        """
        allocation = self.allocator.allocate(pid, words)
        if allocation.spilled:
            self.stats.counter("bm/spilled_allocations").add()
            return allocation
        for addr in allocation.addresses:
            self.memory.allocate_entry(addr, pid, tone_capable and addr == allocation.base_addr)
        if tone_capable:
            if self.tone_channel is None:
                raise WirelessError("tone barrier allocation requires the tone channel")
            armed_set = set(participants) if participants is not None else set(range(len(self.nodes)))
            for node in self.nodes:
                node.tone_controller.allocate_barrier(
                    allocation.base_addr, armed=node.node_id in armed_set
                )
        self.stats.counter("bm/allocations").add()
        return allocation

    def free(self, pid: int, base_addr: int, words: int = 1) -> None:
        if self.allocator.is_spilled(base_addr):
            self.allocator.free(pid, base_addr, words)
            return
        tone_capable = self.memory.is_tone_capable(base_addr)
        for addr in range(base_addr, base_addr + words):
            self.memory.free_entry(addr, pid)
        if tone_capable:
            for node in self.nodes:
                node.tone_controller.deallocate_barrier(base_addr)
        self.allocator.free(pid, base_addr, words)

    def is_spilled(self, addr: int) -> bool:
        return self.allocator.is_spilled(addr)

    # ----------------------------------------------------------- value plane
    def apply_store(
        self,
        addr: int,
        value: int,
        sender: int,
        cycle: int,
        pid: Optional[int] = None,
    ) -> None:
        """A broadcast write performed: update the replicated BM contents.

        Every other node's pending RMW on this address loses atomicity
        (AFB), and local spinners observe the new value one BM round trip
        after delivery.
        """
        self.memory.write(addr, value, pid)
        self.total_writes += 1
        self._writes_applied_counter.add()
        if addr in self._pending_by_addr:
            self._fail_pending(addr, sender)
        if addr in self._waiters:
            self._wake_waiters(addr, value, cycle)

    def register_pending_rmw(
        self, node: int, addr: int, on_fail: Optional[Callable[[], None]] = None
    ) -> int:
        token = self._next_token
        self._next_token += 1
        self._pending_rmw[token] = _PendingRmw(node=node, addr=addr, on_fail=on_fail)
        tokens = self._pending_by_addr.get(addr)
        if tokens is None:
            tokens = self._pending_by_addr[addr] = {}
        tokens[token] = None
        return token

    def consume_pending_rmw(self, token: int) -> bool:
        pending = self._pending_rmw.pop(token, None)
        if pending is None:
            raise WirelessError(f"unknown pending RMW token {token}")
        tokens = self._pending_by_addr.get(pending.addr)
        if tokens is not None:
            tokens.pop(token, None)
            if not tokens:
                del self._pending_by_addr[pending.addr]
        return pending.failed

    def _fail_pending(self, addr: int, sender: int) -> None:
        # Insertion-ordered dict keys: tokens are notified in registration
        # order, which is what the pinned golden event sequences encode.
        for token in list(self._pending_by_addr.get(addr, ())):
            pending = self._pending_rmw.get(token)
            if pending is None or pending.node == sender:
                continue
            newly_failed = not pending.failed
            pending.failed = True
            if newly_failed and pending.on_fail is not None:
                # Let the issuing node's BM controller abort the now-doomed
                # broadcast (it may already be on the air, in which case the
                # abort is a no-op and the normal completion path reports AFB).
                pending.on_fail()

    # -------------------------------------------------------------- spinning
    def wait_until(
        self,
        addr: int,
        predicate: Callable[[int], bool],
        callback: Callable[[int], None],
    ) -> None:
        """Invoke ``callback(value)`` when the BM location satisfies ``predicate``.

        BM spinning is local (each node polls its own replica), so a waiter
        wakes one BM round trip after the broadcast write that satisfied it —
        no coherence traffic and no serialization among waiters.
        """
        value = self.memory.entry(addr).value
        if predicate(value):
            self.sim.schedule(self.config.bm.round_trip, callback, value)
            return
        self._waiters.setdefault(addr, []).append(_Waiter(predicate=predicate, callback=callback))

    def waiter_count(self, addr: int) -> int:
        return len(self._waiters.get(addr, []))

    def _wake_waiters(self, addr: int, value: int, cycle: int) -> None:
        waiters = self._waiters.get(addr)
        if not waiters:
            return
        woken = [w for w in waiters if w.predicate(value)]
        remaining = [w for w in waiters if not w.predicate(value)]
        if remaining:
            self._waiters[addr] = remaining
        else:
            self._waiters.pop(addr, None)
        for waiter in woken:
            delay = max(0, cycle - self.sim.now) + self.config.bm.round_trip
            self.sim.schedule(delay, waiter.callback, value)

    # --------------------------------------------------------- tone barriers
    def _on_message_delivered(self, message: WirelessMessage, cycle: int) -> None:
        if not message.tone_bit:
            return
        self._activate_tone_barrier(message.bm_addr, message.sender, cycle)

    def _activate_tone_barrier(self, addr: int, sender: int, cycle: int) -> None:
        if self.tone_channel is None:
            return
        if self.tone_channel.is_active(addr):
            # A redundant activation from a racing near-simultaneous first
            # arrival; the barrier is already under way.
            return
        emitters: Set[int] = set()
        for node in self.nodes:
            if node.tone_controller.on_barrier_activated(addr):
                emitters.add(node.node_id)
        self.tone_channel.activate(addr, emitters)

    def _on_tone_complete(self, addr: int, cycle: int) -> None:
        """All participants arrived: toggle the location in every BM."""
        value = self.memory.toggle(addr)
        for node in self.nodes:
            node.tone_controller.on_barrier_complete(addr)
        self.stats.counter("bm/tone_toggles").add()
        self._wake_waiters(addr, value, cycle)
