"""TLB-based broadcast-memory address translation (Section 4.4).

Programs address the BM through virtual addresses translated page-by-page in
the TLB, but — to avoid page-level fragmentation in such a small memory —
different programs share physical BM pages and own non-overlapping 64-bit
chunks of them.  Protection is enforced by comparing the accessing process's
PID to the per-chunk PID tag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import BroadcastMemoryConfig
from repro.errors import TranslationError


@dataclass(frozen=True)
class PageMapping:
    """One TLB entry: a virtual BM page mapped to a physical BM page."""

    pid: int
    virtual_page: int
    physical_page: int
    writable: bool = True


@dataclass
class BmTlb:
    """Per-process page table plus a flat TLB model for the BM address space.

    Virtual BM addresses are entry-granular: virtual address ``v`` of process
    ``p`` is split into a virtual page number (``v // entries_per_page``) and
    an offset within the page.  The translation only remaps the page; chunk
    ownership inside the physical page is enforced separately by the PID tags
    in :class:`~repro.core.broadcast_memory.BroadcastMemory`.
    """

    config: BroadcastMemoryConfig
    _mappings: Dict[Tuple[int, int], PageMapping] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    @property
    def entries_per_page(self) -> int:
        return self.config.entries_per_page

    def map_page(self, pid: int, virtual_page: int, physical_page: int, writable: bool = True) -> PageMapping:
        if not 0 <= physical_page < self.config.num_pages:
            raise TranslationError(
                f"physical BM page {physical_page} out of range (BM has {self.config.num_pages} pages)"
            )
        mapping = PageMapping(pid=pid, virtual_page=virtual_page,
                              physical_page=physical_page, writable=writable)
        self._mappings[(pid, virtual_page)] = mapping
        return mapping

    def unmap_page(self, pid: int, virtual_page: int) -> None:
        self._mappings.pop((pid, virtual_page), None)

    def mappings_for(self, pid: int) -> List[PageMapping]:
        return [m for (p, _), m in self._mappings.items() if p == pid]

    def translate(self, pid: int, virtual_addr: int, for_write: bool = False) -> int:
        """Translate a virtual BM entry address to a physical BM entry address."""
        virtual_page = virtual_addr // self.entries_per_page
        offset = virtual_addr % self.entries_per_page
        mapping = self._mappings.get((pid, virtual_page))
        if mapping is None:
            self.misses += 1
            raise TranslationError(
                f"process {pid} has no BM mapping for virtual page {virtual_page}"
            )
        if for_write and not mapping.writable:
            raise TranslationError(
                f"process {pid} attempted to write read-only BM page {virtual_page}"
            )
        self.hits += 1
        return mapping.physical_page * self.entries_per_page + offset

    def reverse_translate(self, pid: int, physical_addr: int) -> Optional[int]:
        """Find the virtual address of a physical entry for ``pid`` (if mapped)."""
        physical_page = physical_addr // self.entries_per_page
        offset = physical_addr % self.entries_per_page
        for (p, virtual_page), mapping in self._mappings.items():
            if p == pid and mapping.physical_page == physical_page:
                return virtual_page * self.entries_per_page + offset
        return None
