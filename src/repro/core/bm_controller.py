"""Per-node Broadcast-Memory controller.

Implements the access semantics of Section 4.2.1: plain loads read the local
BM and always succeed; stores first perform the global wireless broadcast
(retrying on collisions) and only then update the local BM and set the Write
Completion Bit (WCB); atomic read-modify-write instructions read the local
BM, broadcast the updated value, and fail (Atomicity Failure Bit, AFB) if a
remote write to the same location arrives in between.
"""

from __future__ import annotations

from typing import Callable, NamedTuple, Optional, Tuple

from repro.config import BroadcastMemoryConfig
from repro.errors import MemoryError_
from repro.isa.operations import RmwKind
from repro.mem.hierarchy import apply_rmw
from repro.wireless.transceiver import Transceiver
from repro.wireless.channel import WirelessMessage


class RmwResult(NamedTuple):
    """Outcome of a BM read-modify-write instruction.

    A NamedTuple (not a frozen dataclass): one is created per BM RMW, which
    is the single most frequent operation in the synchronization-heavy
    workloads.
    """

    old_value: int
    success: bool
    afb: bool
    completion_cycle: int


class BmController:
    """Front end between one core's pipeline and the wireless fabric."""

    def __init__(
        self,
        node_id: int,
        fabric: "BroadcastFabric",
        transceiver: Transceiver,
        config: BroadcastMemoryConfig,
    ) -> None:
        self.node_id = node_id
        self.fabric = fabric
        self.transceiver = transceiver
        self.config = config
        #: Write Completion Bit: set when the last store/RMW fully performed.
        self.wcb: bool = False
        #: Atomicity Failure Bit of the last RMW instruction.
        self.afb: bool = False
        self.stores_issued = 0
        self.rmws_issued = 0
        self.rmw_failures = 0

    # ----------------------------------------------------------------- loads
    def load(self, addr: int, pid: Optional[int] = None) -> Tuple[int, int]:
        """Plain load; returns ``(value, latency_cycles)``."""
        value = self.fabric.memory.read(addr, pid)
        return value, self.config.round_trip

    def bulk_load(self, addr: int, pid: Optional[int] = None) -> Tuple[Tuple[int, ...], int]:
        """Bulk load of four consecutive entries from the local BM."""
        values = tuple(self.fabric.memory.read(addr + i, pid) for i in range(4))
        return values, self.config.round_trip

    # ---------------------------------------------------------------- stores
    def store(
        self,
        addr: int,
        value: int,
        on_done: Callable[[int], None],
        pid: Optional[int] = None,
    ) -> None:
        """Broadcast store; ``on_done(completion_cycle)`` fires when performed."""
        self.wcb = False
        self.stores_issued += 1

        def _complete(message: WirelessMessage, cycle: int) -> None:
            self.fabric.apply_store(addr, value, self.node_id, cycle, pid)
            self.wcb = True
            on_done(cycle)

        self.transceiver.send_store(addr, value, _complete)

    def bulk_store(
        self,
        addr: int,
        values: Tuple[int, int, int, int],
        on_done: Callable[[int], None],
        pid: Optional[int] = None,
    ) -> None:
        """Bulk store of four consecutive entries in one 15-cycle message."""
        if len(values) != 4:
            raise MemoryError_("bulk stores transfer exactly four 64-bit words")
        self.wcb = False
        self.stores_issued += 1

        def _complete(message: WirelessMessage, cycle: int) -> None:
            for offset, value in enumerate(values):
                self.fabric.apply_store(addr + offset, value, self.node_id, cycle, pid)
            self.wcb = True
            on_done(cycle)

        self.transceiver.send_bulk_store(addr, tuple(values), _complete)

    # --------------------------------------------------------------- atomics
    def rmw(
        self,
        addr: int,
        kind: RmwKind,
        on_done: Callable[[RmwResult], None],
        operand: int = 1,
        expected: int = 0,
        pid: Optional[int] = None,
    ) -> None:
        """Atomic read-modify-write with AFB-based failure detection.

        ``on_done`` receives an :class:`RmwResult`.  For a CAS whose
        comparison fails, no wireless transfer is attempted (Figure 4b: the
        code simply retries after re-reading), so the result arrives after
        the local BM round trip.
        """
        self.rmws_issued += 1
        self.wcb = False
        self.afb = False
        old = self.fabric.memory.read(addr, pid)
        new, success = apply_rmw(kind, old, operand, expected)
        if not success:
            # CAS comparison failed: the instruction completes locally.
            completion = self.fabric.sim.now + self.config.round_trip
            self.wcb = True
            self.fabric.sim.schedule(
                self.config.round_trip,
                on_done,
                RmwResult(old_value=old, success=False, afb=False, completion_cycle=completion),
            )
            return
        state = {"settled": False, "ticket": None}

        def _finish(failed: bool, cycle: int) -> None:
            if state["settled"]:
                return
            state["settled"] = True
            self.afb = failed
            self.wcb = True
            if failed:
                self.rmw_failures += 1
            else:
                self.fabric.apply_store(addr, new, self.node_id, cycle, pid)
            on_done(
                RmwResult(
                    old_value=old,
                    success=not failed,
                    afb=failed,
                    completion_cycle=cycle,
                )
            )

        def _on_atomicity_failure() -> None:
            # A remote write to this address arrived before our broadcast
            # succeeded.  Abort the pending transmission if it has not
            # started; the instruction then terminates with AFB set without
            # ever occupying the Data channel (Section 4.2.1).
            ticket = state["ticket"]
            if ticket is not None and ticket.cancel():
                self.fabric.consume_pending_rmw(token)
                cycle = self.fabric.sim.now + self.config.round_trip
                self.fabric.sim.schedule(self.config.round_trip, _finish, True, cycle)

        def _complete(message: WirelessMessage, cycle: int) -> None:
            if state["settled"]:
                return
            failed = self.fabric.consume_pending_rmw(token)
            _finish(failed, cycle)

        token = self.fabric.register_pending_rmw(self.node_id, addr, _on_atomicity_failure)
        state["ticket"] = self.transceiver.send_store(addr, new, _complete)
