"""Per-node Broadcast-Memory controller.

Implements the access semantics of Section 4.2.1: plain loads read the local
BM and always succeed; stores first perform the global wireless broadcast
(retrying on collisions) and only then update the local BM and set the Write
Completion Bit (WCB); atomic read-modify-write instructions read the local
BM, broadcast the updated value, and fail (Atomicity Failure Bit, AFB) if a
remote write to the same location arrives in between.

In-flight operations live in an explicit pending-op registry (plain-data
records keyed by a per-controller op id) rather than in closures: every
callback the controller hands to the transceiver, the fabric, or the event
queue is a :class:`BmOpCallback` naming ``(node, op, method)``, which is
what lets the snapshot codec capture and reconstruct a checkpoint taken
mid-broadcast.
"""

from __future__ import annotations

from typing import Callable, Dict, NamedTuple, Optional, Tuple

from repro.config import BroadcastMemoryConfig
from repro.errors import MemoryError_
from repro.isa.operations import RmwKind
from repro.mem.hierarchy import apply_rmw
from repro.wireless.transceiver import SendTicket, Transceiver


class RmwResult(NamedTuple):
    """Outcome of a BM read-modify-write instruction.

    A NamedTuple (not a frozen dataclass): one is created per BM RMW, which
    is the single most frequent operation in the synchronization-heavy
    workloads.
    """

    old_value: int
    success: bool
    afb: bool
    completion_cycle: int


class PendingBmOp:
    """One in-flight store/bulk-store/RMW: plain data plus the completion."""

    __slots__ = (
        "op_id",
        "kind",
        "addr",
        "value",
        "values",
        "pid",
        "old",
        "new",
        "settled",
        "token",
        "ticket",
        "on_done",
    )

    def __init__(
        self,
        op_id: int,
        kind: str,
        addr: int,
        on_done: Callable,
        pid: Optional[int],
        value: int = 0,
        values: Tuple[int, ...] = (),
        old: int = 0,
        new: int = 0,
    ) -> None:
        self.op_id = op_id
        self.kind = kind  # "store" | "bulk" | "rmw"
        self.addr = addr
        self.value = value
        self.values = values
        self.pid = pid
        self.old = old
        self.new = new
        self.settled = False
        self.token: Optional[int] = None
        self.ticket: Optional[SendTicket] = None
        self.on_done = on_done


class BmOpCallback:
    """Describable callback: invoke ``method`` of a controller's pending op.

    Replaces the per-operation closures the controller used to allocate;
    the snapshot codec serializes one as ``(node, op_id, method)`` and
    rebuilds it against the restored registry.
    """

    __slots__ = ("controller", "op_id", "method")

    def __init__(self, controller: "BmController", op_id: int, method: str) -> None:
        self.controller = controller
        self.op_id = op_id
        self.method = method

    def __call__(self, *args) -> None:
        getattr(self.controller, self.method)(self.op_id, *args)


class BmController:
    """Front end between one core's pipeline and the wireless fabric."""

    def __init__(
        self,
        node_id: int,
        fabric: "BroadcastFabric",
        transceiver: Transceiver,
        config: BroadcastMemoryConfig,
    ) -> None:
        self.node_id = node_id
        self.fabric = fabric
        self.transceiver = transceiver
        self.config = config
        #: Write Completion Bit: set when the last store/RMW fully performed.
        self.wcb: bool = False
        #: Atomicity Failure Bit of the last RMW instruction.
        self.afb: bool = False
        self.stores_issued = 0
        self.rmws_issued = 0
        self.rmw_failures = 0
        self._pending_ops: Dict[int, PendingBmOp] = {}
        self._next_op_id = 0

    # ----------------------------------------------------------------- loads
    def load(self, addr: int, pid: Optional[int] = None) -> Tuple[int, int]:
        """Plain load; returns ``(value, latency_cycles)``."""
        value = self.fabric.memory.read(addr, pid)
        return value, self.config.round_trip

    def bulk_load(self, addr: int, pid: Optional[int] = None) -> Tuple[Tuple[int, ...], int]:
        """Bulk load of four consecutive entries from the local BM."""
        values = tuple(self.fabric.memory.read(addr + i, pid) for i in range(4))
        return values, self.config.round_trip

    # ------------------------------------------------------------ op registry
    def _new_op(self, kind: str, addr: int, on_done: Callable, pid: Optional[int], **fields) -> PendingBmOp:
        op = PendingBmOp(self._next_op_id, kind, addr, on_done, pid, **fields)
        self._next_op_id += 1
        self._pending_ops[op.op_id] = op
        return op

    def _op_callback(self, op_id: int, method: str) -> BmOpCallback:
        return BmOpCallback(self, op_id, method)

    # ---------------------------------------------------------------- stores
    def store(
        self,
        addr: int,
        value: int,
        on_done: Callable[[int], None],
        pid: Optional[int] = None,
    ) -> None:
        """Broadcast store; ``on_done(completion_cycle)`` fires when performed."""
        self.wcb = False
        self.stores_issued += 1
        op = self._new_op("store", addr, on_done, pid, value=value)
        op.ticket = self.transceiver.send_store(
            addr, value, self._op_callback(op.op_id, "_store_performed")
        )

    def bulk_store(
        self,
        addr: int,
        values: Tuple[int, int, int, int],
        on_done: Callable[[int], None],
        pid: Optional[int] = None,
    ) -> None:
        """Bulk store of four consecutive entries in one 15-cycle message."""
        if len(values) != 4:
            raise MemoryError_("bulk stores transfer exactly four 64-bit words")
        self.wcb = False
        self.stores_issued += 1
        op = self._new_op("bulk", addr, on_done, pid, values=tuple(values))
        op.ticket = self.transceiver.send_bulk_store(
            addr, tuple(values), self._op_callback(op.op_id, "_store_performed")
        )

    def _store_performed(self, op_id: int, message, cycle: int) -> None:
        """The broadcast went out: perform globally and report completion."""
        op = self._pending_ops.pop(op_id)
        if op.kind == "bulk":
            for offset, value in enumerate(op.values):
                self.fabric.apply_store(op.addr + offset, value, self.node_id, cycle, op.pid)
        else:
            self.fabric.apply_store(op.addr, op.value, self.node_id, cycle, op.pid)
        self.wcb = True
        op.on_done(cycle)

    # --------------------------------------------------------------- atomics
    def rmw(
        self,
        addr: int,
        kind: RmwKind,
        on_done: Callable[[RmwResult], None],
        operand: int = 1,
        expected: int = 0,
        pid: Optional[int] = None,
    ) -> None:
        """Atomic read-modify-write with AFB-based failure detection.

        ``on_done`` receives an :class:`RmwResult`.  For a CAS whose
        comparison fails, no wireless transfer is attempted (Figure 4b: the
        code simply retries after re-reading), so the result arrives after
        the local BM round trip.
        """
        self.rmws_issued += 1
        self.wcb = False
        self.afb = False
        old = self.fabric.memory.read(addr, pid)
        new, success = apply_rmw(kind, old, operand, expected)
        if not success:
            # CAS comparison failed: the instruction completes locally.
            completion = self.fabric.sim.now + self.config.round_trip
            self.wcb = True
            self.fabric.sim.schedule(
                self.config.round_trip,
                on_done,
                RmwResult(old_value=old, success=False, afb=False, completion_cycle=completion),
            )
            return
        op = self._new_op("rmw", addr, on_done, pid, old=old, new=new)
        op.token = self.fabric.register_pending_rmw(
            self.node_id, addr, self._op_callback(op.op_id, "_rmw_atomicity_failed")
        )
        op.ticket = self.transceiver.send_store(
            addr, new, self._op_callback(op.op_id, "_rmw_performed")
        )

    def _rmw_finish(self, op_id: int, failed: bool, cycle: int) -> None:
        op = self._pending_ops.get(op_id)
        if op is None or op.settled:
            return
        op.settled = True
        del self._pending_ops[op_id]
        self.afb = failed
        self.wcb = True
        if failed:
            self.rmw_failures += 1
        else:
            self.fabric.apply_store(op.addr, op.new, self.node_id, cycle, op.pid)
        op.on_done(
            RmwResult(
                old_value=op.old,
                success=not failed,
                afb=failed,
                completion_cycle=cycle,
            )
        )

    def _rmw_atomicity_failed(self, op_id: int) -> None:
        # A remote write to this address arrived before our broadcast
        # succeeded.  Abort the pending transmission if it has not
        # started; the instruction then terminates with AFB set without
        # ever occupying the Data channel (Section 4.2.1).
        op = self._pending_ops.get(op_id)
        if op is None or op.settled:
            return
        if op.ticket is not None and op.ticket.cancel():
            self.fabric.consume_pending_rmw(op.token)
            cycle = self.fabric.sim.now + self.config.round_trip
            self.fabric.sim.schedule(
                self.config.round_trip,
                self._op_callback(op_id, "_rmw_finish"),
                True,
                cycle,
            )

    def _rmw_performed(self, op_id: int, message, cycle: int) -> None:
        op = self._pending_ops.get(op_id)
        if op is None or op.settled:
            return
        failed = self.fabric.consume_pending_rmw(op.token)
        self._rmw_finish(op_id, failed, cycle)
