"""Per-node tone controller with its AllocB and ActiveB tables (Section 5.1).

``AllocB`` holds every allocated tone-barrier variable together with a local
*Armed* bit (will a thread on this core participate?).  ``ActiveB`` holds the
currently active tone barriers with a local *Arrived* bit.  The tables have
the same contents (apart from the Armed/Arrived bits) in every node, which is
what lets all nodes agree on the round-robin assignment of Tone-channel slots
to active barriers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set

from repro.config import ToneChannelConfig
from repro.errors import ToneBarrierError
from repro.wireless.channel import WirelessMessage
from repro.wireless.tone import ToneChannel
from repro.wireless.transceiver import Transceiver


@dataclass
class AllocBEntry:
    """Allocated tone barrier: BM address plus the local Armed bit."""

    bm_addr: int
    armed: bool = False


@dataclass
class ActiveBEntry:
    """Active tone barrier: BM address plus the local Arrived bit."""

    bm_addr: int
    arrived: bool = False


class _ActivationSent:
    """Describable completion hook for a barrier-activation message."""

    __slots__ = ("controller", "bm_addr")

    def __init__(self, controller: "ToneController", bm_addr: int) -> None:
        self.controller = controller
        self.bm_addr = bm_addr

    def __call__(self, message: WirelessMessage, cycle: int) -> None:
        self.controller._activation_sent(self.bm_addr, cycle)


class ToneController:
    """Hardware tone-barrier participation logic of one node."""

    def __init__(
        self,
        node_id: int,
        tone_channel: Optional[ToneChannel],
        transceiver: Transceiver,
        config: ToneChannelConfig,
    ) -> None:
        self.node_id = node_id
        self.tone_channel = tone_channel
        self.transceiver = transceiver
        self.config = config
        self.alloc_b: Dict[int, AllocBEntry] = {}
        self.active_b: Dict[int, ActiveBEntry] = {}
        #: Arrivals observed before the activation message was delivered.
        self._arrived_early: Set[int] = set()
        #: Optional caller hooks for in-flight activation messages, keyed by
        #: BM address (``None`` for the common fire-and-forget arrival).
        self._pending_inits: Dict[int, Optional[Callable[[int], None]]] = {}
        self.barriers_initiated = 0
        self.barriers_joined = 0

    # ------------------------------------------------------------ allocation
    def allocate_barrier(self, bm_addr: int, armed: bool) -> None:
        """Create the AllocB entry for a newly allocated tone barrier variable."""
        if len(self.alloc_b) >= self.config.table_entries:
            raise ToneBarrierError(
                f"AllocB overflow on node {self.node_id} "
                f"(capacity {self.config.table_entries})"
            )
        if bm_addr in self.alloc_b:
            raise ToneBarrierError(f"tone barrier {bm_addr} already allocated on node {self.node_id}")
        self.alloc_b[bm_addr] = AllocBEntry(bm_addr=bm_addr, armed=armed)

    def deallocate_barrier(self, bm_addr: int) -> None:
        self.alloc_b.pop(bm_addr, None)
        self.active_b.pop(bm_addr, None)
        self._arrived_early.discard(bm_addr)

    def is_armed(self, bm_addr: int) -> bool:
        entry = self.alloc_b.get(bm_addr)
        return bool(entry and entry.armed)

    def set_armed(self, bm_addr: int, armed: bool) -> None:
        """OS hook: (dis)arm participation, e.g. when a thread is placed here."""
        entry = self.alloc_b.get(bm_addr)
        if entry is None:
            raise ToneBarrierError(f"tone barrier {bm_addr} is not allocated on node {self.node_id}")
        entry.armed = armed

    # --------------------------------------------------------------- arrival
    def arrive(self, bm_addr: int, on_activation_sent: Optional[Callable[[int], None]] = None) -> bool:
        """Handle a local ``tone_st``: returns True if this node initiated the barrier.

        If a tone is currently being issued for this address the local core
        is not the first to arrive, so the controller just stops the tone.
        Otherwise this core is (locally) the first arrival and sends the
        activation message on the Data channel.
        """
        if bm_addr not in self.alloc_b:
            raise ToneBarrierError(
                f"tone_st on node {self.node_id} for unallocated tone barrier {bm_addr}"
            )
        active = self.active_b.get(bm_addr)
        if active is not None:
            if not active.arrived:
                active.arrived = True
                if self.tone_channel is not None and self.is_armed(bm_addr):
                    self.tone_channel.stop_tone(bm_addr, self.node_id)
            self.barriers_joined += 1
            return False
        if bm_addr in self._arrived_early:
            # Already signalled arrival while the activation is still in flight.
            return False
        self._arrived_early.add(bm_addr)
        self.barriers_initiated += 1
        self._pending_inits[bm_addr] = on_activation_sent
        self.transceiver.send_tone_init(bm_addr, _ActivationSent(self, bm_addr))
        return True

    def _activation_sent(self, bm_addr: int, cycle: int) -> None:
        on_activation_sent = self._pending_inits.pop(bm_addr, None)
        if on_activation_sent is not None:
            on_activation_sent(cycle)

    # ------------------------------------------------------------ activation
    def on_barrier_activated(self, bm_addr: int) -> bool:
        """Activation message delivered: copy AllocB -> ActiveB.

        Returns True when this node will emit a tone (it is armed and has not
        arrived yet); the fabric collects these to seed the tone channel.
        """
        entry = self.alloc_b.get(bm_addr)
        if entry is None:
            # This node does not know the barrier (no thread of that program
            # here); it simply does not participate.
            return False
        arrived_early = bm_addr in self._arrived_early
        self._arrived_early.discard(bm_addr)
        if not entry.armed:
            self.active_b[bm_addr] = ActiveBEntry(bm_addr=bm_addr, arrived=True)
            return False
        self.active_b[bm_addr] = ActiveBEntry(bm_addr=bm_addr, arrived=arrived_early)
        return not arrived_early

    def on_barrier_complete(self, bm_addr: int) -> None:
        """Silence detected: the barrier is over, remove it from ActiveB."""
        self.active_b.pop(bm_addr, None)
        self._arrived_early.discard(bm_addr)

    # ----------------------------------------------------------------- state
    def is_active(self, bm_addr: int) -> bool:
        return bm_addr in self.active_b

    def has_arrived(self, bm_addr: int) -> bool:
        entry = self.active_b.get(bm_addr)
        if entry is not None:
            return entry.arrived
        return bm_addr in self._arrived_early
