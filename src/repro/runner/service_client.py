"""Client side of the sweep service: HTTP wrapper + submitting executor.

:class:`ServiceClient` is a thin JSON-over-HTTP wrapper around the daemon's
API (stdlib ``urllib`` — the service stack adds no dependencies anywhere).
:class:`ServiceExecutor` adapts it to the executor contract, so ``repro run
<experiment> --submit URL`` flows through the normal
:class:`~repro.runner.runner.Runner` path: the local result cache filters
the grid first, the run manifest records completions, and the results that
come back are bit-identical to a local
:class:`~repro.runner.executor.SerialExecutor` sweep because every spec is
executed by the same deterministic :func:`~repro.runner.executor.execute_spec`
on some worker.

An abandoned submission is withdrawn: if the executor's generator is closed
before the job finishes (Ctrl-C, a failure in another part of the run), it
cancels the job so the service stops spending worker time on it.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ExecutionError, ServiceError
from repro.machine.results import SimResult
from repro.runner.executor import _ExecutorBase, failures_error
from repro.runner.spec import RunSpec, SweepSpec

#: Job states the service reports as terminal (mirrors
#: ``repro.service.jobstore.TERMINAL_JOB_STATES``; duplicated here so the
#: client package does not import the daemon package).
_TERMINAL = ("completed", "failed", "cancelled")


class ServiceClient:
    """JSON HTTP client for one ``repro serve`` daemon."""

    def __init__(
        self,
        url: str,
        token: Optional[str] = None,
        timeout: float = 30.0,
    ) -> None:
        if not url.startswith(("http://", "https://")):
            raise ConfigurationError(
                f"service url must start with http:// or https://, got {url!r}"
            )
        self.url = url.rstrip("/")
        self.token = token
        self.timeout = timeout

    # ------------------------------------------------------------ transport
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        request = urllib.request.Request(
            self.url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.load(resp)
        except urllib.error.HTTPError as error:
            detail = ""
            try:
                detail = str(json.load(error).get("error", ""))
            except ValueError:
                pass
            raise ServiceError(
                f"{method} {path} -> {error.code} {error.reason}"
                + (f": {detail}" if detail else "")
            )
        except (OSError, ValueError) as error:
            raise ServiceError(
                f"cannot reach sweep service at {self.url}: {error}"
            )

    # ----------------------------------------------------------------- api
    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def jobs(self) -> List[Dict[str, Any]]:
        return list(self._request("GET", "/jobs")["jobs"])

    def submit(
        self,
        sweep: SweepSpec,
        name: Optional[str] = None,
        priority: int = 1,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "sweep": sweep.to_dict(), "priority": priority,
        }
        if name is not None:
            payload["name"] = name
        return self._request("POST", "/jobs", payload)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def results(self, job_id: str, partial: bool = False) -> Dict[str, Any]:
        suffix = "?partial=1" if partial else ""
        return self._request("GET", f"/jobs/{job_id}/results{suffix}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/jobs/{job_id}")


class ServiceExecutor(_ExecutorBase):
    """Executor that submits the sweep to a ``repro serve`` daemon.

    Satisfies the ``run_iter`` contract — ``(position, result)`` pairs in
    completion order — by polling the job and fetching ``?partial=1``
    results as they land, so local progress hooks and manifest recording
    stream exactly as they do for any other executor.
    """

    def __init__(
        self,
        url: str,
        token: Optional[str] = None,
        name: Optional[str] = None,
        priority: int = 1,
        poll_seconds: float = 0.5,
        timeout: float = 30.0,
    ) -> None:
        if poll_seconds <= 0:
            raise ConfigurationError("poll_seconds must be positive")
        self.client = ServiceClient(url, token=token, timeout=timeout)
        self.name = name
        self.priority = priority
        self.poll_seconds = poll_seconds
        #: Final job summary of the last ``run_iter`` (CLI summary line).
        self.last_job: Optional[Dict[str, Any]] = None

    def run_iter(
        self, specs: Sequence[RunSpec]
    ) -> Iterator[Tuple[int, SimResult]]:
        if not specs:
            return
        sweep = SweepSpec(name=self.name or "submitted", specs=tuple(specs))
        by_key = {spec.key(): index for index, spec in enumerate(specs)}
        job_id = str(self.client.submit(
            sweep, name=self.name, priority=self.priority
        )["job"])
        yielded: set = set()
        finished = False
        try:
            while True:
                summary = self.client.job(job_id)
                state = str(summary["state"])
                terminal = state in _TERMINAL
                if terminal or summary["done"] > len(yielded):
                    payload = self.client.results(
                        job_id, partial=not terminal
                    )
                    for run in payload["runs"]:
                        position = by_key.get(
                            RunSpec.from_dict(run["spec"]).key()
                        )
                        if position is None or position in yielded:
                            continue
                        yielded.add(position)
                        yield position, SimResult.from_dict(run["result"])
                if terminal:
                    finished = True
                    self.last_job = summary
                    if state == "cancelled":
                        raise ExecutionError(
                            f"job {job_id} was cancelled on the service "
                            f"before it finished"
                        )
                    failures = [
                        (RunSpec.from_dict(entry["spec"]),
                         str(entry["reason"]))
                        for entry in payload["failures"]
                    ]
                    if failures:
                        raise failures_error(failures, len(specs))
                    return
                time.sleep(self.poll_seconds)
        finally:
            if not finished:
                # Abandoned mid-flight (generator closed, transport error):
                # withdraw the job so workers stop spending time on it.
                try:
                    self.last_job = self.client.cancel(job_id)
                except ServiceError:
                    pass
