"""The Runner facade: cache-aware execution of declarative sweeps.

::

    runner = Runner(executor=ParallelExecutor(8), cache=ResultCache(".wisync-cache"))
    outcome = runner.run(fig7_sweep(core_counts=[16, 32]))
    outcome.result_for(spec).total_cycles

``Runner.run`` checks the cache first, dispatches only the missing specs to
the executor, stores fresh results back, and returns a
:class:`SweepResult` that preserves the sweep's spec order.

Long sweeps can be observed point by point: ``Runner.run_iter`` is a
generator yielding one :class:`SpecProgress` per grid point in completion
order (cache hits first, then simulations as they finish — out of spec order
under a parallel executor), and both ``Runner.run`` and the constructor
accept a ``progress`` callback receiving the same events.  This is what
``python -m repro run --progress`` streams to stderr.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (analysis -> runner)
    from repro.analysis.frame import MetricFrame

from repro.errors import WorkloadError
from repro.machine.results import SimResult
from repro.runner.cache import ResultCache
from repro.runner.executor import SerialExecutor, validated_positions
from repro.runner.spec import RunSpec, SweepSpec


@dataclass(frozen=True)
class SpecProgress:
    """One grid point's completion, streamed while a sweep is running."""

    index: int          #: completion order within this sweep run (0-based)
    total: int          #: grid points in the sweep
    spec: RunSpec
    result: SimResult
    cached: bool        #: served from the result cache, not simulated

    def describe(self) -> str:
        """One-line rendering used by the CLI's ``--progress`` stream."""
        width = len(str(self.total))
        source = "cached" if self.cached else "simulated"
        return (
            f"[{self.index + 1:>{width}}/{self.total}] {self.spec.label()}: "
            f"{self.result.total_cycles} cycles ({source})"
        )


#: Per-spec progress callback fed by ``Runner.run``.
SweepProgressHook = Callable[[SpecProgress], None]


@dataclass
class SweepResult:
    """Results of one sweep, in spec order, plus execution bookkeeping."""

    sweep: SweepSpec
    results: Dict[RunSpec, SimResult]
    num_simulated: int = 0
    num_cached: int = 0
    #: Per-spec provenance: True when the result came from the cache.
    cached: Dict[RunSpec, bool] = field(default_factory=dict)

    def __iter__(self) -> Iterator[Tuple[RunSpec, SimResult]]:
        for spec in self.sweep:
            yield spec, self.results[spec]

    def __len__(self) -> int:
        return len(self.results)

    def result_for(self, spec: RunSpec) -> SimResult:
        if spec not in self.results:
            raise WorkloadError(f"sweep {self.sweep.name!r} holds no result for {spec.label()}")
        return self.results[spec]

    def frame(self) -> "MetricFrame":
        """The canonical analysis view: one typed row per grid point.

        See :func:`repro.analysis.frame.frame_from_sweep` for the column
        layout (spec axes as dimensions, run measurements as metrics).
        """
        from repro.analysis.frame import frame_from_sweep

        return frame_from_sweep(self)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sweep": self.sweep.name,
            "num_simulated": self.num_simulated,
            "num_cached": self.num_cached,
            "runs": [
                {
                    "spec": spec.to_dict(),
                    "result": result.to_dict(),
                    "cached": self.cached.get(spec, False),
                }
                for spec, result in self
            ],
        }


class Runner:
    """Execute sweeps through an executor, with an optional result cache.

    ``progress`` (a :data:`SweepProgressHook`) is called for every grid point
    of every sweep this runner executes — including cache hits — so callers
    that build sweeps indirectly (the experiment modules, the CLI) still get
    streamed progress without threading a callback through every layer.
    """

    def __init__(
        self,
        executor: Optional[Any] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[SweepProgressHook] = None,
    ) -> None:
        self.executor = executor if executor is not None else SerialExecutor()
        self.cache = cache
        self.progress = progress

    # ------------------------------------------------------------------ run
    def run_spec(self, spec: RunSpec) -> SimResult:
        """Run one spec (through the cache, but not the executor pool)."""
        outcome = self.run(SweepSpec(name=spec.workload, specs=(spec,)))
        return outcome.result_for(spec)

    def run(
        self, sweep: SweepSpec, progress: Optional[SweepProgressHook] = None
    ) -> SweepResult:
        """Run every spec of ``sweep``; cached points are not re-simulated.

        ``progress`` overrides the runner-level hook for this sweep only.
        """
        hook = progress if progress is not None else self.progress
        iterator = self.run_iter(sweep)
        while True:
            try:
                event = next(iterator)
            except StopIteration as stop:
                return stop.value
            if hook is not None:
                hook(event)

    def run_iter(self, sweep: SweepSpec) -> Iterator[SpecProgress]:
        """Generator form of :meth:`run`: yields one event per grid point.

        Cache hits are yielded first (in spec order), then fresh simulations
        in completion order.  The generator's return value (``StopIteration``
        ``.value``, or ``Runner.run``'s return) is the final
        :class:`SweepResult`.
        """
        total = len(sweep)
        results: Dict[RunSpec, SimResult] = {}
        provenance: Dict[RunSpec, bool] = {}
        missing: List[RunSpec] = []
        index = 0
        for spec in sweep:
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                results[spec] = cached
                provenance[spec] = True
                yield SpecProgress(index, total, spec, cached, cached=True)
                index += 1
            else:
                missing.append(spec)
        simulated = 0
        for position, result in self._execute_iter(missing):
            spec = missing[position]
            results[spec] = result
            provenance[spec] = False
            simulated += 1
            if self.cache is not None:
                self.cache.put(spec, result)
            yield SpecProgress(index, total, spec, result, cached=False)
            index += 1
        if simulated != len(missing):
            # run_iter-style executors that yield too few positions
            # (duplicates and out-of-range are caught in _execute_iter).
            raise WorkloadError(
                f"executor produced {simulated} results for {len(missing)} specs"
            )
        return SweepResult(
            sweep=sweep,
            results=results,
            num_simulated=len(missing),
            num_cached=total - len(missing),
            cached=provenance,
        )

    def _execute_iter(
        self, missing: List[RunSpec]
    ) -> Iterator[Tuple[int, SimResult]]:
        """Stream ``(position, result)`` pairs from whatever executor we hold."""
        if not missing:
            return
        run_iter = getattr(self.executor, "run_iter", None)
        if run_iter is not None:
            yield from validated_positions(run_iter(missing), missing)
        else:
            # Executors predating run_iter (user-supplied): one batched call.
            fresh = self.executor.run(missing)
            if len(fresh) != len(missing):
                raise WorkloadError(
                    f"executor returned {len(fresh)} results for {len(missing)} specs"
                )
            yield from enumerate(fresh)


def default_runner(runner: Optional[Runner] = None) -> Runner:
    """The runner to use when an experiment is called without one."""
    return runner if runner is not None else Runner()
