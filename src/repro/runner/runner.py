"""The Runner facade: cache-aware execution of declarative sweeps.

::

    runner = Runner(executor=ParallelExecutor(8), cache=ResultCache(".wisync-cache"))
    outcome = runner.run(fig7_sweep(core_counts=[16, 32]))
    outcome.result_for(spec).total_cycles

``Runner.run`` checks the cache first, dispatches only the missing specs to
the executor, stores fresh results back, and returns a
:class:`SweepResult` that preserves the sweep's spec order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import WorkloadError
from repro.machine.results import SimResult
from repro.runner.cache import ResultCache
from repro.runner.executor import ProgressHook, SerialExecutor
from repro.runner.spec import RunSpec, SweepSpec


@dataclass
class SweepResult:
    """Results of one sweep, in spec order, plus execution bookkeeping."""

    sweep: SweepSpec
    results: Dict[RunSpec, SimResult]
    num_simulated: int = 0
    num_cached: int = 0

    def __iter__(self) -> Iterator[Tuple[RunSpec, SimResult]]:
        for spec in self.sweep:
            yield spec, self.results[spec]

    def __len__(self) -> int:
        return len(self.results)

    def result_for(self, spec: RunSpec) -> SimResult:
        if spec not in self.results:
            raise WorkloadError(f"sweep {self.sweep.name!r} holds no result for {spec.label()}")
        return self.results[spec]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sweep": self.sweep.name,
            "num_simulated": self.num_simulated,
            "num_cached": self.num_cached,
            "runs": [
                {"spec": spec.to_dict(), "result": result.to_dict()}
                for spec, result in self
            ],
        }


class Runner:
    """Execute sweeps through an executor, with an optional result cache."""

    def __init__(
        self,
        executor: Optional[Any] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.executor = executor if executor is not None else SerialExecutor()
        self.cache = cache

    # ------------------------------------------------------------------ run
    def run_spec(self, spec: RunSpec) -> SimResult:
        """Run one spec (through the cache, but not the executor pool)."""
        outcome = self.run(SweepSpec(name=spec.workload, specs=(spec,)))
        return outcome.result_for(spec)

    def run(self, sweep: SweepSpec, progress: Optional[ProgressHook] = None) -> SweepResult:
        """Run every spec of ``sweep``; cached points are not re-simulated."""
        results: Dict[RunSpec, SimResult] = {}
        missing: List[RunSpec] = []
        seen: set = set()
        for spec in sweep:
            if spec in seen:
                continue  # duplicate grid points simulate once
            seen.add(spec)
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                results[spec] = cached
            else:
                missing.append(spec)
        fresh = self.executor.run(missing, progress) if missing else []
        if len(fresh) != len(missing):
            raise WorkloadError(
                f"executor returned {len(fresh)} results for {len(missing)} specs"
            )
        for spec, result in zip(missing, fresh):
            results[spec] = result
            if self.cache is not None:
                self.cache.put(spec, result)
        return SweepResult(
            sweep=sweep,
            results=results,
            num_simulated=len(missing),
            num_cached=len(seen) - len(missing),
        )


def default_runner(runner: Optional[Runner] = None) -> Runner:
    """The runner to use when an experiment is called without one."""
    return runner if runner is not None else Runner()
