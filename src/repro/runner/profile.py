"""``python -m repro profile``: the perf-regression harness.

Times a fixed, deterministic sweep per experiment family, reports throughput
as **events/sec** (discrete engine events fired divided by wall-clock), and
writes a ``BENCH_<experiment>.json`` record so the repository's performance
trajectory is measurable commit over commit and gateable in CI.

Methodology notes:

* The sweep grid is pinned per experiment (``--quick`` selects a smaller
  pinned grid) so successive runs time the same work.
* Specs run serially through :func:`~repro.runner.executor.execute_spec`
  with no result cache — the point is to exercise the simulator hot path,
  not to skip it.
* The sweep is repeated ``--repeats`` times and the **best** wall-clock is
  reported: minimum-of-N is the standard estimator for "speed of the code"
  under scheduler noise (the true cost can only be over-measured).
* Events/sec is a simulator-side metric: it counts engine events, so it is
  comparable across machines only as an order of magnitude, but comparable
  across commits on the same machine — which is what the CI gate uses.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.runner.executor import execute_spec
from repro.runner.spec import SweepSpec


def _fig7(quick: bool) -> SweepSpec:
    from repro.experiments.fig7_tightloop import fig7_sweep

    if quick:
        return fig7_sweep(core_counts=[16, 32], iterations=3)
    return fig7_sweep(core_counts=[16, 32, 64], iterations=5)


def _fig8(quick: bool) -> SweepSpec:
    from repro.experiments.fig8_livermore import fig8_sweep
    from repro.workloads.livermore import LivermoreLoop

    if quick:
        return fig8_sweep(
            loops=[LivermoreLoop.INNER_PRODUCT],
            core_counts=[16],
            vector_lengths={LivermoreLoop.INNER_PRODUCT: [64]},
            repetitions=1,
        )
    return fig8_sweep(core_counts=[16, 64], repetitions=1)


def _fig9(quick: bool) -> SweepSpec:
    from repro.experiments.fig9_cas import fig9_sweep

    if quick:
        return fig9_sweep(core_counts=[16], critical_sections=[16], successes_per_thread=3)
    return fig9_sweep(core_counts=[16, 64], critical_sections=[16, 256])


def _fig10(quick: bool) -> SweepSpec:
    from repro.experiments.fig10_applications import fig10_sweep
    from repro.workloads.synthetic_apps import application_names

    if quick:
        return fig10_sweep(apps=application_names()[:1], num_cores=16, phase_scale=0.25)
    return fig10_sweep(apps=application_names()[:2], num_cores=64, phase_scale=0.5)


def _scenarios(quick: bool) -> SweepSpec:
    from repro.experiments.scenarios import scenario_sweep

    if quick:
        return scenario_sweep(
            scenarios=["barrier_storm", "rwlock", "work_steal"],
            core_counts=[16],
            configs=["WiSync"],
            contention=["high"],
        )
    return scenario_sweep(
        core_counts=[16],
        configs=["Baseline", "WiSync"],
        contention=["low", "high"],
        backoffs=["broadcast_aware", "exponential"],
    )


#: Experiment name -> pinned sweep builder (``builder(quick) -> SweepSpec``).
PROFILE_SWEEPS: Dict[str, Callable[[bool], SweepSpec]] = {
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "scenarios": _scenarios,
}


#: Snapshot-restore micro-benchmark cut points (fractions of the full run).
RESTORE_CUTS = (0.10, 0.50, 0.90)


def profile_names() -> List[str]:
    return sorted([*PROFILE_SWEEPS, "restore"])


def _restore_spec(quick: bool):
    """The pinned frame-ported spec the restore micro-benchmark cuts up."""
    from repro.runner.spec import RunSpec

    return RunSpec(
        workload="tightloop",
        params={"iterations": 30 if quick else 100},
        config="WiSync",
        num_cores=16,
        seed=7,
    )


def _time_restore(snapshot) -> float:
    from repro.snapshot import SpecExecution

    started = time.perf_counter()
    SpecExecution.from_snapshot(snapshot)
    return time.perf_counter() - started


def _run_restore_profile(quick: bool, repeats: int) -> Dict[str, object]:
    """Benchmark ``SpecExecution.from_snapshot``: native vs forced replay.

    For each pinned cut fraction the same capture is restored both ways —
    once through the native O(state) codec and once with the strategy
    downgraded to replay (machine payload dropped), which fast-forwards
    ``cut`` events.  Native restore cost should be flat across cuts while
    replay grows with the cut depth; the headline ``events_per_sec`` is the
    number of simulated events the native restores *skipped* per second of
    restore work, so a regression that degrades native restore (or silently
    falls back to replay) collapses the metric and trips the CI gate.
    """
    from repro.snapshot import STRATEGY_REPLAY, Snapshot, snapshot_after

    spec = _restore_spec(quick)
    total = execute_spec(spec).events_processed
    cuts: List[Dict[str, object]] = []
    native_events = 0
    native_wall = 0.0
    for fraction in RESTORE_CUTS:
        cut = max(1, min(int(total * fraction), total - 1))
        native_snap = snapshot_after(spec, cut)
        replay_snap = Snapshot(
            spec=native_snap.spec,
            events_processed=cut,
            clock=native_snap.clock,
            strategy=STRATEGY_REPLAY,
            native=native_snap.native,
        )
        native_best = min(_time_restore(native_snap) for _ in range(repeats))
        replay_best = min(_time_restore(replay_snap) for _ in range(repeats))
        native_events += cut
        native_wall += native_best
        cuts.append({
            "fraction": fraction,
            "events": cut,
            "native_seconds": round(native_best, 6),
            "replay_seconds": round(replay_best, 6),
            "replay_over_native": (
                round(replay_best / native_best, 1) if native_best > 0 else None
            ),
        })
    return {
        "experiment": "restore",
        "quick": quick,
        "grid_points": len(cuts),
        "repeats": repeats,
        "events": native_events,
        "wall_seconds": round(native_wall, 6),
        "events_per_sec": round(native_events / native_wall, 1),
        "total_events": total,
        "spec": spec.label(),
        "cuts": cuts,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def run_profile(
    experiment: str,
    quick: bool = False,
    repeats: int = 3,
) -> Dict[str, object]:
    """Time the pinned sweep for ``experiment``; return the benchmark record."""
    if repeats < 1:
        raise ReproError("--repeats must be at least 1")
    if experiment == "restore":
        return _run_restore_profile(quick, repeats)
    if experiment not in PROFILE_SWEEPS:
        raise ReproError(
            f"no profile sweep for {experiment!r}; choices: {profile_names()}"
        )
    sweep = PROFILE_SWEEPS[experiment](quick)
    specs = list(sweep)
    runs: List[Dict[str, float]] = []
    events = 0
    for _ in range(repeats):
        events = 0
        started = time.perf_counter()
        for spec in specs:
            result = execute_spec(spec)
            events += result.events_processed
        wall = time.perf_counter() - started
        runs.append({"wall_seconds": wall, "events_per_sec": events / wall})
    best = min(runs, key=lambda run: run["wall_seconds"])
    return {
        "experiment": experiment,
        "quick": quick,
        "grid_points": len(specs),
        "repeats": repeats,
        "events": events,
        "wall_seconds": round(best["wall_seconds"], 4),
        "events_per_sec": round(best["events_per_sec"], 1),
        "runs": [
            {"wall_seconds": round(r["wall_seconds"], 4),
             "events_per_sec": round(r["events_per_sec"], 1)}
            for r in runs
        ],
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def compare_to_baseline(
    record: Dict[str, object],
    baseline_path: str,
    max_regression: float,
) -> Optional[str]:
    """Return an error message if ``record`` regresses past the baseline.

    The gate triggers when events/sec drops more than ``max_regression``
    (a fraction, e.g. 0.30) below the committed baseline's events/sec.
    Improvements never fail.  The check itself is
    :func:`repro.analysis.compare.compare_frames` — the same implementation
    behind ``python -m repro compare`` and the CI perf-smoke job.
    """
    from repro.analysis.compare import bench_frame, compare_frames

    try:
        with open(baseline_path, "r", encoding="utf-8") as stream:
            baseline = json.load(stream)
    except (OSError, ValueError) as error:
        raise ReproError(f"cannot read baseline {baseline_path!r}: {error}")
    if float(baseline.get("events_per_sec") or 0.0) <= 0:
        raise ReproError(f"baseline {baseline_path!r} has no events_per_sec")
    comparison = compare_frames(
        bench_frame(baseline),
        bench_frame(record),
        metrics=("events_per_sec",),
        thresholds={"events_per_sec": max_regression},
    )
    if comparison.ok:
        return None
    worst = comparison.worst("events_per_sec")
    return (
        f"perf regression: {worst.candidate:,.0f} events/sec is "
        f"{worst.change * 100:.1f}% below baseline "
        f"{worst.baseline:,.0f} (allowed {max_regression * 100:.0f}%)"
    )


def write_bench(record: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(record, stream, indent=2, sort_keys=True)
        stream.write("\n")


def default_bench_path(experiment: str) -> str:
    return f"BENCH_{experiment}.json"


def format_record(record: Dict[str, object]) -> str:
    """One-paragraph human rendering of a benchmark record."""
    lines = [
        f"profile {record['experiment']}"
        + (" (quick)" if record["quick"] else "")
        + f": {record['grid_points']} grid points, "
        + f"{record['events']:,} events",
        f"best of {record['repeats']}: {record['wall_seconds']}s wall, "
        f"{float(record['events_per_sec']):,.0f} events/sec",
    ]
    for cut in record.get("cuts") or []:
        lines.append(
            f"  cut {float(cut['fraction']):.0%} ({cut['events']:,} events): "
            f"native {float(cut['native_seconds']) * 1e3:.2f}ms, "
            f"replay {float(cut['replay_seconds']) * 1e3:.2f}ms "
            f"({cut['replay_over_native']}x)"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - thin CLI
    """Entry point used by ``python -m repro profile`` (see runner.cli)."""
    from repro.runner.cli import main as cli_main

    return cli_main(["profile"] + list(argv or []))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
