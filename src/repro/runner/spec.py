"""Declarative run specifications.

A :class:`RunSpec` is one point of the paper's evaluation grid: a registered
workload (by name, with JSON-serializable parameters), one Table 2
configuration (optionally refined by a Table 6 sensitivity variant), a core
count, a seed, and an optional cycle budget.  Because a spec is pure data it
can be hashed (:meth:`RunSpec.key`), shipped to a worker process, stored in a
result cache, and rebuilt from JSON — the properties the executor and cache
layers rely on.

A :class:`SweepSpec` is a named, ordered collection of RunSpecs — typically
the full grid behind one figure or table of the paper.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Root seed used throughout the paper's evaluation.
DEFAULT_SEED = 2016


def _freeze(value: Any) -> Any:
    """Canonicalize ``value`` into a hashable, deterministic form."""
    if isinstance(value, enum.Enum):
        return _freeze(value.value)
    if isinstance(value, dict):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ConfigurationError(
        f"workload parameter value {value!r} is not JSON-serializable; "
        "use str/int/float/bool/None, lists, dicts, or Enums"
    )


def _thaw(value: Any) -> Any:
    """Inverse of :func:`_freeze` for parameter *values* (tuples -> lists)."""
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    return value


@dataclass(frozen=True)
class RunSpec:
    """One simulation of the evaluation grid, as pure data.

    ``params`` may be passed as a dict; it is canonicalized into a sorted
    tuple of ``(name, value)`` pairs so the spec stays hashable.  Use
    :meth:`params_dict` to read it back.
    """

    workload: str
    config: str
    num_cores: int
    params: Tuple[Tuple[str, Any], ...] = ()
    seed: int = DEFAULT_SEED
    max_cycles: Optional[int] = None
    variant: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _freeze(dict(self.params)))
        if self.num_cores < 1:
            raise ConfigurationError("RunSpec.num_cores must be positive")
        if not self.workload:
            raise ConfigurationError("RunSpec.workload must be a workload name")

    # ------------------------------------------------------------ accessors
    def params_dict(self) -> Dict[str, Any]:
        """The workload parameters as a plain keyword-argument dict."""
        return {name: _thaw(value) for name, value in self.params}

    # -------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "params": self.params_dict(),
            "config": self.config,
            "variant": self.variant,
            "num_cores": self.num_cores,
            "seed": self.seed,
            "max_cycles": self.max_cycles,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunSpec":
        return cls(
            workload=payload["workload"],
            params=tuple(dict(payload.get("params") or {}).items()),
            config=payload["config"],
            variant=payload.get("variant"),
            num_cores=int(payload["num_cores"]),
            seed=int(payload.get("seed", DEFAULT_SEED)),
            max_cycles=payload.get("max_cycles"),
        )

    def key(self) -> str:
        """Deterministic content hash — stable across processes and hosts.

        Derived from the canonical JSON form (sorted keys), never from
        ``hash()``, so it is safe to use as a cache filename.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Human-readable one-line description (CLI and progress output)."""
        config = self.config if not self.variant else f"{self.config}@{self.variant}"
        params = ",".join(f"{k}={v}" for k, v in self.params)
        suffix = f"[{params}]" if params else ""
        return f"{self.workload}{suffix} {config} cores={self.num_cores} seed={self.seed}"


@dataclass(frozen=True)
class SweepSpec:
    """A named, ordered grid of *distinct* :class:`RunSpec` points.

    Duplicate specs (same :meth:`RunSpec.key`) are rejected at construction:
    they always come from overlapping axes (a core count listed twice, two
    param sets that collapse to the same canonical form) and silently running
    or deduplicating them would hide the configuration mistake.
    """

    name: str
    specs: Tuple[RunSpec, ...] = ()

    def __post_init__(self) -> None:
        specs = tuple(self.specs)
        object.__setattr__(self, "specs", specs)
        seen = set()
        for spec in specs:
            if spec in seen:
                raise ConfigurationError(
                    f"sweep {self.name!r} lists the grid point "
                    f"[{spec.label()}] more than once; overlapping axes?"
                )
            seen.add(spec)

    def __iter__(self) -> Iterator[RunSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    # --------------------------------------------------------- construction
    @classmethod
    def grid(
        cls,
        name: str,
        workload: str,
        configs: Sequence[str],
        core_counts: Sequence[int],
        params: Optional[Iterable[Dict[str, Any]]] = None,
        seeds: Sequence[int] = (DEFAULT_SEED,),
        max_cycles: Optional[int] = None,
        variant: Optional[str] = None,
    ) -> "SweepSpec":
        """Cross-product sweep over params x core counts x configs x seeds."""
        param_sets: List[Dict[str, Any]] = list(params) if params is not None else [{}]
        specs = [
            RunSpec(
                workload=workload,
                params=tuple(param_set.items()),
                config=config,
                num_cores=cores,
                seed=seed,
                max_cycles=max_cycles,
                variant=variant,
            )
            for param_set in param_sets
            for cores in core_counts
            for config in configs
            for seed in seeds
        ]
        return cls(name=name, specs=tuple(specs))

    def extend(self, other: "SweepSpec") -> "SweepSpec":
        """Concatenate two sweeps under this sweep's name."""
        return SweepSpec(name=self.name, specs=self.specs + other.specs)

    # -------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SweepSpec":
        return cls(
            name=payload["name"],
            specs=tuple(RunSpec.from_dict(entry) for entry in payload.get("specs", [])),
        )
