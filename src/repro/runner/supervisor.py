"""Worker supervisor: a self-healing pool of ``repro worker`` processes.

:class:`~repro.runner.distributed.LocalCluster` spawns workers
fire-and-forget: a crashed worker stays dead, and a fleet of them dies one
crash at a time.  :class:`WorkerSupervisor` babysits the pool instead —
each slot that exits *abnormally* (nonzero status or a signal) is respawned
with jittered exponential backoff, while a slot that drains cleanly (exit 0:
the broker finished, or a SIGTERM'd worker released its lease) is left
retired.  A circuit breaker stops the respawn loop for any slot that keeps
dying *rapidly* — N consecutive failures within seconds of spawning mean the
host (or its environment) is sick, and blindly respawning would only burn
the sweep's per-spec attempt budgets — so a sick pool parks itself instead
of flapping.

``repro workers --connect HOST:PORT --pool N`` runs the supervisor in the
foreground; :class:`~repro.runner.distributed.DistributedExecutor` embeds it
for ``--distributed N`` sweeps, replacing the old fire-and-forget spawn.

The jittered-backoff schedule (:func:`backoff_delays`) is shared with the
worker's broker dial/redial loops: a respawned fleet and a restarted broker
meet each other with randomized pacing instead of a thundering herd.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Callable, List, Optional, Sequence

from repro.errors import ConfigurationError

#: Consecutive rapid failures of one slot before its breaker opens.
DEFAULT_MAX_RAPID_FAILURES = 3
#: An exit within this many seconds of spawning counts as a *rapid* failure.
DEFAULT_RAPID_SECONDS = 5.0
#: First respawn delay; doubles per consecutive rapid failure.
DEFAULT_BACKOFF_BASE = 0.25
#: Ceiling on any single respawn delay.
DEFAULT_BACKOFF_CAP = 5.0


def backoff_delays(
    base: float,
    cap: float,
    rng: Optional[random.Random] = None,
) -> "_BackoffIterator":
    """Infinite jittered exponential backoff: ``base * 2^n``, capped, with
    each delay multiplied by a uniform factor in ``[0.5, 1.5)``.

    The jitter is the point: N workers (or N respawns) retrying the same
    broker must not fire in lockstep, or every retry round is a thundering
    herd against a service that may be mid-restart.
    """
    # Unseeded host-side jitter is deliberate (distinct workers must not
    # retry in lockstep); runner/ is outside the sim-core packages, so
    # DET001's path scope exempts it.
    return _BackoffIterator(base, cap, rng or random.Random())


class _BackoffIterator:
    def __init__(self, base: float, cap: float, rng: random.Random) -> None:
        if base <= 0 or cap <= 0:
            raise ConfigurationError("backoff base and cap must be positive")
        self._delay = min(base, cap)
        self._cap = cap
        self._rng = rng

    def __iter__(self) -> "_BackoffIterator":
        return self

    def __next__(self) -> float:
        delay = self._delay * self._rng.uniform(0.5, 1.5)
        self._delay = min(self._delay * 2.0, self._cap)
        return delay


def _worker_command(
    host: str,
    port: int,
    heartbeat: Optional[float],
    redial: Optional[float],
    checkpoint_every: Optional[int],
    token: Optional[str] = None,
) -> List[str]:
    command = [sys.executable, "-m", "repro", "worker",
               "--connect", f"{host}:{port}"]
    if heartbeat is not None:
        command += ["--heartbeat", str(heartbeat)]
    if redial is not None:
        command += ["--redial", str(redial)]
    if checkpoint_every is not None:
        command += ["--checkpoint-every", str(checkpoint_every)]
    if token is not None:
        command += ["--token", token]
    return command


def _worker_env(fault: Optional[str]) -> dict:
    from repro.runner.distributed import FAULT_ENV

    env = os.environ.copy()
    src = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    if fault:
        env[FAULT_ENV] = fault
    elif FAULT_ENV in env:
        del env[FAULT_ENV]
    return env


class _Slot:
    """One supervised worker position: its process plus respawn bookkeeping."""

    __slots__ = ("index", "fault", "proc", "spawned_at", "rapid_failures",
                 "respawn_at", "backoff", "drained", "sick", "abandoned")

    def __init__(self, index: int, fault: Optional[str]) -> None:
        self.index = index
        self.fault = fault
        self.proc: Optional[subprocess.Popen] = None
        self.spawned_at = 0.0
        self.rapid_failures = 0
        self.respawn_at: Optional[float] = None
        self.backoff: Optional[Any] = None
        self.drained = False      # exited 0: normal end of service
        self.sick = False         # circuit breaker open: respawns stopped
        self.abandoned = False    # fault-injected slot we never respawn

    def terminal(self) -> bool:
        return self.drained or self.sick or self.abandoned

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None


class WorkerSupervisor:
    """Spawn and babysit ``pool`` worker subprocesses against one broker.

    API-compatible with the parts of :class:`LocalCluster` the executor and
    the drills use (``alive_count`` / ``kill`` / ``close`` / context
    manager), plus the supervision surface: ``respawns`` counts recoveries,
    ``sick()`` reports tripped breakers, and ``gave_up()`` is True once no
    worker is alive and none will ever be respawned — the signal the
    executor's dead-cluster watchdog keys on.

    ``faults`` injects per-slot :data:`~repro.runner.distributed.FAULT_ENV`
    modes exactly like LocalCluster; faulted slots are *not* respawned unless
    ``respawn_faulted`` is set (tests want a dead worker to stay dead —
    the ``repro workers --fault`` drill wants the breaker to trip).
    """

    def __init__(
        self,
        host: str,
        port: int,
        pool: int,
        faults: Optional[Sequence[Optional[str]]] = None,
        heartbeat: Optional[float] = None,
        redial: Optional[float] = None,
        checkpoint_every: Optional[int] = None,
        token: Optional[str] = None,
        max_rapid_failures: int = DEFAULT_MAX_RAPID_FAILURES,
        rapid_seconds: float = DEFAULT_RAPID_SECONDS,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        respawn_faulted: bool = False,
        on_event: Optional[Callable[[str], None]] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if pool < 1:
            raise ConfigurationError("WorkerSupervisor needs at least one worker")
        if max_rapid_failures < 1:
            raise ConfigurationError("max_rapid_failures must be at least 1")
        self.host = host
        self.port = port
        self.heartbeat = heartbeat
        self.redial = redial
        self.checkpoint_every = checkpoint_every
        self.token = token
        self.max_rapid_failures = max_rapid_failures
        self.rapid_seconds = rapid_seconds
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.respawn_faulted = respawn_faulted
        self.on_event = on_event
        self.respawns = 0
        self._rng = rng or random.Random()
        self._lock = threading.Lock()
        self._closed = threading.Event()
        self._slots = [
            _Slot(i, faults[i] if faults and i < len(faults) else None)
            for i in range(pool)
        ]
        for slot in self._slots:
            self._spawn(slot)
        self._monitor = threading.Thread(target=self._monitor_loop, daemon=True)
        self._monitor.start()

    # ------------------------------------------------------------- spawning
    def _spawn(self, slot: _Slot) -> None:
        command = _worker_command(
            self.host, self.port, self.heartbeat, self.redial,
            self.checkpoint_every, self.token,
        )
        slot.proc = subprocess.Popen(
            command, env=_worker_env(slot.fault), stdout=subprocess.DEVNULL
        )
        slot.spawned_at = time.monotonic()
        slot.respawn_at = None

    def _emit(self, message: str) -> None:
        if self.on_event is not None:
            try:
                self.on_event(message)
            except Exception:  # noqa: BLE001 - observers must not kill the pool
                pass

    def _monitor_loop(self) -> None:
        while not self._closed.wait(0.1):
            with self._lock:
                for slot in self._slots:
                    self._tend_locked(slot)

    def _tend_locked(self, slot: _Slot) -> None:
        now = time.monotonic()
        if slot.respawn_at is not None:
            if now >= slot.respawn_at:
                self.respawns += 1
                self._spawn(slot)
                self._emit(
                    f"worker {slot.index} respawned "
                    f"(recovery {self.respawns}, "
                    f"{slot.rapid_failures} rapid failures on this slot)"
                )
            return
        if slot.terminal() or slot.proc is None or slot.proc.poll() is None:
            return
        returncode = slot.proc.returncode
        if returncode == 0:
            slot.drained = True  # clean drain/preemption: service is over
            return
        if slot.fault is not None and not self.respawn_faulted:
            slot.abandoned = True  # fault drills want the corpse left alone
            return
        rapid = (now - slot.spawned_at) < self.rapid_seconds
        slot.rapid_failures = slot.rapid_failures + 1 if rapid else 1
        if slot.rapid_failures >= self.max_rapid_failures:
            slot.sick = True
            self._emit(
                f"worker {slot.index} circuit breaker open: "
                f"{slot.rapid_failures} rapid failures (exit {returncode}); "
                f"not respawning"
            )
            return
        if slot.backoff is None or not rapid:
            slot.backoff = backoff_delays(
                self.backoff_base, self.backoff_cap, self._rng
            )
        delay = next(slot.backoff)
        slot.respawn_at = now + delay
        self._emit(
            f"worker {slot.index} exited {returncode}; "
            f"respawning in {delay:.2f}s"
        )

    # -------------------------------------------------------------- queries
    def alive_count(self) -> int:
        with self._lock:
            return sum(1 for slot in self._slots if slot.alive())

    def sick(self) -> bool:
        """True when at least one slot's circuit breaker has opened."""
        with self._lock:
            return any(slot.sick for slot in self._slots)

    def gave_up(self) -> bool:
        """No live worker, no pending respawn: nobody will ever serve again.

        The executor's dead-cluster watchdog aborts on this (in pure-local
        mode) — a merely *crashed* worker mid-backoff does not count, since
        its respawn is already scheduled.
        """
        with self._lock:
            return all(
                not slot.alive() and slot.respawn_at is None
                and slot.terminal()
                for slot in self._slots
            )

    def drained(self) -> bool:
        """True when every slot retired cleanly (exit 0)."""
        with self._lock:
            return all(slot.drained for slot in self._slots)

    # ------------------------------------------------------------- control
    def kill(self, index: int) -> None:
        """SIGKILL one worker (chaos drills); the supervisor will respawn it."""
        with self._lock:
            proc = self._slots[index].proc
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every slot is terminal; True iff all drained cleanly."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                slots = list(self._slots)
                settled = all(
                    slot.terminal() and not slot.alive() for slot in slots
                )
            if settled:
                return all(slot.drained for slot in slots)
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.1)

    def close(self, timeout: float = 5.0) -> None:
        """Stop supervising, wait briefly for drains, terminate stragglers."""
        self._closed.set()
        self._monitor.join(timeout=2.0)
        deadline = time.monotonic() + timeout
        with self._lock:
            procs = [slot.proc for slot in self._slots if slot.proc is not None]
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.wait(timeout=max(0.1, deadline - time.monotonic()))
                except subprocess.TimeoutExpired:
                    proc.terminate()
                    try:
                        proc.wait(timeout=2.0)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait()

    def __enter__(self) -> "WorkerSupervisor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def run_supervisor(
    host: str,
    port: int,
    pool: int,
    heartbeat: Optional[float] = None,
    redial: Optional[float] = None,
    fault: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    token: Optional[str] = None,
    max_rapid_failures: int = DEFAULT_MAX_RAPID_FAILURES,
) -> int:
    """Foreground driver behind ``repro workers --pool N``.

    Runs the pool until every slot retires; returns 0 when all drained
    cleanly and 1 when any slot's circuit breaker opened (the host is sick).
    SIGTERM/SIGINT terminate the children (each SIGTERM'd worker releases
    its lease cleanly) and exit 0.  A ``--fault`` mode set here applies to
    every slot **and** keeps respawning it — that is the point: the drill
    exists to exercise the breaker.
    """
    import signal

    stop = threading.Event()
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: stop.set())
    supervisor = WorkerSupervisor(
        host, port, pool,
        faults=[fault] * pool if fault else None,
        heartbeat=heartbeat,
        redial=redial,
        checkpoint_every=checkpoint_every,
        token=token,
        max_rapid_failures=max_rapid_failures,
        respawn_faulted=True,
        on_event=lambda message: print(
            f"workers: {message}", file=sys.stderr, flush=True
        ),
    )
    try:
        while not stop.is_set():
            with supervisor._lock:
                settled = all(
                    slot.terminal() and not slot.alive()
                    for slot in supervisor._slots
                )
            if settled:
                break
            stop.wait(0.2)
    finally:
        supervisor.close()
    if stop.is_set():
        print("workers: terminated by signal", file=sys.stderr)
        return 0
    if supervisor.sick():
        print(
            "workers: pool is sick (circuit breaker open); not respawning",
            file=sys.stderr,
        )
        return 1
    print(
        f"workers: pool drained ({supervisor.respawns} respawns)",
        file=sys.stderr,
    )
    return 0
