"""Declarative experiment-run API.

The evaluation grid of the paper — (workload x Table 2 configuration x core
count x seed) — is expressed as data (:class:`RunSpec` / :class:`SweepSpec`),
resolved through a :class:`WorkloadRegistry`, executed serially or on a
process pool, optionally memoized in an on-disk :class:`ResultCache`, and
driven either from Python (:class:`Runner`) or the ``python -m repro`` CLI.
"""

from repro.runner.cache import ResultCache
from repro.runner.chaos import (
    ChaosSchedule,
    KillEvent,
    run_embedded_drill,
    verify_against_serial,
)
from repro.runner.distributed import (
    Broker,
    DistributedExecutor,
    LocalCluster,
    run_worker,
)
from repro.runner.executor import (
    ParallelExecutor,
    SerialExecutor,
    backoff_variant,
    execute_spec,
)
from repro.runner.journal import (
    BrokerJournal,
    JournalWarning,
    ServiceJournal,
    TaskReplay,
)
from repro.runner.service_client import ServiceClient, ServiceExecutor
from repro.runner.supervisor import WorkerSupervisor, backoff_delays
from repro.runner.registry import (
    REGISTRY,
    WorkloadRegistry,
    register_workload,
    workload_names,
)
from repro.runner.runner import (
    Runner,
    SpecProgress,
    SweepProgressHook,
    SweepResult,
    default_runner,
)
from repro.runner.spec import DEFAULT_SEED, RunSpec, SweepSpec

__all__ = [
    "DEFAULT_SEED",
    "RunSpec",
    "SweepSpec",
    "WorkloadRegistry",
    "REGISTRY",
    "register_workload",
    "workload_names",
    "SerialExecutor",
    "ParallelExecutor",
    "DistributedExecutor",
    "Broker",
    "BrokerJournal",
    "JournalWarning",
    "ServiceJournal",
    "TaskReplay",
    "ServiceClient",
    "ServiceExecutor",
    "LocalCluster",
    "WorkerSupervisor",
    "backoff_delays",
    "run_worker",
    "ChaosSchedule",
    "KillEvent",
    "run_embedded_drill",
    "verify_against_serial",
    "execute_spec",
    "backoff_variant",
    "ResultCache",
    "Runner",
    "SpecProgress",
    "SweepProgressHook",
    "SweepResult",
    "default_runner",
]
