"""Workload registry: name -> builder.

Workload modules self-register their builders with the
:func:`register_workload` decorator::

    @register_workload("tightloop")
    def build_tightloop(machine, iterations=10, ...):
        ...

which is what makes a :class:`~repro.runner.spec.RunSpec` serializable — the
spec carries only the *name* plus JSON parameters, and any process (including
a pool worker) can rebuild the workload by importing :mod:`repro.workloads`
and looking the name up here.  New scenario modules only need the decorator;
the runner, cache, and CLI pick them up automatically.
"""

from __future__ import annotations

from typing import Callable, Dict, List, TYPE_CHECKING

from repro.errors import WorkloadError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.machine.manycore import Manycore
    from repro.workloads.base import WorkloadHandle

#: A workload builder: ``builder(machine, **params) -> WorkloadHandle``.
WorkloadBuilder = Callable[..., "WorkloadHandle"]


class WorkloadRegistry:
    """Mutable mapping from workload names to builder callables."""

    def __init__(self) -> None:
        self._builders: Dict[str, WorkloadBuilder] = {}
        self._populated = False

    # ---------------------------------------------------------- registration
    def register(self, name: str) -> Callable[[WorkloadBuilder], WorkloadBuilder]:
        """Decorator registering ``builder`` under ``name``.

        Re-registering the same name is an error unless it is the same
        callable (module reloads in interactive sessions are harmless).
        """
        if not name or not isinstance(name, str):
            raise WorkloadError("workload names must be non-empty strings")

        def decorator(builder: WorkloadBuilder) -> WorkloadBuilder:
            existing = self._builders.get(name)
            if existing is not None and getattr(existing, "__qualname__", None) != getattr(
                builder, "__qualname__", None
            ):
                raise WorkloadError(f"workload {name!r} is already registered as {existing!r}")
            self._builders[name] = builder
            return builder

        return decorator

    # --------------------------------------------------------------- lookup
    def get(self, name: str) -> WorkloadBuilder:
        self._ensure_populated()
        if name not in self._builders:
            raise WorkloadError(
                f"unknown workload {name!r}; registered workloads: {self.names()}"
            )
        return self._builders[name]

    def names(self) -> List[str]:
        self._ensure_populated()
        return sorted(self._builders)

    def __contains__(self, name: str) -> bool:
        self._ensure_populated()
        return name in self._builders

    def build(self, machine: "Manycore", name: str, params: Dict[str, object]) -> "WorkloadHandle":
        """Instantiate workload ``name`` on ``machine`` with ``params``."""
        return self.get(name)(machine, **params)

    # ------------------------------------------------------------ internals
    def _ensure_populated(self) -> None:
        """Import the workload package so its modules self-register.

        Lazy so that ``repro.runner`` stays importable from workload modules
        themselves without a cycle, and so worker processes populate the
        registry on first lookup.
        """
        if not self._populated:
            # Flag, not an emptiness check: a user-registered workload must
            # not suppress the import that registers the built-in ones.
            self._populated = True
            import repro.workloads  # noqa: F401  (import side effect registers builders)


#: The process-wide registry used by the executor and CLI.
REGISTRY = WorkloadRegistry()


def register_workload(name: str) -> Callable[[WorkloadBuilder], WorkloadBuilder]:
    """Register a workload builder on the global :data:`REGISTRY`."""
    return REGISTRY.register(name)


def workload_names() -> List[str]:
    """Names of every registered workload."""
    return REGISTRY.names()
