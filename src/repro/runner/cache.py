"""On-disk JSON result cache keyed by ``RunSpec.key()``.

Re-running a figure with one changed axis (an extra core count, one more
configuration) only simulates the delta; every grid point already on disk is
loaded back instead of re-simulated.  One JSON file per spec keeps concurrent
sweeps safe — writers go through a same-directory temp file + ``os.replace``
so readers never observe a partial file.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional, Set, Union

from repro.machine.results import SimResult
from repro.runner.spec import RunSpec

#: Bump when the on-disk layout or SimResult serialization changes shape.
#: v2: results carry ``extra["operations"]`` / ``extra["wall_seconds"]``,
#: which the MetricFrame analysis layer derives per-op metrics from.
CACHE_FORMAT_VERSION = 2

#: ``*.tmp`` files older than this are orphans: a writer that died between
#: ``mkstemp`` and ``os.replace``.  A live writer holds its temp file for the
#: milliseconds one ``json.dump`` takes, so ten minutes is a wide margin even
#: for distributed workers sharing the directory over a slow network mount.
STALE_TMP_AGE_SECONDS = 600.0


class ResultCache:
    """Directory of ``<spec-key>.json`` files storing serialized results."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ---------------------------------------------------------------- paths
    def entry_path(self, spec: RunSpec) -> Path:
        return self.path / f"{spec.key()}.json"

    def __contains__(self, spec: RunSpec) -> bool:
        return self.entry_path(spec).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.path.glob("*.json"))

    def contains(self, key: str) -> bool:
        """Fast-path presence check by spec *key* — one stat, no body read.

        Purely an existence test: a corrupt or stale-version entry still
        "contains" until the eventual :meth:`get` evicts it.  That is the
        contract the sweep service's broker-side short-circuit relies on —
        it always follows a positive ``contains`` with a ``get``, so dead
        entries fall through to normal scheduling instead of being served.
        """
        return (self.path / f"{key}.json").is_file()

    def keys(self) -> Set[str]:
        """Spec keys of every entry currently on disk (no bodies read)."""
        return {entry.stem for entry in self.path.glob("*.json")}

    # ------------------------------------------------------------ get / put
    def get(self, spec: RunSpec) -> Optional[SimResult]:
        """The cached result for ``spec``, or None on a miss.

        Unreadable and stale-version entries are deleted on the spot: they
        can never be served again (``put`` would overwrite them anyway), and
        leaving them around would make ``len(cache)`` count dead files.
        """
        entry = self.entry_path(spec)
        try:
            payload = json.loads(entry.read_text(encoding="utf-8"))
        except OSError:
            self.misses += 1
            return None
        except json.JSONDecodeError:
            self.misses += 1
            self._evict(entry)
            return None
        if payload.get("version") != CACHE_FORMAT_VERSION:
            self.misses += 1
            self._evict(entry)
            return None
        self.hits += 1
        return SimResult.from_dict(payload["result"])

    def put(self, spec: RunSpec, result: SimResult) -> None:
        """Store ``result`` under ``spec``'s key (atomic replace)."""
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        handle, temp_name = tempfile.mkstemp(dir=self.path, suffix=".tmp")
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(payload, stream)
            os.replace(temp_name, self.entry_path(spec))
        except FileNotFoundError:
            # A concurrent clear() swept our in-flight temp file out from
            # under us.  The entry is simply not cached; losing that race
            # must not abort a sweep that already simulated the result.
            pass
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------- maintenance
    def clear(self) -> int:
        """Delete every cache entry and temp file; returns the number removed.

        Race-safe against other maintainers (multi-host shared directories):
        an entry someone else already removed is simply not counted.
        """
        removed = 0
        for entry in self.path.glob("*.json"):
            removed += self._evict(entry)
        return removed + self._sweep_tmp(max_age=None)

    def prune(self, stale_tmp_age: float = STALE_TMP_AGE_SECONDS) -> int:
        """Delete every dead entry (corrupt or stale-version); returns the count.

        ``get`` already evicts dead entries it happens to touch; ``prune``
        sweeps the whole directory, e.g. after bumping
        :data:`CACHE_FORMAT_VERSION`.  Orphaned ``*.tmp`` files older than
        ``stale_tmp_age`` seconds — leaked by writers that died mid-``put``,
        a recurring state when many distributed workers share the directory —
        are swept too; younger ones may belong to a live writer and are kept.
        """
        removed = 0
        for entry in self.path.glob("*.json"):
            try:
                payload = json.loads(entry.read_text(encoding="utf-8"))
            except OSError:
                continue  # concurrently removed; nothing to prune
            except json.JSONDecodeError:
                removed += self._evict(entry)
                continue
            if payload.get("version") != CACHE_FORMAT_VERSION:
                removed += self._evict(entry)
        return removed + self._sweep_tmp(max_age=stale_tmp_age)

    def _sweep_tmp(self, max_age: Optional[float]) -> int:
        """Delete ``*.tmp`` files older than ``max_age`` seconds (None = all)."""
        removed = 0
        # Host-side wall clock for cache-file staleness; runner/ is outside
        # the sim-core packages, so DET001's path scope exempts it.
        now = time.time()
        for entry in self.path.glob("*.tmp"):
            if max_age is not None:
                try:
                    if now - entry.stat().st_mtime < max_age:
                        continue
                except OSError:
                    continue  # its writer just finished or another sweeper won
            removed += self._evict(entry)
        return removed

    @staticmethod
    def _evict(entry: Path) -> int:
        try:
            entry.unlink()
            return 1
        except OSError:
            return 0  # lost a race with another evictor; already gone

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self)}
