"""Executors: run a batch of RunSpecs serially or on a process pool.

Each :class:`~repro.runner.spec.RunSpec` builds its *own*
:class:`~repro.machine.manycore.Manycore` inside :func:`execute_spec`, so
sweep points share no state and are embarrassingly parallel.  The parallel
executor ships specs to workers as JSON dicts and receives
:class:`~repro.machine.results.SimResult` dicts back, exercising exactly the
serialization path the result cache uses; simulation determinism comes from
the sha256-derived RNG streams, so a worker process reproduces the serial
cycle counts bit-for-bit.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import (
    ConfigurationError,
    ExecutionError,
    PartialSweepError,
    WorkloadError,
)
from repro.machine.results import SimResult
from repro.runner.spec import RunSpec

#: Optional progress hook: called with (index, total, spec, result).
ProgressHook = Callable[[int, int, RunSpec, SimResult], None]

#: Prefix of the spec variant that overrides the MAC backoff policy instead
#: of naming a Table 6 sensitivity variant, e.g. ``backoff=exponential``.
BACKOFF_VARIANT_PREFIX = "backoff="


def backoff_variant(kind: str) -> str:
    """The spec ``variant`` string selecting backoff policy ``kind``."""
    return f"{BACKOFF_VARIANT_PREFIX}{kind}"


def build_config_for(spec: RunSpec):
    """Build the (possibly sensitivity-variant) MachineConfig for ``spec``.

    Besides the Table 6 names, ``variant`` accepts ``backoff=<kind>`` to swap
    the Data-channel collision-resolution policy (Section 5.3 ablations and
    the contention-scenario suite's backoff axis).
    """
    from repro.machine.configs import config_by_name, sensitivity_variants

    config = config_by_name(spec.config, num_cores=spec.num_cores, seed=spec.seed)
    if spec.variant is not None:
        if spec.variant.startswith(BACKOFF_VARIANT_PREFIX):
            from dataclasses import replace

            kind = spec.variant[len(BACKOFF_VARIANT_PREFIX):]
            return config.replace(
                name=f"{config.name}/{spec.variant}",
                backoff=replace(config.backoff, kind=kind),
            ).validate()
        variants = sensitivity_variants(config)
        if spec.variant not in variants:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"unknown sensitivity variant {spec.variant!r}; choices: {sorted(variants)}"
            )
        config = variants[spec.variant]
    return config


def execute_spec(
    spec: RunSpec,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    auto_snapshot: Optional[int] = None,
) -> SimResult:
    """Run one spec end-to-end: config -> machine -> workload -> SimResult.

    The simulation's wall-clock time lands in ``result.extra["wall_seconds"]``
    so a :class:`~repro.analysis.frame.MetricFrame` can derive events/sec per
    grid point (cached results carry the timing of the run that produced
    them; their ``cached`` flag says so).

    With ``checkpoint_every``/``checkpoint_dir`` set, execution routes
    through :func:`repro.snapshot.execute_with_checkpoints`: a snapshot is
    written every N events, an existing checkpoint for the spec is resumed
    from, and the result stays bit-identical to an uncheckpointed run.
    """
    import time

    if checkpoint_every is not None or checkpoint_dir is not None:
        from repro.snapshot import execute_with_checkpoints

        return execute_with_checkpoints(
            spec,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            auto_snapshot=auto_snapshot,
        )

    from repro.machine.manycore import Manycore
    from repro.runner.registry import REGISTRY

    machine = Manycore(build_config_for(spec))
    handle = REGISTRY.build(machine, spec.workload, spec.params_dict())
    started = time.perf_counter()
    result = handle.run(max_cycles=spec.max_cycles)
    result.extra.setdefault("wall_seconds", round(time.perf_counter() - started, 6))
    return result


def _execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-process entry point: spec dict in, result dict out.

    Module-level (picklable) and dict-transported so no live simulator
    objects ever cross the process boundary.
    """
    spec = RunSpec.from_dict(payload)
    return execute_spec(spec).to_dict()


def describe_error(error: BaseException) -> str:
    """One-line rendering of a per-spec execution failure."""
    return f"{type(error).__name__}: {error}"


def failures_error(
    failures: Sequence[Tuple[RunSpec, str]], total: int
) -> ExecutionError:
    """Build the :class:`ExecutionError` summarizing a sweep's failed points."""
    shown = "; ".join(f"[{spec.label()}] {reason}" for spec, reason in failures[:3])
    if len(failures) > 3:
        shown += f"; ... and {len(failures) - 3} more"
    return ExecutionError(
        f"{len(failures)} of {total} grid points failed after retries: {shown}",
        failures=failures,
    )


def partial_sweep_error(
    failures: Sequence[Tuple[RunSpec, str]],
    timed_out: Sequence[Tuple[RunSpec, str]],
    total: int,
) -> PartialSweepError:
    """Build the :class:`PartialSweepError` for a deadline-degraded sweep.

    Raised — like :func:`failures_error` — only after every obtained result
    has been yielded: the sweep *degraded*, it did not fail wholesale, and
    the caller keeps (and caches) everything that finished in time.
    """
    shown = "; ".join(
        f"[{spec.label()}] {reason}" for spec, reason in timed_out[:3]
    )
    if len(timed_out) > 3:
        shown += f"; ... and {len(timed_out) - 3} more"
    message = (
        f"sweep degraded gracefully: {len(timed_out)} of {total} grid points "
        f"timed out: {shown}"
    )
    if failures:
        message += f" ({len(failures)} more failed for other reasons)"
    return PartialSweepError(message, failures=failures, timed_out=timed_out)


def validated_positions(
    pairs: Iterator[Tuple[int, SimResult]], specs: Sequence[RunSpec]
) -> Iterator[Tuple[int, SimResult]]:
    """Re-yield executor ``(position, result)`` pairs, rejecting bad positions.

    An out-of-range, duplicate, or result-less position means a broken
    executor; silently dropping or collapsing such rows used to mask the bug
    downstream, so every consumer of ``run_iter`` routes through this check.
    """
    seen: set = set()
    for position, result in pairs:
        if not 0 <= position < len(specs):
            raise WorkloadError(
                f"executor yielded position {position}, outside the sweep's "
                f"{len(specs)} specs"
            )
        if position in seen:
            raise WorkloadError(
                f"executor yielded position {position} "
                f"({specs[position].label()}) more than once"
            )
        if result is None:
            raise WorkloadError(
                f"executor yielded no result (None) for position {position} "
                f"({specs[position].label()})"
            )
        seen.add(position)
        yield position, result


class _ExecutorBase:
    """Shared batch driver: ``run`` collects ``run_iter`` back into spec order.

    Subclasses implement :meth:`run_iter`, a generator yielding
    ``(position, result)`` pairs *in completion order* as each spec finishes —
    the streaming primitive the Runner's per-spec progress is built on.
    """

    def run_iter(
        self, specs: Sequence[RunSpec]
    ) -> Iterator[Tuple[int, SimResult]]:
        raise NotImplementedError

    def run(
        self, specs: Sequence[RunSpec], progress: Optional[ProgressHook] = None
    ) -> List[SimResult]:
        results: List[Optional[SimResult]] = [None] * len(specs)
        for index, result in validated_positions(self.run_iter(specs), specs):
            results[index] = result
            if progress is not None:
                progress(index, len(specs), specs[index], result)
        missing = [index for index, result in enumerate(results) if result is None]
        if missing:
            raise WorkloadError(
                f"executor yielded no result for position(s) {missing} "
                f"of {len(specs)} specs"
            )
        return results  # fully populated: no position is None past the check


class SerialExecutor(_ExecutorBase):
    """Run specs one after the other in the calling process.

    Optionally checkpointing: with ``checkpoint_every``/``checkpoint_dir``
    set, each spec writes periodic snapshots and resumes from any existing
    checkpoint, so a killed sweep re-enters mid-spec instead of from zero.

    Optionally deadlined: ``spec_deadline`` caps each grid point's wall-clock
    seconds and ``sweep_deadline`` budgets the whole batch.  A spec that
    overruns is stopped at its next event-slice boundary (its partial
    snapshot persists when ``checkpoint_dir`` is set, so a later run with a
    bigger budget resumes instead of restarting); once the sweep budget is
    gone the remaining specs are skipped outright.  Every result obtained in
    time is still yielded — the overruns then surface together as one
    :class:`~repro.errors.PartialSweepError`.
    """

    def __init__(
        self,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        spec_deadline: Optional[float] = None,
        sweep_deadline: Optional[float] = None,
        auto_snapshot: Optional[int] = None,
    ) -> None:
        if spec_deadline is not None and spec_deadline <= 0:
            raise ConfigurationError("spec_deadline must be positive seconds")
        if sweep_deadline is not None and sweep_deadline <= 0:
            raise ConfigurationError("sweep_deadline must be positive seconds")
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = checkpoint_dir
        self.spec_deadline = spec_deadline
        self.sweep_deadline = sweep_deadline
        self.auto_snapshot = auto_snapshot

    def run_iter(
        self, specs: Sequence[RunSpec]
    ) -> Iterator[Tuple[int, SimResult]]:
        import time

        if self.spec_deadline is None and self.sweep_deadline is None:
            for index, spec in enumerate(specs):
                yield index, execute_spec(
                    spec,
                    checkpoint_every=self.checkpoint_every,
                    checkpoint_dir=self.checkpoint_dir,
                    auto_snapshot=self.auto_snapshot,
                )
            return
        from repro.snapshot import ExecutionPreempted, execute_with_checkpoints

        started = time.monotonic()
        sweep_deadline = (
            started + self.sweep_deadline
            if self.sweep_deadline is not None else None
        )
        timed_out: List[Tuple[RunSpec, str]] = []
        for index, spec in enumerate(specs):
            now = time.monotonic()
            if sweep_deadline is not None and now >= sweep_deadline:
                timed_out.append((
                    spec,
                    f"sweep budget exhausted ({self.sweep_deadline}s)",
                ))
                continue
            deadline = now + self.spec_deadline if self.spec_deadline else None
            if sweep_deadline is not None:
                deadline = (
                    sweep_deadline if deadline is None
                    else min(deadline, sweep_deadline)
                )
            try:
                result = execute_with_checkpoints(
                    spec,
                    checkpoint_every=self.checkpoint_every,
                    checkpoint_dir=self.checkpoint_dir,
                    auto_snapshot=self.auto_snapshot,
                    should_stop=lambda: time.monotonic() >= deadline,
                )
            except ExecutionPreempted as preempted:
                if self.checkpoint_dir is not None:
                    # The partial run is not wasted: persist the preemption
                    # snapshot so a rerun with more budget resumes mid-spec.
                    from repro.snapshot import checkpoint_path, save_snapshot

                    try:
                        save_snapshot(
                            preempted.snapshot,
                            checkpoint_path(self.checkpoint_dir, spec),
                        )
                    except OSError:
                        pass  # disk trouble costs resume granularity only
                if (
                    sweep_deadline is not None
                    and time.monotonic() >= sweep_deadline
                ):
                    reason = f"sweep budget exhausted ({self.sweep_deadline}s)"
                else:
                    reason = (
                        f"spec deadline exceeded ({self.spec_deadline}s)"
                    )
                timed_out.append((spec, reason))
                continue
            yield index, result
        if timed_out:
            raise partial_sweep_error([], timed_out, len(specs))


class ParallelExecutor(_ExecutorBase):
    """Fan specs out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

    ``run`` returns results in spec order regardless of completion order, so
    a parallel sweep is a drop-in replacement for a serial one; ``run_iter``
    streams ``(position, result)`` pairs as workers finish.

    A failing grid point no longer aborts the sweep: failures are captured
    and retried, and only after every successful result has been yielded does
    the executor raise an :class:`~repro.errors.ExecutionError` naming the
    specs that still failed.  A spec that *crashes* its worker process breaks
    the whole pool, taking innocent in-flight specs down with it — so
    failures first get one shared fresh-pool retry (cheap, parallel, and
    enough for all the collateral victims), and anything that fails again
    gets a final attempt in its own single-spec pool, where a crasher can
    only break itself.
    """

    #: Per-spec execution attempts on both paths: the initial run, the
    #: shared-pool retry, and the isolated last attempt.
    MAX_ATTEMPTS = 3

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("max_workers must be at least 1")
        self.max_workers = max_workers or os.cpu_count() or 1

    def run_iter(
        self, specs: Sequence[RunSpec]
    ) -> Iterator[Tuple[int, SimResult]]:
        if not specs:
            return
        if len(specs) <= 1 or self.max_workers == 1:
            yield from self._run_iter_inline(specs)
            return
        payloads = [spec.to_dict() for spec in specs]
        first_failed: Dict[int, str] = {}
        yield from self._pool_round(
            payloads, range(len(specs)), self.max_workers, first_failed
        )
        # Shared-pool retry: one crasher fails every in-flight spec with
        # BrokenProcessPool, so most "failures" are collateral — re-running
        # them together in a fresh pool keeps the retry parallel.
        retry_failed: Dict[int, str] = {}
        if first_failed:
            yield from self._pool_round(
                payloads, sorted(first_failed), self.max_workers, retry_failed
            )
        # Isolated last attempt: whatever failed twice runs alone in a
        # single-spec pool, where a pool-crashing spec can only break itself.
        failures: List[Tuple[RunSpec, str]] = []
        for position in sorted(retry_failed):
            last_failed: Dict[int, str] = {}
            yield from self._pool_round(payloads, [position], 1, last_failed)
            if last_failed:
                failures.append((specs[position], last_failed[position]))
        if failures:
            raise failures_error(failures, len(specs))

    def _pool_round(
        self,
        payloads: Sequence[Dict[str, Any]],
        positions: Any,
        max_workers: int,
        failed: Dict[int, str],
    ) -> Iterator[Tuple[int, SimResult]]:
        """One fresh-pool pass over ``positions``; failures land in ``failed``."""
        positions = list(positions)
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(max_workers, len(positions))
        ) as pool:
            futures = {
                pool.submit(_execute_payload, payloads[position]): position
                for position in positions
            }
            for future in concurrent.futures.as_completed(futures):
                position = futures[future]
                try:
                    payload = future.result()
                except Exception as error:  # noqa: BLE001 - captured per spec
                    failed[position] = describe_error(error)
                    continue
                yield position, SimResult.from_dict(payload)

    def _run_iter_inline(
        self, specs: Sequence[RunSpec]
    ) -> Iterator[Tuple[int, SimResult]]:
        """In-process path for trivial batches, with the same retry semantics."""
        failures: List[Tuple[RunSpec, str]] = []
        for index, spec in enumerate(specs):
            last_error: Optional[str] = None
            for _ in range(self.MAX_ATTEMPTS):
                try:
                    result = execute_spec(spec)
                except Exception as error:  # noqa: BLE001 - captured per spec
                    last_error = describe_error(error)
                    continue
                yield index, result
                last_error = None
                break
            if last_error is not None:
                failures.append((spec, last_error))
        if failures:
            raise failures_error(failures, len(specs))
