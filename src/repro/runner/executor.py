"""Executors: run a batch of RunSpecs serially or on a process pool.

Each :class:`~repro.runner.spec.RunSpec` builds its *own*
:class:`~repro.machine.manycore.Manycore` inside :func:`execute_spec`, so
sweep points share no state and are embarrassingly parallel.  The parallel
executor ships specs to workers as JSON dicts and receives
:class:`~repro.machine.results.SimResult` dicts back, exercising exactly the
serialization path the result cache uses; simulation determinism comes from
the sha256-derived RNG streams, so a worker process reproduces the serial
cycle counts bit-for-bit.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.machine.results import SimResult
from repro.runner.spec import RunSpec

#: Optional progress hook: called with (index, total, spec, result).
ProgressHook = Callable[[int, int, RunSpec, SimResult], None]

#: Prefix of the spec variant that overrides the MAC backoff policy instead
#: of naming a Table 6 sensitivity variant, e.g. ``backoff=exponential``.
BACKOFF_VARIANT_PREFIX = "backoff="


def backoff_variant(kind: str) -> str:
    """The spec ``variant`` string selecting backoff policy ``kind``."""
    return f"{BACKOFF_VARIANT_PREFIX}{kind}"


def build_config_for(spec: RunSpec):
    """Build the (possibly sensitivity-variant) MachineConfig for ``spec``.

    Besides the Table 6 names, ``variant`` accepts ``backoff=<kind>`` to swap
    the Data-channel collision-resolution policy (Section 5.3 ablations and
    the contention-scenario suite's backoff axis).
    """
    from repro.machine.configs import config_by_name, sensitivity_variants

    config = config_by_name(spec.config, num_cores=spec.num_cores, seed=spec.seed)
    if spec.variant is not None:
        if spec.variant.startswith(BACKOFF_VARIANT_PREFIX):
            from dataclasses import replace

            kind = spec.variant[len(BACKOFF_VARIANT_PREFIX):]
            return config.replace(
                name=f"{config.name}/{spec.variant}",
                backoff=replace(config.backoff, kind=kind),
            ).validate()
        variants = sensitivity_variants(config)
        if spec.variant not in variants:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"unknown sensitivity variant {spec.variant!r}; choices: {sorted(variants)}"
            )
        config = variants[spec.variant]
    return config


def execute_spec(spec: RunSpec) -> SimResult:
    """Run one spec end-to-end: config -> machine -> workload -> SimResult.

    The simulation's wall-clock time lands in ``result.extra["wall_seconds"]``
    so a :class:`~repro.analysis.frame.MetricFrame` can derive events/sec per
    grid point (cached results carry the timing of the run that produced
    them; their ``cached`` flag says so).
    """
    import time

    from repro.machine.manycore import Manycore
    from repro.runner.registry import REGISTRY

    machine = Manycore(build_config_for(spec))
    handle = REGISTRY.build(machine, spec.workload, spec.params_dict())
    started = time.perf_counter()
    result = handle.run(max_cycles=spec.max_cycles)
    result.extra.setdefault("wall_seconds", round(time.perf_counter() - started, 6))
    return result


def _execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-process entry point: spec dict in, result dict out.

    Module-level (picklable) and dict-transported so no live simulator
    objects ever cross the process boundary.
    """
    spec = RunSpec.from_dict(payload)
    return execute_spec(spec).to_dict()


class _ExecutorBase:
    """Shared batch driver: ``run`` collects ``run_iter`` back into spec order.

    Subclasses implement :meth:`run_iter`, a generator yielding
    ``(position, result)`` pairs *in completion order* as each spec finishes —
    the streaming primitive the Runner's per-spec progress is built on.
    """

    def run_iter(
        self, specs: Sequence[RunSpec]
    ) -> Iterator[Tuple[int, SimResult]]:
        raise NotImplementedError

    def run(
        self, specs: Sequence[RunSpec], progress: Optional[ProgressHook] = None
    ) -> List[SimResult]:
        results: List[Optional[SimResult]] = [None] * len(specs)
        for index, result in self.run_iter(specs):
            results[index] = result
            if progress is not None:
                progress(index, len(specs), specs[index], result)
        return [result for result in results if result is not None]


class SerialExecutor(_ExecutorBase):
    """Run specs one after the other in the calling process."""

    def run_iter(
        self, specs: Sequence[RunSpec]
    ) -> Iterator[Tuple[int, SimResult]]:
        for index, spec in enumerate(specs):
            yield index, execute_spec(spec)


class ParallelExecutor(_ExecutorBase):
    """Fan specs out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

    ``run`` returns results in spec order regardless of completion order, so
    a parallel sweep is a drop-in replacement for a serial one; ``run_iter``
    streams ``(position, result)`` pairs as workers finish.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers or os.cpu_count() or 1

    def run_iter(
        self, specs: Sequence[RunSpec]
    ) -> Iterator[Tuple[int, SimResult]]:
        if len(specs) <= 1 or self.max_workers == 1:
            yield from SerialExecutor().run_iter(specs)
            return
        payloads = [spec.to_dict() for spec in specs]
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.max_workers, len(specs))
        ) as pool:
            futures = {
                pool.submit(_execute_payload, payload): index
                for index, payload in enumerate(payloads)
            }
            for future in concurrent.futures.as_completed(futures):
                yield futures[future], SimResult.from_dict(future.result())
