"""Executors: run a batch of RunSpecs serially or on a process pool.

Each :class:`~repro.runner.spec.RunSpec` builds its *own*
:class:`~repro.machine.manycore.Manycore` inside :func:`execute_spec`, so
sweep points share no state and are embarrassingly parallel.  The parallel
executor ships specs to workers as JSON dicts and receives
:class:`~repro.machine.results.SimResult` dicts back, exercising exactly the
serialization path the result cache uses; simulation determinism comes from
the sha256-derived RNG streams, so a worker process reproduces the serial
cycle counts bit-for-bit.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.machine.results import SimResult
from repro.runner.spec import RunSpec

#: Optional progress hook: called with (index, total, spec, result).
ProgressHook = Callable[[int, int, RunSpec, SimResult], None]


def build_config_for(spec: RunSpec):
    """Build the (possibly sensitivity-variant) MachineConfig for ``spec``."""
    from repro.machine.configs import config_by_name, sensitivity_variants

    config = config_by_name(spec.config, num_cores=spec.num_cores, seed=spec.seed)
    if spec.variant is not None:
        variants = sensitivity_variants(config)
        if spec.variant not in variants:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"unknown sensitivity variant {spec.variant!r}; choices: {sorted(variants)}"
            )
        config = variants[spec.variant]
    return config


def execute_spec(spec: RunSpec) -> SimResult:
    """Run one spec end-to-end: config -> machine -> workload -> SimResult."""
    from repro.machine.manycore import Manycore
    from repro.runner.registry import REGISTRY

    machine = Manycore(build_config_for(spec))
    handle = REGISTRY.build(machine, spec.workload, spec.params_dict())
    return handle.run(max_cycles=spec.max_cycles)


def _execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-process entry point: spec dict in, result dict out.

    Module-level (picklable) and dict-transported so no live simulator
    objects ever cross the process boundary.
    """
    spec = RunSpec.from_dict(payload)
    return execute_spec(spec).to_dict()


class SerialExecutor:
    """Run specs one after the other in the calling process."""

    def run(
        self, specs: Sequence[RunSpec], progress: Optional[ProgressHook] = None
    ) -> List[SimResult]:
        results: List[SimResult] = []
        for index, spec in enumerate(specs):
            result = execute_spec(spec)
            results.append(result)
            if progress is not None:
                progress(index, len(specs), spec, result)
        return results


class ParallelExecutor:
    """Fan specs out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Results come back in spec order regardless of completion order, so a
    parallel sweep is a drop-in replacement for a serial one.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers or os.cpu_count() or 1

    def run(
        self, specs: Sequence[RunSpec], progress: Optional[ProgressHook] = None
    ) -> List[SimResult]:
        if len(specs) <= 1 or self.max_workers == 1:
            return SerialExecutor().run(specs, progress)
        payloads = [spec.to_dict() for spec in specs]
        results: List[Optional[SimResult]] = [None] * len(specs)
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.max_workers, len(specs))
        ) as pool:
            futures = {
                pool.submit(_execute_payload, payload): index
                for index, payload in enumerate(payloads)
            }
            for future in concurrent.futures.as_completed(futures):
                index = futures[future]
                results[index] = SimResult.from_dict(future.result())
                if progress is not None:
                    progress(index, len(specs), specs[index], results[index])
        return [result for result in results if result is not None]
