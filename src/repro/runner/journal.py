"""Broker write-ahead journal: crash-safe task-state transitions.

The distributed broker (:class:`~repro.runner.distributed.Broker`) keeps all
lease/attempt/checkpoint state in memory; without a journal, killing the
sweep host forfeits every in-flight attempt and every shipped checkpoint.
:class:`BrokerJournal` closes that hole: every task state transition —
``assigned`` / ``checkpointed`` / ``released`` / ``excluded`` /
``completed`` / ``failed`` — is appended as one JSON line and fsync'd before
the transition is acted on, so a broker constructed with the same
``journal_dir`` after a SIGKILL replays the log and resumes the *same*
sweep: finished grid points are re-emitted (not re-run), shipped checkpoints
are re-adopted, burned attempts and worker exclusions stick, and the
attempt that was in flight when the broker died is refunded (the broker's
death is not the worker's fault — mirroring the ``release`` semantics).

Records are keyed by the spec's sha256 :meth:`~repro.runner.spec.RunSpec.key`
rather than by queue position, so a restarted sweep whose grid shrank (some
specs now served by the result cache) still maps every surviving record onto
the right task.

Durability contract: ``fsync`` per record means the journal never lies about
the past — but the *last* record may be torn (the process died mid-write).
Replay therefore tolerates exactly one invalid record at the tail (dropped
with a :class:`JournalWarning`); an invalid record anywhere else means real
corruption and raises :class:`~repro.errors.JournalError`.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, TextIO, Union

from repro.errors import JournalError

#: File name inside ``journal_dir`` (one journal per sweep/run directory).
JOURNAL_NAME = "journal.jsonl"
#: Header record identifying the file; first line of every journal.
JOURNAL_FORMAT = "wisync-broker-journal"
JOURNAL_VERSION = 1

#: Task-transition record kinds (the ``kind`` field of every record).
KIND_ASSIGNED = "assigned"
KIND_CHECKPOINTED = "checkpointed"
KIND_RELEASED = "released"
KIND_EXCLUDED = "excluded"
KIND_COMPLETED = "completed"
KIND_FAILED = "failed"

#: Job-lifecycle record kinds, written only by the multi-tenant sweep
#: service's :class:`ServiceJournal`; task-transition records in a service
#: journal additionally carry a ``job`` field scoping them to one job.
KIND_JOB_SUBMITTED = "job-submitted"
KIND_JOB_CANCELLED = "job-cancelled"

_KNOWN_KINDS = frozenset({
    KIND_ASSIGNED, KIND_CHECKPOINTED, KIND_RELEASED,
    KIND_EXCLUDED, KIND_COMPLETED, KIND_FAILED,
})


class JournalWarning(UserWarning):
    """A journal was readable but imperfect (torn tail, unknown record kind).

    Mirrors :class:`~repro.snapshot.SnapshotWarning`: the condition costs
    only the affected record, never the sweep, so it warns instead of raising.
    """


@dataclass
class TaskReplay:
    """Replayed state of one spec, aggregated from its journal records."""

    attempts: int = 0
    #: True while the last record left the task leased (in flight at death).
    leased: bool = False
    excluded: Set[str] = field(default_factory=set)
    errors: List[str] = field(default_factory=list)
    #: Latest shipped snapshot *document* (parsed lazily by the adopter).
    checkpoint: Optional[Dict[str, Any]] = None
    #: SimResult dict of a finished task (terminal; wins over everything).
    result: Optional[Dict[str, Any]] = None
    failed: bool = False

    def settled_attempts(self) -> int:
        """Attempt count a restarted broker should charge the task.

        An assignment that was still in flight when the broker died is
        refunded: the lease died with the broker, not through any fault of
        the worker, exactly like a clean ``release``.
        """
        return max(0, self.attempts - (1 if self.leased else 0))


class BrokerJournal:
    """Append-only JSONL log of broker task transitions, fsync'd per record.

    ``append`` opens the file lazily (writing the header first on an empty
    file) and flushes + fsyncs every record, so anything the broker acted on
    is durable before the action's effects can reach a worker.  ``replay``
    reads the whole log back into per-spec-key :class:`TaskReplay` states —
    a pure function of the file, so replaying twice (or replaying, appending,
    and replaying again) is idempotent by construction.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.path = self.directory / JOURNAL_NAME
        self._handle: Optional[TextIO] = None

    # -------------------------------------------------------------- writing
    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one transition record (``kind`` + ``key`` + data)."""
        handle = self._open()
        handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def _open(self) -> TextIO:
        if self._handle is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._handle = open(self.path, "a", encoding="utf-8")
            if fresh:
                self._handle.write(json.dumps({
                    "format": JOURNAL_FORMAT, "version": JOURNAL_VERSION,
                }, separators=(",", ":")) + "\n")
                self._handle.flush()
                os.fsync(self._handle.fileno())
        return self._handle

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None

    def __enter__(self) -> "BrokerJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -------------------------------------------------------------- reading
    def exists(self) -> bool:
        return self.path.is_file()

    def replay(self) -> Dict[str, TaskReplay]:
        """Aggregate the journal into per-spec-key :class:`TaskReplay` states.

        Returns an empty mapping when no journal exists yet.  A torn tail
        record warns (:class:`JournalWarning`) and is dropped; an invalid
        record before the tail, or a foreign/unsupported header, raises
        :class:`~repro.errors.JournalError`.
        """
        if not self.exists():
            return {}
        return self._aggregate(self._records())

    def _records(self) -> List[Dict[str, Any]]:
        """Validated body records (header stripped), torn tail dropped."""
        raw_lines = self.path.read_text(encoding="utf-8").split("\n")
        if raw_lines and raw_lines[-1] == "":
            raw_lines.pop()  # the file ends in a newline: no torn tail
        records: List[Dict[str, Any]] = []
        for number, line in enumerate(raw_lines, start=1):
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError(  # repro: noqa[ERR001] -- control flow: merges with json.loads failures in the except below, which classifies torn tail vs corruption
                        "journal records are JSON objects"
                    )
            except ValueError as error:
                if number == len(raw_lines):
                    warnings.warn(
                        f"dropping torn tail record (line {number}) of "
                        f"{self.path}: the broker died mid-append",
                        JournalWarning,
                        stacklevel=2,
                    )
                    break
                raise JournalError(
                    f"{self.path} is corrupt at line {number} "
                    f"(not the torn-tail case): {error}"
                )
            records.append(record)
        if not records:
            return []
        header = records[0]
        if header.get("format") != JOURNAL_FORMAT:
            raise JournalError(
                f"{self.path} is not a {JOURNAL_FORMAT} file "
                f"(header {header!r})"
            )
        if header.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"{self.path} has unsupported journal version "
                f"{header.get('version')!r} (this build reads {JOURNAL_VERSION})"
            )
        return records[1:]

    def _aggregate(
        self, records: List[Dict[str, Any]]
    ) -> Dict[str, TaskReplay]:
        states: Dict[str, TaskReplay] = {}
        for record in records:
            kind = record.get("kind")
            key = record.get("key")
            if kind not in _KNOWN_KINDS or not isinstance(key, str):
                warnings.warn(
                    f"skipping unrecognized journal record {kind!r} in "
                    f"{self.path} (written by a newer build?)",
                    JournalWarning,
                    stacklevel=3,
                )
                continue
            state = states.setdefault(key, TaskReplay())
            if state.result is not None or state.failed:
                continue  # terminal states win; late records are duplicates
            if kind == KIND_ASSIGNED:
                state.attempts += 1
                state.leased = True
            elif kind == KIND_RELEASED:
                # Clean mid-spec lease return: the attempt is refunded.
                state.attempts = max(0, state.attempts - 1)
                state.leased = False
            elif kind == KIND_EXCLUDED:
                worker = record.get("worker")
                if isinstance(worker, str):
                    state.excluded.add(worker)
                reason = record.get("reason")
                if isinstance(reason, str):
                    state.errors.append(reason)
                state.leased = False
            elif kind == KIND_CHECKPOINTED:
                snapshot = record.get("snapshot")
                if isinstance(snapshot, dict):
                    state.checkpoint = snapshot
            elif kind == KIND_COMPLETED:
                result = record.get("result")
                if isinstance(result, dict):
                    state.result = result
                    state.leased = False
                    state.checkpoint = None
            elif kind == KIND_FAILED:
                state.failed = True
                state.leased = False
                reasons = record.get("reasons")
                if isinstance(reasons, list):
                    state.errors = [str(reason) for reason in reasons]
        return states


@dataclass
class JobReplay:
    """Replayed state of one service job: identity + per-spec task states.

    ``sweep`` is the submitted SweepSpec dict, verbatim — the restarted
    service re-submits it with ``tasks`` as the replay states, so finished
    specs re-emit, burned attempts and exclusions stick, and in-flight
    leases are refunded exactly like a restarted single-sweep broker.
    """

    name: str = ""
    priority: int = 1
    sweep: Optional[Dict[str, Any]] = None
    cancelled: bool = False
    tasks: Dict[str, TaskReplay] = field(default_factory=dict)


class ServiceJournal(BrokerJournal):
    """Write-ahead journal for the multi-tenant sweep service.

    Same file format, header, and task-transition kinds as
    :class:`BrokerJournal`, with two additions: job-lifecycle records
    (``job-submitted`` carrying the SweepSpec, ``job-cancelled``), and a
    ``job`` field on every task record so :meth:`replay_jobs` can rebuild
    each tenant's task states independently.
    """

    def replay_jobs(self) -> Dict[str, JobReplay]:
        """Aggregate the journal into per-job :class:`JobReplay` states.

        Jobs come back in submission order (dict insertion order), which the
        restarted service relies on to re-register them with the fair-share
        scheduler deterministically.
        """
        if not self.exists():
            return {}
        jobs: Dict[str, JobReplay] = {}
        grouped: Dict[str, List[Dict[str, Any]]] = {}
        for record in self._records():
            kind = record.get("kind")
            job_id = record.get("job")
            if not isinstance(job_id, str):
                warnings.warn(
                    f"skipping job-less record {kind!r} in {self.path} "
                    f"(single-sweep broker journal replayed as a service "
                    f"journal?)",
                    JournalWarning,
                    stacklevel=2,
                )
                continue
            if kind == KIND_JOB_SUBMITTED:
                job = jobs.setdefault(job_id, JobReplay())
                job.name = str(record.get("name") or job_id)
                priority = record.get("priority")
                if isinstance(priority, int) and priority >= 1:
                    job.priority = priority
                sweep = record.get("sweep")
                if isinstance(sweep, dict):
                    job.sweep = sweep
                continue
            if kind == KIND_JOB_CANCELLED:
                job = jobs.get(job_id)
                if job is not None:
                    job.cancelled = True
                continue
            grouped.setdefault(job_id, []).append(record)
        for job_id, records in grouped.items():
            job = jobs.get(job_id)
            if job is None:
                warnings.warn(
                    f"skipping task records for unknown job {job_id!r} in "
                    f"{self.path} (its job-submitted record is missing)",
                    JournalWarning,
                    stacklevel=2,
                )
                continue
            job.tasks = self._aggregate(records)
        return jobs
