"""``python -m repro``: drive the paper's experiments from the command line.

::

    python -m repro list
    python -m repro run fig7 --cores 16,32 --configs WiSync,Baseline --parallel 8
    python -m repro run fig7 --quick --distributed 2
    python -m repro run scenarios --distributed 0 --bind 0.0.0.0:7787 --cache /nfs/sweep-cache
    python -m repro worker --connect sweephost:7787
    python -m repro run fig9 --cores 64 --crit 16,256 --json fig9.json
    python -m repro run fig10 --apps streamcluster,raytrace --cache .wisync-cache
    python -m repro run scenarios --contention low,high --backoffs broadcast_aware,exponential --progress
    python -m repro report fig7 --cores 16,32 --cache .wisync-cache --json fig7_frame.json
    python -m repro report scenarios --contention low,high --csv scenarios.csv
    python -m repro compare old_frame.json new_frame.json --threshold cycles=0.05
    python -m repro compare BENCH_fig7.json BENCH_fig7.ci.json --max-regression 0.30
    python -m repro scenarios
    python -m repro profile fig7 --quick --baseline BENCH_fig7.json
    python -m repro run fig7 --checkpoint-every 200000 --run-id nightly
    python -m repro run --resume nightly
    python -m repro run fig7 --quick --bind 0.0.0.0:7787 --journal --run-id nightly
    python -m repro run --resume nightly --bind 0.0.0.0:7787 --journal
    python -m repro workers --connect sweephost:7787 --pool 4
    python -m repro chaos --seed 0 --kills broker,worker
    python -m repro snapshot save --workload tightloop --param iterations=100 --events 100000
    python -m repro snapshot restore <spec-key>.snapshot.json
    python -m repro snapshot inspect <spec-key>.snapshot.json
    python -m repro run fig7 --checkpoint-every 200000 --auto-snapshot 8 --run-id nightly
    python -m repro debug --workload tightloop --param iterations=200 \\
        --exec 'step 20000; threads; back; inspect; quit'
    python -m repro debug --from .wisync-runs/nightly/checkpoints/<key>.ring-000000400000.ckpt.json
    python -m repro serve --bind 0.0.0.0:7787 --http 0.0.0.0:7788 --journal /var/lib/wisync --cache /var/lib/wisync-cache
    python -m repro run fig7 --quick --submit http://sweephost:7788
    python -m repro jobs list http://sweephost:7788
    python -m repro jobs cancel http://sweephost:7788 job-0003-9f2c1a

``run`` reports how many grid points were freshly simulated versus served
from the cache, so a repeated invocation with ``--cache`` visibly performs
zero new simulations; ``--progress`` streams one line per grid point to
stderr as it completes.  ``report`` renders an experiment's paper table from
its :class:`~repro.analysis.frame.MetricFrame` (with ``--cache`` a warm
cache makes this pure rendering — zero simulations) and can write the frame
as lossless JSON/CSV.  ``compare`` diffs two such frames — or two
``BENCH_*.json`` profile records — with per-metric regression thresholds;
it is the single gating implementation behind ``profile --baseline`` and
the CI perf-smoke job.  ``scenarios`` prints the contention-scenario
catalog.  ``profile`` times a pinned sweep, writes a
``BENCH_<experiment>.json`` throughput record, and can gate on a committed
baseline.

``--distributed N`` runs a sweep through the TCP broker with N localhost
worker subprocesses; ``--bind HOST:PORT`` additionally (or, with
``--distributed 0``, exclusively) lets external hosts join by running
``python -m repro worker --connect HOST:PORT``.  ``--quick`` shrinks every
axis the invocation did not set explicitly down to a CI-sized smoke grid.

Every ``run`` records a resumable manifest under ``.wisync-runs/<run-id>/``
(disable with ``--no-manifest``); ``run --resume RUN_ID`` rebuilds the same
grid, skips grid points the manifest already recorded, and — when the run
used ``--checkpoint-every N`` — fast-forwards the spec that was mid-flight
from its last checkpoint.  ``snapshot save/restore/inspect`` exposes single-
simulation checkpoints directly; restores are verified bit-for-bit against
the snapshot's captured engine/rng/stats state.  ``debug`` opens a
time-travel session on one spec: stepping forward banks an auto-snapshot
ring, stepping backward restores the nearest banked moment — O(1) for
frame-ported workloads via the native strategy, deterministic replay
otherwise.  ``run --auto-snapshot K`` leaves the same ring files behind in
the run's ``checkpoints/`` directory for post-hoc ``debug --from``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.runner.cache import ResultCache
from repro.runner.distributed import (
    WORKER_FAULTS,
    DistributedExecutor,
    parse_address,
    run_worker,
)
from repro.runner.executor import ParallelExecutor, SerialExecutor
from repro.runner.registry import workload_names
from repro.runner.runner import Runner, SpecProgress


class _CountingExecutor:
    """Wrap an executor to count how many specs were actually simulated."""

    def __init__(self, inner: Any) -> None:
        self.inner = inner
        self.simulated = 0

    def run_iter(self, specs: Sequence[Any]) -> Iterator[Tuple[int, Any]]:
        self.simulated += len(specs)
        return self.inner.run_iter(specs)

    def run(self, specs: Sequence[Any], progress: Optional[Any] = None) -> List[Any]:
        self.simulated += len(specs)
        return self.inner.run(specs, progress)


def _comma_ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def _comma_strs(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _json_safe(value: Any) -> Any:
    """Make experiment tables JSON-serializable (tuple keys -> strings)."""
    if isinstance(value, dict):
        return {
            (",".join(str(p) for p in k) if isinstance(k, tuple) else str(k)): _json_safe(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if hasattr(value, "to_dict"):
        return _json_safe(value.to_dict())
    return value


# --------------------------------------------------------------------------
# Experiment adapters: map CLI arguments onto each run_*/format_* pair.
# --------------------------------------------------------------------------
def _run_fig7(args: argparse.Namespace, runner: Runner):
    from repro.experiments import format_fig7, run_fig7

    table = run_fig7(
        core_counts=args.cores, iterations=args.iterations,
        configs=args.configs, runner=runner,
    )
    return table, format_fig7(table)


def _run_fig8(args: argparse.Namespace, runner: Runner):
    from repro.experiments import format_fig8, run_fig8

    table = run_fig8(
        core_counts=args.cores, repetitions=args.repetitions,
        configs=args.configs, runner=runner,
    )
    return table, format_fig8(table)


def _run_fig9(args: argparse.Namespace, runner: Runner):
    from repro.experiments import format_fig9, run_fig9

    table = run_fig9(
        core_counts=args.cores, critical_sections=args.crit,
        configs=args.configs, runner=runner,
    )
    return table, format_fig9(table)


def _run_fig10(args: argparse.Namespace, runner: Runner):
    from repro.experiments import format_fig10, run_fig10

    table = run_fig10(
        apps=args.apps, num_cores=_single_core_count(args),
        phase_scale=args.phase_scale, configs=args.configs, runner=runner,
    )
    return table, format_fig10(table)


def _run_fig11(args: argparse.Namespace, runner: Runner):
    from repro.experiments import format_fig11, run_fig11

    _warn_fixed_configs(args, "fig11 always compares all four Table 2 configurations")
    table = run_fig11(
        apps=args.apps, num_cores=_single_core_count(args),
        phase_scale=args.phase_scale, variants=args.variants, runner=runner,
    )
    return table, format_fig11(table)


def _run_table4(args: argparse.Namespace, runner: Runner):
    from repro.experiments import format_table4, run_table4

    table = run_table4(technology_nm=args.technology_nm, runner=runner)
    return table, format_table4(table)


def _run_table5(args: argparse.Namespace, runner: Runner):
    from repro.experiments import format_table5, run_table5

    _warn_fixed_configs(args, "table5 always measures WiSyncNoT and WiSync")
    table = run_table5(
        apps=args.apps, num_cores=_single_core_count(args),
        phase_scale=args.phase_scale, runner=runner,
    )
    return table, format_table5(table)


def _run_scenarios(args: argparse.Namespace, runner: Runner):
    from repro.experiments import format_scenarios, run_scenarios

    table = run_scenarios(
        scenarios=args.scenarios, core_counts=args.cores,
        configs=args.configs, contention=args.contention,
        backoffs=args.backoffs, runner=runner,
    )
    return table, format_scenarios(table)


def _warn_fixed_configs(args: argparse.Namespace, reason: str) -> None:
    if args.configs is not None:
        print(f"note: --configs is ignored; {reason}", file=sys.stderr)


def _single_core_count(args: argparse.Namespace) -> int:
    if args.cores is None:
        return 64
    if len(args.cores) > 1:
        print(
            f"note: this experiment runs at one core count; using {args.cores[0]}",
            file=sys.stderr,
        )
    return args.cores[0]


EXPERIMENTS: Dict[str, Callable[[argparse.Namespace, Runner], Any]] = {
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
    "table4": _run_table4,
    "table5": _run_table5,
    "scenarios": _run_scenarios,
}


# --------------------------------------------------------------------------
# Report adapters: map CLI arguments onto (Report, prepared MetricFrame).
# --------------------------------------------------------------------------
def _report_fig7(args: argparse.Namespace, runner: Runner):
    from repro.experiments.fig7_tightloop import FIG7_REPORT, fig7_sweep

    frame = runner.run(fig7_sweep(args.cores, args.iterations, args.configs)).frame()
    return FIG7_REPORT, FIG7_REPORT.prepare(frame)


def _report_fig8(args: argparse.Namespace, runner: Runner):
    from repro.experiments.fig8_livermore import FIG8_REPORT, fig8_sweep

    frame = runner.run(
        fig8_sweep(core_counts=args.cores, repetitions=args.repetitions, configs=args.configs)
    ).frame()
    return FIG8_REPORT, FIG8_REPORT.prepare(frame)


def _report_fig9(args: argparse.Namespace, runner: Runner):
    from repro.experiments.fig9_cas import FIG9_REPORT, fig9_sweep

    frame = runner.run(
        fig9_sweep(core_counts=args.cores, critical_sections=args.crit, configs=args.configs)
    ).frame()
    return FIG9_REPORT, FIG9_REPORT.prepare(frame)


def _report_fig10(args: argparse.Namespace, runner: Runner):
    from repro.experiments.fig10_applications import fig10_report, fig10_sweep

    report = fig10_report(args.configs)
    frame = runner.run(
        fig10_sweep(
            apps=args.apps, num_cores=_single_core_count(args),
            phase_scale=args.phase_scale, configs=args.configs,
        )
    ).frame()
    return report, report.prepare(frame)


def _report_fig11(args: argparse.Namespace, runner: Runner):
    from repro.experiments.fig11_sensitivity import FIG11_REPORT, fig11_sweep

    _warn_fixed_configs(args, "fig11 always compares all four Table 2 configurations")
    frame = runner.run(
        fig11_sweep(
            apps=args.apps, num_cores=_single_core_count(args),
            phase_scale=args.phase_scale, variants=args.variants,
        )
    ).frame()
    return FIG11_REPORT, FIG11_REPORT.prepare(frame)


def _report_table4(args: argparse.Namespace, runner: Runner):
    from repro.experiments.table4_area_power import TABLE4_REPORT, table4_frame

    return TABLE4_REPORT, table4_frame(args.technology_nm)


def _report_table5(args: argparse.Namespace, runner: Runner):
    from repro.experiments.table5_utilization import TABLE5_REPORT, table5_sweep

    _warn_fixed_configs(args, "table5 always measures WiSyncNoT and WiSync")
    frame = runner.run(
        table5_sweep(
            apps=args.apps, num_cores=_single_core_count(args),
            phase_scale=args.phase_scale,
        )
    ).frame()
    return TABLE5_REPORT, TABLE5_REPORT.prepare(frame)


def _report_scenarios(args: argparse.Namespace, runner: Runner):
    from repro.experiments.scenarios import (
        scenario_frame,
        scenario_sweep,
        scenarios_report,
    )

    sweep = scenario_sweep(
        scenarios=args.scenarios, core_counts=args.cores, configs=args.configs,
        contention=args.contention, backoffs=args.backoffs,
    )
    frame = scenario_frame(runner.run(sweep).frame(), args.backoffs)
    return scenarios_report(args.configs), frame


REPORTS: Dict[str, Callable[[argparse.Namespace, Runner], Any]] = {
    "fig7": _report_fig7,
    "fig8": _report_fig8,
    "fig9": _report_fig9,
    "fig10": _report_fig10,
    "fig11": _report_fig11,
    "table4": _report_table4,
    "table5": _report_table5,
    "scenarios": _report_scenarios,
}


# --------------------------------------------------------------------------
# Argument parsing
# --------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WiSync (ASPLOS'16) reproduction: run the paper's experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list experiments, registered workloads, and configurations"
    )
    list_parser.add_argument("--json", action="store_true", help="emit JSON instead of text")

    def add_sweep_arguments(
        parser: argparse.ArgumentParser, experiment_optional: bool = False
    ) -> None:
        """Axis/executor flags shared by the ``run`` and ``report`` commands."""
        if experiment_optional:
            # ``run --resume RUN_ID`` restores the experiment from the
            # manifest; _cmd_run enforces presence for fresh runs.
            parser.add_argument(
                "experiment", nargs="?", default=None, choices=sorted(EXPERIMENTS)
            )
        else:
            parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
        parser.add_argument(
            "--cores", type=_comma_ints, default=None, metavar="N,N,...",
            help="core counts to sweep (fig7/8/9) or the single core count (fig10/11, table5)",
        )
        parser.add_argument(
            "--configs", type=_comma_strs, default=None, metavar="A,B,...",
            help="Table 2 configuration labels (default: the experiment's own set)",
        )
        parser.add_argument(
            "--parallel", type=int, default=0, metavar="N",
            help="run the sweep on a process pool with N workers (0 = serial)",
        )
        parser.add_argument(
            "--distributed", type=int, default=0, metavar="N",
            help="run the sweep through the TCP broker with N localhost "
                 "worker subprocesses (0 = off unless --bind is given)",
        )
        parser.add_argument(
            "--bind", default=None, metavar="HOST:PORT",
            help="broker bind address so external 'repro worker --connect' "
                 "processes can join (default: 127.0.0.1 on an ephemeral port)",
        )
        parser.add_argument(
            "--quick", action="store_true",
            help="shrink sweep axes you did not set explicitly to a small "
                 "smoke grid (what CI runs)",
        )
        parser.add_argument(
            "--cache", default=None, metavar="DIR",
            help="directory for the on-disk result cache (created if missing)",
        )
        parser.add_argument("--quiet", action="store_true", help="suppress the formatted table")
        parser.add_argument(
            "--progress", action="store_true",
            help="stream one line per completed grid point to stderr",
        )
        # Experiment-specific knobs (ignored by experiments that do not use
        # them).  iterations/repetitions default to None so --quick can tell
        # an unset flag from an explicitly passed one; _build_runner fills in
        # the documented defaults afterwards.
        parser.add_argument(
            "--iterations", type=int, default=None,
            help="fig7: loop iterations (default 5)",
        )
        parser.add_argument(
            "--repetitions", type=int, default=None,
            help="fig8: loop repetitions (default 2)",
        )
        parser.add_argument(
            "--crit", type=_comma_ints, default=None, metavar="N,N,...",
            help="fig9: critical-section sizes (instructions between CASes)",
        )
        parser.add_argument(
            "--apps", type=_comma_strs, default=None, metavar="A,B,...",
            help="fig10/fig11/table5: application subset",
        )
        parser.add_argument(
            "--phase-scale", type=float, default=None,
            help="fig10/fig11/table5: scale factor on application phases",
        )
        parser.add_argument(
            "--variants", type=_comma_strs, default=None, metavar="A,B,...",
            help="fig11: Table 6 sensitivity variants",
        )
        parser.add_argument("--technology-nm", type=int, default=22, help="table4: tech node")
        parser.add_argument(
            "--scenarios", type=_comma_strs, default=None, metavar="A,B,...",
            help="scenarios: contention-scenario subset (default: all; see 'repro scenarios')",
        )
        parser.add_argument(
            "--contention", type=_comma_strs, default=None, metavar="L,L,...",
            help="scenarios: contention levels to sweep (low, medium, high)",
        )
        parser.add_argument(
            "--backoffs", type=_comma_strs, default=None, metavar="K,K,...",
            help="scenarios: MAC backoff kinds to sweep on wireless configurations "
                 "(broadcast_aware, exponential, fixed)",
        )

    run_parser = subparsers.add_parser("run", help="run one experiment's sweep")
    add_sweep_arguments(run_parser, experiment_optional=True)
    run_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the experiment's structured results to PATH as JSON ('-' = stdout)",
    )
    run_parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="EVENTS",
        help="checkpoint each in-flight simulation every N events (serial and "
             "distributed sweeps), so a killed run resumes mid-spec",
    )
    run_parser.add_argument(
        "--auto-snapshot", type=int, default=None, metavar="K",
        help="bank each periodic checkpoint as a ring file in the run's "
             "checkpoints/ directory, pruned to the last K per grid point "
             "(needs --checkpoint-every; serial sweeps), so 'repro debug "
             "--from <ring file>' can time-travel a finished or crashed run",
    )
    run_parser.add_argument(
        "--journal", action="store_true",
        help="write-ahead journal the broker's task state into the run "
             "directory (--distributed/--bind sweeps), so a SIGKILL'd sweep "
             "host restarted with --resume --journal on the same port "
             "replays the log and continues the same grid",
    )
    run_parser.add_argument(
        "--spec-deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per grid point; overruns degrade gracefully "
             "(completed results kept, PartialSweepError names the rest)",
    )
    run_parser.add_argument(
        "--sweep-deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the whole sweep; see --spec-deadline",
    )
    run_parser.add_argument(
        "--run-id", default=None, metavar="ID",
        help="name for this run's manifest directory (default: generated)",
    )
    run_parser.add_argument(
        "--resume", default=None, metavar="RUN_ID",
        help="continue a previous run: restores its sweep arguments, skips "
             "completed grid points, and fast-forwards mid-spec checkpoints",
    )
    run_parser.add_argument(
        "--runs-dir", default=None, metavar="DIR",
        help="where run manifests live (default: $REPRO_RUNS_DIR or .wisync-runs)",
    )
    run_parser.add_argument(
        "--no-manifest", action="store_true",
        help="do not record a resumable run manifest for this sweep",
    )
    run_parser.add_argument(
        "--submit", default=None, metavar="URL",
        help="submit the sweep to a persistent 'repro serve' daemon at URL "
             "instead of executing locally; results flow back through the "
             "normal cache/manifest path, bit-identical to a local run",
    )
    run_parser.add_argument(
        "--job-name", default=None, metavar="NAME",
        help="job name shown by 'repro jobs list' (--submit only; "
             "default: the sweep's own name)",
    )
    run_parser.add_argument(
        "--priority", type=int, default=1, metavar="N",
        help="fair-share weight on the service, >= 1: a priority-3 job gets "
             "~3x the worker slots of a priority-1 job (--submit only)",
    )
    run_parser.add_argument(
        "--poll", type=float, default=0.5, metavar="SECONDS",
        help="service polling interval while waiting on a submitted job "
             "(--submit only; default 0.5)",
    )
    run_parser.add_argument(
        "--token", default=os.environ.get("REPRO_SERVICE_TOKEN"),
        metavar="TOKEN",
        help="shared service auth token (--submit only; "
             "default: $REPRO_SERVICE_TOKEN)",
    )

    report_parser = subparsers.add_parser(
        "report",
        help="render an experiment's paper table from its MetricFrame "
             "(pure rendering when the cache is warm)",
    )
    add_sweep_arguments(report_parser)
    report_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the derived MetricFrame to PATH as lossless JSON ('-' = stdout); "
             "feed these files to 'repro compare'",
    )
    report_parser.add_argument(
        "--csv", default=None, metavar="PATH",
        help="write the derived MetricFrame to PATH as typed CSV ('-' = stdout)",
    )

    compare_parser = subparsers.add_parser(
        "compare",
        help="diff two result payloads (MetricFrame JSON from 'report --json', "
             "or BENCH_*.json profile records) with per-metric thresholds",
    )
    compare_parser.add_argument("baseline", help="baseline payload path")
    compare_parser.add_argument("candidate", help="candidate payload path")
    compare_parser.add_argument(
        "--metrics", type=_comma_strs, default=None, metavar="A,B,...",
        help="metric columns to compare (default: all shared numeric metrics)",
    )
    compare_parser.add_argument(
        "--threshold", action="append", default=[], metavar="METRIC=FRACTION",
        help="per-metric regression gate, e.g. events_per_sec=0.30 (repeatable)",
    )
    compare_parser.add_argument(
        "--max-regression", type=float, default=None, metavar="FRACTION",
        help="default regression gate applied to every compared metric",
    )
    compare_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the structured comparison to PATH as JSON ('-' = stdout)",
    )
    compare_parser.add_argument("--quiet", action="store_true", help="suppress the diff table")

    worker_parser = subparsers.add_parser(
        "worker",
        help="pull sweep specs from a distributed broker and push results back",
    )
    worker_parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="broker address (printed by the sweep host, or set via --bind)",
    )
    worker_parser.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECONDS",
        help="lease-heartbeat interval (default: a third of the broker's lease)",
    )
    worker_parser.add_argument(
        "--max-tasks", type=int, default=None, metavar="N",
        help="exit after completing N specs (default: run until the broker drains)",
    )
    worker_parser.add_argument(
        "--fault", choices=list(WORKER_FAULTS), default=None,
        help="fault injection for tests and chaos drills "
             "(also settable via REPRO_WORKER_FAULT)",
    )
    worker_parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="EVENTS",
        help="local default checkpoint interval; a checkpointing broker's "
             "per-task interval takes precedence",
    )
    worker_parser.add_argument(
        "--redial", type=float, default=None, metavar="SECONDS",
        help="ride out broker outages: redial a lost (idle-phase) broker "
             "with jittered backoff for up to SECONDS before draining "
             "(default: drain immediately; use with journaled brokers)",
    )
    worker_parser.add_argument(
        "--token", default=os.environ.get("REPRO_SERVICE_TOKEN"),
        metavar="TOKEN",
        help="shared auth token when joining a 'repro serve' daemon "
             "(default: $REPRO_SERVICE_TOKEN)",
    )

    workers_parser = subparsers.add_parser(
        "workers",
        help="run a self-healing pool of workers against one broker "
             "(respawns crashes with backoff; circuit breaker on rapid failures)",
    )
    workers_parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="broker address (printed by the sweep host, or set via --bind)",
    )
    workers_parser.add_argument(
        "--pool", type=int, default=2, metavar="N",
        help="number of worker subprocesses to supervise (default 2)",
    )
    workers_parser.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECONDS",
        help="lease-heartbeat interval passed to each worker",
    )
    workers_parser.add_argument(
        "--redial", type=float, default=30.0, metavar="SECONDS",
        help="per-worker broker-outage redial budget (default 30; 0 = off)",
    )
    workers_parser.add_argument(
        "--fault", choices=list(WORKER_FAULTS), default=None,
        help="fault injection applied to every slot — and respawned, so the "
             "circuit breaker is exercised (tests and chaos drills)",
    )
    workers_parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="EVENTS",
        help="local default checkpoint interval passed to each worker",
    )
    workers_parser.add_argument(
        "--max-rapid-failures", type=int, default=3, metavar="N",
        help="consecutive rapid failures before a slot's circuit breaker "
             "opens and the pool reports the host sick (default 3)",
    )
    workers_parser.add_argument(
        "--token", default=os.environ.get("REPRO_SERVICE_TOKEN"),
        metavar="TOKEN",
        help="shared auth token when joining a 'repro serve' daemon "
             "(default: $REPRO_SERVICE_TOKEN)",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the persistent multi-tenant sweep service: named job "
             "queues, fair-share scheduling, HTTP submit-and-poll API",
    )
    serve_parser.add_argument(
        "--bind", default="127.0.0.1:0", metavar="HOST:PORT",
        help="worker TCP plane bind address ('repro worker --connect' "
             "processes join here; default 127.0.0.1 on an ephemeral port)",
    )
    serve_parser.add_argument(
        "--http", default="127.0.0.1:0", metavar="HOST:PORT",
        help="HTTP/JSON API bind address (clients submit and poll here; "
             "default 127.0.0.1 on an ephemeral port)",
    )
    serve_parser.add_argument(
        "--journal", default=None, metavar="DIR",
        help="write-ahead journal directory: a SIGKILL'd daemon restarted "
             "on the same directory replays it and resumes every live job",
    )
    serve_parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="service-side result cache: a submitted spec already cached is "
             "answered immediately without reaching any worker",
    )
    serve_parser.add_argument(
        "--token", default=os.environ.get("REPRO_SERVICE_TOKEN"),
        metavar="TOKEN",
        help="require this shared token on both the HTTP and worker planes "
             "(default: $REPRO_SERVICE_TOKEN; unset = open)",
    )
    serve_parser.add_argument(
        "--lease-seconds", type=float, default=None, metavar="SECONDS",
        help="task lease duration before a silent worker forfeits its spec",
    )
    serve_parser.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="attempts per spec before the service marks it failed",
    )
    serve_parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="EVENTS",
        help="ask workers to checkpoint in-flight simulations every N events "
             "(requeued specs then resume mid-spec on another worker)",
    )

    jobs_parser = subparsers.add_parser(
        "jobs", help="inspect or cancel jobs on a 'repro serve' daemon"
    )
    jobs_sub = jobs_parser.add_subparsers(dest="jobs_command", required=True)

    def add_jobs_arguments(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("url", metavar="URL", help="service HTTP API url")
        parser.add_argument(
            "--token", default=os.environ.get("REPRO_SERVICE_TOKEN"),
            metavar="TOKEN",
            help="shared service auth token (default: $REPRO_SERVICE_TOKEN)",
        )
        parser.add_argument(
            "--json", action="store_true", help="emit JSON instead of text"
        )

    jobs_list = jobs_sub.add_parser(
        "list", help="list every job with state and progress"
    )
    add_jobs_arguments(jobs_list)
    jobs_show = jobs_sub.add_parser(
        "show", help="show one job's summary and per-spec progress"
    )
    add_jobs_arguments(jobs_show)
    jobs_show.add_argument("job", metavar="JOB", help="job id")
    jobs_cancel = jobs_sub.add_parser(
        "cancel",
        help="cancel a job: unassigned specs are dropped, leased specs are "
             "released back to their workers' checkpoint/release path",
    )
    add_jobs_arguments(jobs_cancel)
    jobs_cancel.add_argument("job", metavar="JOB", help="job id")

    chaos_parser = subparsers.add_parser(
        "chaos",
        help="seeded chaos drill: SIGKILL broker/workers mid-sweep, resume "
             "with the journal, verify results bit-identical to serial",
    )
    chaos_parser.add_argument(
        "experiment", nargs="?", default="fig7",
        choices=sorted(EXPERIMENTS),
        help="experiment to drill on its --quick grid (default fig7)",
    )
    chaos_parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="schedule seed; same seed, same kill schedule (default 0)",
    )
    chaos_parser.add_argument(
        "--kills", type=_comma_strs, default=["broker", "worker"],
        metavar="T,T,...",
        help="kill targets, one kill each: broker, worker "
             "(default broker,worker)",
    )
    chaos_parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker subprocesses serving the drill sweep (default 2)",
    )
    chaos_parser.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
        help="abort the drill after this long (default 600)",
    )

    def add_spec_arguments(
        parser: argparse.ArgumentParser, workload_required: bool = True
    ) -> None:
        """Single-simulation spec flags shared by ``snapshot save`` and ``debug``."""
        parser.add_argument(
            "--workload", required=workload_required, default=None,
            help="registered workload name",
        )
        parser.add_argument("--config", default="WiSync", help="Table 2 configuration")
        parser.add_argument("--cores", type=int, default=16, help="core count")
        parser.add_argument("--seed", type=int, default=None, help="root seed")
        parser.add_argument("--variant", default=None, help="sensitivity variant")
        parser.add_argument(
            "--max-cycles", type=int, default=None, help="cycle budget for the spec"
        )
        parser.add_argument(
            "--param", action="append", default=[], metavar="KEY=VALUE",
            help="workload parameter (repeatable; VALUE parsed as JSON, else string)",
        )

    snapshot_parser = subparsers.add_parser(
        "snapshot",
        help="save, restore, or inspect a single simulation checkpoint",
    )
    snapshot_sub = snapshot_parser.add_subparsers(dest="snapshot_command", required=True)
    snap_save = snapshot_sub.add_parser(
        "save", help="run one spec for N events and write its snapshot"
    )
    add_spec_arguments(snap_save)
    snap_save.add_argument(
        "--events", type=int, required=True, metavar="N",
        help="snapshot after exactly N simulation events",
    )
    snap_save.add_argument(
        "--output", default=None, metavar="PATH",
        help="snapshot file to write (default: <spec key>.snapshot.json)",
    )
    snap_restore = snapshot_sub.add_parser(
        "restore", help="restore a snapshot and run it to completion"
    )
    snap_restore.add_argument("path", help="snapshot file")
    snap_restore.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the finished SimResult to PATH as JSON ('-' = stdout)",
    )
    snap_inspect = snapshot_sub.add_parser(
        "inspect", help="validate a snapshot file and print its summary"
    )
    snap_inspect.add_argument("path", help="snapshot file")

    debug_parser = subparsers.add_parser(
        "debug",
        help="time-travel debugger: step a simulation forward and backward "
             "on an auto-snapshot ring (O(1) backward for frame-ported "
             "workloads)",
    )
    add_spec_arguments(debug_parser, workload_required=False)
    debug_parser.add_argument(
        "--from", dest="from_snapshot", default=None, metavar="PATH",
        help="start from a snapshot file (e.g. a --auto-snapshot ring file) "
             "instead of building the spec from scratch",
    )
    debug_parser.add_argument(
        "--interval", type=int, default=None, metavar="EVENTS",
        help="auto-snapshot cadence while stepping forward (default 5000)",
    )
    debug_parser.add_argument(
        "--ring", type=int, default=None, metavar="K",
        help="how many auto-snapshots to keep reachable (default 16; the "
             "session's starting point is always reachable on top)",
    )
    debug_parser.add_argument(
        "--exec", dest="script", default=None, metavar="'CMD; CMD; ...'",
        help="run a ';'-separated command script and exit instead of "
             "reading commands interactively from stdin",
    )

    scenarios_parser = subparsers.add_parser(
        "scenarios", help="list the contention-scenario catalog (workloads, knobs, examples)"
    )
    scenarios_parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )

    lint_parser = subparsers.add_parser(
        "lint",
        help="statically check the determinism & contract rules (DET/SNAP/PROTO/ERR/SLOT)",
    )
    lint_parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the installed repro package)",
    )
    lint_parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default text)",
    )
    lint_parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    lint_parser.add_argument(
        "--ignore", default=None, metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    lint_parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file of grandfathered findings (see LINT_BASELINE.json)",
    )
    lint_parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    lint_parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )

    profile_parser = subparsers.add_parser(
        "profile",
        help="time a pinned sweep, write BENCH_<experiment>.json, optionally gate on a baseline",
    )
    from repro.runner.profile import profile_names

    profile_parser.add_argument("experiment", choices=profile_names())
    profile_parser.add_argument(
        "--quick", action="store_true",
        help="use the smaller pinned grid (what the CI perf-smoke job runs)",
    )
    profile_parser.add_argument(
        "--repeats", type=int, default=3, metavar="N",
        help="repeat the sweep N times and report the best wall-clock (default 3)",
    )
    profile_parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="where to write the benchmark record (default BENCH_<experiment>.json)",
    )
    profile_parser.add_argument(
        "--no-write", action="store_true", help="do not write the benchmark record"
    )
    profile_parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="committed BENCH_*.json to gate against (non-zero exit on regression)",
    )
    profile_parser.add_argument(
        "--max-regression", type=float, default=0.30, metavar="FRACTION",
        help="allowed events/sec drop versus the baseline before failing (default 0.30)",
    )
    return parser


# --------------------------------------------------------------------------
# Commands
# --------------------------------------------------------------------------
def _cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments.common import CONFIG_BUILDERS
    from repro.experiments.fig11_sensitivity import variant_names

    inventory = {
        "experiments": sorted(EXPERIMENTS),
        "workloads": workload_names(),
        "configs": list(CONFIG_BUILDERS),
        "variants": variant_names(),
    }
    if args.json:
        print(json.dumps(inventory, indent=2))
        return 0
    print("experiments:")
    for name in inventory["experiments"]:
        print(f"  {name}")
    print("workloads (registry):")
    for name in inventory["workloads"]:
        print(f"  {name}")
    print("configurations (Table 2):", ", ".join(inventory["configs"]))
    print("sensitivity variants (Table 6):", ", ".join(inventory["variants"]))
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.workloads.contention_suite import SCENARIOS

    if args.json:
        payload = {
            name: {
                "summary": info.summary,
                "knobs": info.knobs_dict(),
                "example": info.example,
            }
            for name, info in sorted(SCENARIOS.items())
        }
        print(json.dumps(payload, indent=2))
        return 0
    print("contention scenarios (run with: python -m repro run scenarios --scenarios NAME):")
    for name, info in sorted(SCENARIOS.items()):
        print(f"\n  {name}")
        print(f"    {info.summary}")
        knobs = ", ".join(f"{knob}={default}" for knob, default in info.knobs)
        print(f"    knobs: {knobs}")
        print(f"    e.g.:  {info.example}")
    return 0


#: Per-experiment smoke axes selected by ``--quick`` (only for axes whose
#: flags were left at their parser defaults; explicit flags always win).
_QUICK_AXES: Dict[str, Dict[str, Any]] = {
    "fig7": {"cores": [8, 16], "iterations": 2},
    "fig8": {"cores": [16], "repetitions": 1},
    "fig9": {"cores": [16], "crit": [16, 256]},
    "fig10": {"cores": [16], "phase_scale": 0.25},
    "fig11": {"cores": [16], "phase_scale": 0.25},
    "table4": {},
    "table5": {"cores": [16], "phase_scale": 0.25},
    "scenarios": {"cores": [16], "contention": ["low"]},
}

def _apply_quick(args: argparse.Namespace) -> None:
    if not getattr(args, "quick", False):
        return
    for axis, value in _QUICK_AXES.get(args.experiment, {}).items():
        if getattr(args, axis) is None:
            setattr(args, axis, value)


def _build_executor(
    args: argparse.Namespace,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    journal_dir: Optional[str] = None,
    auto_snapshot: Optional[int] = None,
):
    spec_deadline = getattr(args, "spec_deadline", None)
    sweep_deadline = getattr(args, "sweep_deadline", None)
    submit = getattr(args, "submit", None)
    if args.parallel < 0:
        raise ReproError(f"--parallel must be >= 0, got {args.parallel}")
    if args.distributed < 0:
        raise ReproError(f"--distributed must be >= 0, got {args.distributed}")
    if submit:
        if args.parallel > 0 or args.distributed > 0 or args.bind:
            raise ReproError(
                "--submit hands the sweep to a remote service; it is "
                "mutually exclusive with --parallel/--distributed/--bind"
            )
        if checkpoint_every is not None or getattr(args, "journal", False):
            raise ReproError(
                "--checkpoint-every/--journal configure a local broker; the "
                "'repro serve' daemon owns those knobs for submitted sweeps"
            )
        if spec_deadline or sweep_deadline:
            raise ReproError(
                "--spec-deadline/--sweep-deadline are not supported with "
                "--submit; the service schedules its own workers"
            )
        from repro.runner.service_client import ServiceExecutor

        return ServiceExecutor(
            submit,
            token=getattr(args, "token", None),
            name=getattr(args, "job_name", None),
            priority=getattr(args, "priority", 1),
            poll_seconds=getattr(args, "poll", 0.5),
        )
    if args.parallel > 0 and (args.distributed > 0 or args.bind):
        raise ReproError("--parallel and --distributed/--bind are mutually exclusive")
    if args.parallel > 0 and checkpoint_every is not None:
        raise ReproError(
            "--checkpoint-every is not supported with --parallel; "
            "run serially or use --distributed"
        )
    if args.parallel > 0 and (spec_deadline or sweep_deadline):
        raise ReproError(
            "--spec-deadline/--sweep-deadline are not supported with "
            "--parallel; run serially or use --distributed"
        )
    if args.distributed > 0 or args.bind:
        host, port = parse_address(args.bind) if args.bind else ("127.0.0.1", 0)
        # (--distributed 0 is only reachable with --bind, so the bind flag
        # alone decides whether external workers are expected.)
        return DistributedExecutor(
            workers=args.distributed, host=host, port=port,
            external=bool(args.bind),
            checkpoint_every=checkpoint_every, checkpoint_dir=checkpoint_dir,
            journal_dir=journal_dir,
            spec_deadline=spec_deadline, sweep_deadline=sweep_deadline,
        )
    if args.parallel > 0:
        return ParallelExecutor(args.parallel)
    return SerialExecutor(
        checkpoint_every=checkpoint_every, checkpoint_dir=checkpoint_dir,
        spec_deadline=spec_deadline, sweep_deadline=sweep_deadline,
        auto_snapshot=auto_snapshot,
    )


def _build_runner(args: argparse.Namespace, manifest: Optional[Any] = None):
    """The cache/executor/progress plumbing shared by ``run`` and ``report``."""
    _apply_quick(args)
    if args.iterations is None:
        args.iterations = 5
    if args.repetitions is None:
        args.repetitions = 2
    if args.phase_scale is None:
        args.phase_scale = 0.5 if args.experiment == "fig11" else 1.0
    checkpoint_every = getattr(args, "checkpoint_every", None)
    # Whenever a manifest tracks the run, its checkpoints/ directory is live:
    # even without --checkpoint-every a resumed serial sweep fast-forwards any
    # mid-spec checkpoint the previous invocation left behind.
    checkpoint_dir = str(manifest.checkpoint_dir) if manifest is not None else None
    auto_snapshot = getattr(args, "auto_snapshot", None)
    if auto_snapshot is not None:
        if auto_snapshot < 1:
            raise ReproError(f"--auto-snapshot must be >= 1, got {auto_snapshot}")
        if checkpoint_every is None:
            raise ReproError(
                "--auto-snapshot banks the periodic checkpoints; it needs "
                "--checkpoint-every"
            )
        if checkpoint_dir is None:
            raise ReproError(
                "--auto-snapshot stores its ring files in the run's "
                "checkpoints/ directory; drop --no-manifest"
            )
        if args.distributed > 0 or args.bind or getattr(args, "submit", None):
            raise ReproError(
                "--auto-snapshot rings are written by the sweep process "
                "itself; run serially (no --distributed/--bind/--submit)"
            )
    journal_dir = None
    if getattr(args, "journal", False):
        if not (args.distributed > 0 or args.bind):
            raise ReproError(
                "--journal journals the broker; it needs --distributed N "
                "or --bind"
            )
        if manifest is None:
            raise ReproError(
                "--journal stores the broker journal in the run directory; "
                "drop --no-manifest"
            )
        journal_dir = str(manifest.journal_dir)
    counting = _CountingExecutor(
        _build_executor(
            args, checkpoint_every, checkpoint_dir, journal_dir, auto_snapshot
        )
    )
    cache = ResultCache(args.cache) if args.cache else None
    hooks: List[Callable[[SpecProgress], None]] = []
    if args.progress:
        hooks.append(
            lambda event: print(event.describe(), file=sys.stderr, flush=True)
        )
    if manifest is not None:
        hooks.append(
            lambda event: manifest.record_result(event.spec, event.cached)
        )
    progress = None
    if hooks:
        def progress(event: SpecProgress) -> None:
            for hook in hooks:
                hook(event)
    return Runner(executor=counting, cache=cache, progress=progress), counting, cache


def _print_run_summary(args: argparse.Namespace, counting, cache, elapsed: float) -> None:
    cached = cache.hits if cache is not None else 0
    if getattr(args, "submit", None):
        mode = " (service)"
        inner = getattr(counting.inner, "last_job", None)
        if inner and inner.get("short_circuited"):
            mode = (
                f" (service, {inner['short_circuited']} answered from the "
                f"service cache)"
            )
    elif args.distributed > 0 or args.bind:
        mode = f" (distributed={args.distributed})"
    elif args.parallel > 0:
        mode = f" (parallel={args.parallel})"
    else:
        mode = " (serial)"
    print(
        f"{args.experiment}: {counting.simulated} simulated, {cached} cached, "
        f"{elapsed:.1f}s{mode}",
        file=sys.stderr,
    )


def _write_text(payload: str, path: str) -> None:
    """Write ``payload`` to ``path``, with ``-`` meaning stdout."""
    if path == "-":
        print(payload)
    else:
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(payload if payload.endswith("\n") else payload + "\n")
        print(f"wrote {path}", file=sys.stderr)


def _cmd_worker(args: argparse.Namespace) -> int:
    host, port = parse_address(args.connect)
    try:
        completed = run_worker(
            host, port,
            heartbeat=args.heartbeat, max_tasks=args.max_tasks, fault=args.fault,
            checkpoint_every=args.checkpoint_every, redial=args.redial,
            token=args.token,
        )
    except OSError as error:
        raise ReproError(f"cannot reach broker at {args.connect}: {error}")
    print(f"worker drained: {completed} specs completed", file=sys.stderr)
    return 0


def _cmd_workers(args: argparse.Namespace) -> int:
    from repro.runner.supervisor import run_supervisor

    host, port = parse_address(args.connect)
    if args.pool < 1:
        raise ReproError(f"--pool must be >= 1, got {args.pool}")
    return run_supervisor(
        host, port, args.pool,
        heartbeat=args.heartbeat,
        redial=args.redial if args.redial else None,
        fault=args.fault,
        checkpoint_every=args.checkpoint_every,
        max_rapid_failures=args.max_rapid_failures,
        token=args.token,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.runner.distributed import (
        DEFAULT_LEASE_SECONDS,
        DEFAULT_MAX_ATTEMPTS,
    )
    from repro.service import run_service

    return run_service(
        bind=args.bind,
        http=args.http,
        journal_dir=args.journal,
        cache_dir=args.cache,
        token=args.token,
        lease_seconds=(
            args.lease_seconds if args.lease_seconds is not None
            else DEFAULT_LEASE_SECONDS
        ),
        max_attempts=(
            args.max_attempts if args.max_attempts is not None
            else DEFAULT_MAX_ATTEMPTS
        ),
        checkpoint_every=args.checkpoint_every,
    )


def _format_job_line(job: Dict[str, Any]) -> str:
    progress = f"{job['done']}/{job['total']}"
    extras = []
    if job.get("failed"):
        extras.append(f"{job['failed']} failed")
    if job.get("short_circuited"):
        extras.append(f"{job['short_circuited']} cached")
    suffix = f" ({', '.join(extras)})" if extras else ""
    return (
        f"{job['job']}  {job['state']:<9}  {progress:>9}  "
        f"prio={job['priority']}  {job['name']}{suffix}"
    )


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.runner.service_client import ServiceClient

    client = ServiceClient(args.url, token=args.token)
    if args.jobs_command == "list":
        jobs = client.jobs()
        if args.json:
            print(json.dumps(jobs, indent=2, sort_keys=True))
            return 0
        if not jobs:
            print("no jobs")
            return 0
        for job in jobs:
            print(_format_job_line(job))
        return 0
    if args.jobs_command == "cancel":
        cancelled = client.cancel(args.job)
        if args.json:
            print(json.dumps(cancelled, indent=2, sort_keys=True))
        else:
            print(_format_job_line(cancelled))
        return 0
    detail = client.job(args.job)
    if args.json:
        print(json.dumps(detail, indent=2, sort_keys=True))
        return 0
    print(_format_job_line(detail))
    for entry in detail.get("specs", []):
        from repro.runner.spec import RunSpec

        label = RunSpec.from_dict(entry["spec"]).label()
        cached = " (cache short-circuit)" if entry.get("cached") else ""
        attempts = (
            f" attempts={entry['attempts']}" if entry.get("attempts") else ""
        )
        print(f"  [{entry['position']}] {entry['state']:<9} {label}"
              f"{attempts}{cached}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.runner.chaos import run_subprocess_drill

    return run_subprocess_drill(
        experiment=args.experiment,
        seed=args.seed,
        kills=args.kills,
        workers=args.workers,
        timeout=args.timeout,
    )


#: ``run`` arguments that shape the sweep grid itself — recorded in the run
#: manifest so ``--resume`` rebuilds the identical grid without repeating
#: them.  Execution flags (--parallel/--distributed/--progress/...) are
#: deliberately absent: the resuming invocation chooses those anew.
_MANIFEST_AXES = (
    "cores", "configs", "iterations", "repetitions", "crit", "apps",
    "phase_scale", "variants", "technology_nm", "scenarios", "contention",
    "backoffs", "quick",
)


def _prepare_manifest(args: argparse.Namespace):
    """Create or reopen this run's manifest; restores --resume'd arguments.

    Must run before :func:`_build_runner`: resume restores the recorded
    sweep-shaping axes onto ``args`` (the current invocation's execution
    flags still win), and both paths may point ``--cache`` at the manifest's
    own results directory so completed grid points are skippable.
    """
    from repro.snapshot import RunManifest

    if args.resume:
        if args.run_id and args.run_id != args.resume:
            raise ReproError("--run-id and --resume name different runs")
        manifest = RunManifest.load(args.resume, runs_dir=args.runs_dir)
        if args.experiment is not None and args.experiment != manifest.experiment:
            raise ReproError(
                f"run {manifest.run_id!r} was a {manifest.experiment} sweep; "
                f"it cannot resume as {args.experiment}"
            )
        args.experiment = manifest.experiment
        for axis, value in manifest.args.items():
            if hasattr(args, axis):
                setattr(args, axis, value)
        if not args.cache:
            args.cache = manifest.cache_dir()
        manifest.mark_status("running")
        print(
            f"resuming run {manifest.run_id}: {manifest.experiment}, "
            f"{len(manifest.completed)} grid points already recorded",
            file=sys.stderr,
        )
        return manifest
    if args.no_manifest:
        if args.checkpoint_every is not None:
            raise ReproError(
                "--checkpoint-every needs a run manifest to store checkpoints; "
                "drop --no-manifest"
            )
        return None
    manifest = RunManifest.create(
        args.experiment,
        {axis: getattr(args, axis) for axis in _MANIFEST_AXES},
        runs_dir=args.runs_dir,
        run_id=args.run_id,
        cache_dir=args.cache,
    )
    if not args.cache:
        args.cache = manifest.cache_dir()
    print(
        f"run id: {manifest.run_id} "
        f"(continue a killed run with: repro run --resume {manifest.run_id})",
        file=sys.stderr,
    )
    return manifest


def _cmd_run(args: argparse.Namespace) -> int:
    if args.experiment is None and not args.resume:
        raise ReproError("an experiment is required (or --resume RUN_ID)")
    manifest = _prepare_manifest(args)
    runner, counting, cache = _build_runner(args, manifest)
    started = time.perf_counter()
    try:
        table, rendered = EXPERIMENTS[args.experiment](args, runner)
    except BaseException:
        if manifest is not None:
            manifest.mark_status("failed")
        raise
    if manifest is not None:
        manifest.mark_status("completed")
    elapsed = time.perf_counter() - started
    if not args.quiet:
        print(rendered)
    _print_run_summary(args, counting, cache, elapsed)
    if args.json:
        _write_text(json.dumps(_json_safe(table), indent=2, sort_keys=True), args.json)
    return 0


def _spec_from_args(args: argparse.Namespace):
    """Build the single-simulation RunSpec from ``add_spec_arguments`` flags."""
    from repro.runner.spec import DEFAULT_SEED, RunSpec

    params: Dict[str, Any] = {}
    for entry in args.param:
        key, separator, raw = entry.partition("=")
        if not separator or not key:
            raise ReproError(f"--param must look like KEY=VALUE, got {entry!r}")
        try:
            params[key] = json.loads(raw)
        except ValueError:
            params[key] = raw
    return RunSpec(
        workload=args.workload,
        params=tuple(params.items()),
        config=args.config,
        num_cores=args.cores,
        seed=args.seed if args.seed is not None else DEFAULT_SEED,
        max_cycles=args.max_cycles,
        variant=args.variant,
    )


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.snapshot import (
        load_snapshot,
        resume_to_completion,
        save_snapshot,
        snapshot_after,
    )

    if args.snapshot_command == "save":
        spec = _spec_from_args(args)
        snapshot = snapshot_after(spec, args.events)
        path = args.output or f"{spec.key()[:12]}.snapshot.json"
        save_snapshot(snapshot, path)
        print(
            f"saved [{spec.label()}] at {snapshot.events_processed} events "
            f"(cycle {snapshot.clock}) to {path}",
            file=sys.stderr,
        )
        return 0
    snapshot = load_snapshot(args.path)
    if args.snapshot_command == "inspect":
        print(json.dumps(snapshot.describe(), indent=2, sort_keys=True))
        return 0
    result = resume_to_completion(snapshot)
    replayed = int(result.extra.get("events_replayed", 0.0))
    print(
        f"restored [{snapshot.spec.label()}] from {snapshot.events_processed} "
        f"events via {snapshot.strategy} restore ({replayed} events "
        f"replayed); finished at {result.total_cycles} cycles, "
        f"{result.events_processed} events, completed={result.completed}",
        file=sys.stderr,
    )
    if args.json:
        _write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True), args.json
        )
    return 0


def _cmd_debug(args: argparse.Namespace) -> int:
    from repro.snapshot import load_snapshot
    from repro.snapshot.debugger import (
        DEFAULT_INTERVAL,
        DEFAULT_RING,
        DebugSession,
        TimeTravelDebugger,
        script_commands,
    )

    if (args.workload is None) == (args.from_snapshot is None):
        raise ReproError(
            "debug starts from exactly one of --workload (fresh spec) or "
            "--from (snapshot file)"
        )
    if args.from_snapshot is not None:
        debugger = TimeTravelDebugger(
            snapshot=load_snapshot(args.from_snapshot),
            interval=args.interval or DEFAULT_INTERVAL,
            capacity=args.ring or DEFAULT_RING,
        )
    else:
        debugger = TimeTravelDebugger(
            spec=_spec_from_args(args),
            interval=args.interval or DEFAULT_INTERVAL,
            capacity=args.ring or DEFAULT_RING,
        )
    session = DebugSession(debugger)
    if args.script is not None:
        return session.run(script_commands(args.script))

    def _stdin_commands() -> Iterator[str]:
        while True:
            try:
                yield input("(repro-debug) ")
            except EOFError:
                return

    return session.run(_stdin_commands())


def _cmd_report(args: argparse.Namespace) -> int:
    runner, counting, cache = _build_runner(args)
    started = time.perf_counter()
    report, frame = REPORTS[args.experiment](args, runner)
    if {"events", "wall_seconds"} <= set(frame.column_names):
        # Simulator throughput rides along in every written frame so
        # `repro compare --threshold events_per_sec=...` can trend it.
        frame = frame.events_per_sec()
    elapsed = time.perf_counter() - started
    if not args.quiet:
        print(report.render(frame, prepared=True))
    _print_run_summary(args, counting, cache, elapsed)
    if args.json:
        _write_text(frame.to_json(), args.json)
    if args.csv:
        _write_text(frame.to_csv(), args.csv)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.compare import compare_frames, load_frame
    from repro.errors import ReproError

    thresholds: Dict[str, float] = {}
    for entry in args.threshold:
        name, _, fraction = entry.partition("=")
        if not name or not fraction:
            raise ReproError(f"--threshold must look like metric=fraction, got {entry!r}")
        try:
            thresholds[name] = float(fraction)
        except ValueError:
            raise ReproError(f"--threshold fraction is not a number: {entry!r}")
    comparison = compare_frames(
        load_frame(args.baseline),
        load_frame(args.candidate),
        metrics=args.metrics,
        thresholds=thresholds,
        default_threshold=args.max_regression,
    )
    if not args.quiet:
        print(comparison.render())
    if args.json:
        _write_text(json.dumps(comparison.to_dict(), indent=2, sort_keys=True), args.json)
    if comparison.ok:
        print(f"compare OK ({args.baseline} -> {args.candidate})", file=sys.stderr)
        return 0
    for failure in comparison.failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.runner.profile import (
        compare_to_baseline,
        default_bench_path,
        format_record,
        run_profile,
        write_bench,
    )

    record = run_profile(args.experiment, quick=args.quick, repeats=args.repeats)
    print(format_record(record))
    if not args.no_write:
        path = args.output or default_bench_path(args.experiment)
        write_bench(record, path)
        print(f"wrote {path}", file=sys.stderr)
    if args.baseline:
        failure = compare_to_baseline(record, args.baseline, args.max_regression)
        if failure is not None:
            print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(f"perf gate OK (baseline {args.baseline})", file=sys.stderr)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "scenarios":
            return _cmd_scenarios(args)
        if args.command == "profile":
            return _cmd_profile(args)
        if args.command == "worker":
            return _cmd_worker(args)
        if args.command == "workers":
            return _cmd_workers(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "jobs":
            return _cmd_jobs(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "snapshot":
            return _cmd_snapshot(args)
        if args.command == "debug":
            return _cmd_debug(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "lint":
            from repro.lint.cli import run_lint

            return run_lint(args)
        return _cmd_run(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
