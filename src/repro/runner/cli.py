"""``python -m repro``: drive the paper's experiments from the command line.

::

    python -m repro list
    python -m repro run fig7 --cores 16,32 --configs WiSync,Baseline --parallel 8
    python -m repro run fig9 --cores 64 --crit 16,256 --json fig9.json
    python -m repro run fig10 --apps streamcluster,raytrace --cache .wisync-cache
    python -m repro run scenarios --contention low,high --backoffs broadcast_aware,exponential --progress
    python -m repro scenarios
    python -m repro profile fig7 --quick --baseline BENCH_fig7.json

``run`` reports how many grid points were freshly simulated versus served
from the cache, so a repeated invocation with ``--cache`` visibly performs
zero new simulations; ``--progress`` streams one line per grid point to
stderr as it completes.  ``scenarios`` prints the contention-scenario
catalog.  ``profile`` times a pinned sweep, writes a
``BENCH_<experiment>.json`` throughput record, and can gate on a committed
baseline (used by the CI perf-smoke job).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.runner.cache import ResultCache
from repro.runner.executor import ParallelExecutor, SerialExecutor
from repro.runner.registry import workload_names
from repro.runner.runner import Runner, SpecProgress


class _CountingExecutor:
    """Wrap an executor to count how many specs were actually simulated."""

    def __init__(self, inner: Any) -> None:
        self.inner = inner
        self.simulated = 0

    def run_iter(self, specs: Sequence[Any]) -> Iterator[Tuple[int, Any]]:
        self.simulated += len(specs)
        return self.inner.run_iter(specs)

    def run(self, specs: Sequence[Any], progress: Optional[Any] = None) -> List[Any]:
        self.simulated += len(specs)
        return self.inner.run(specs, progress)


def _comma_ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def _comma_strs(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _json_safe(value: Any) -> Any:
    """Make experiment tables JSON-serializable (tuple keys -> strings)."""
    if isinstance(value, dict):
        return {
            (",".join(str(p) for p in k) if isinstance(k, tuple) else str(k)): _json_safe(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if hasattr(value, "to_dict"):
        return _json_safe(value.to_dict())
    return value


# --------------------------------------------------------------------------
# Experiment adapters: map CLI arguments onto each run_*/format_* pair.
# --------------------------------------------------------------------------
def _run_fig7(args: argparse.Namespace, runner: Runner):
    from repro.experiments import format_fig7, run_fig7

    table = run_fig7(
        core_counts=args.cores, iterations=args.iterations,
        configs=args.configs, runner=runner,
    )
    return table, format_fig7(table)


def _run_fig8(args: argparse.Namespace, runner: Runner):
    from repro.experiments import format_fig8, run_fig8

    table = run_fig8(
        core_counts=args.cores, repetitions=args.repetitions,
        configs=args.configs, runner=runner,
    )
    return table, format_fig8(table)


def _run_fig9(args: argparse.Namespace, runner: Runner):
    from repro.experiments import format_fig9, run_fig9

    table = run_fig9(
        core_counts=args.cores, critical_sections=args.crit,
        configs=args.configs, runner=runner,
    )
    return table, format_fig9(table)


def _run_fig10(args: argparse.Namespace, runner: Runner):
    from repro.experiments import format_fig10, run_fig10

    table = run_fig10(
        apps=args.apps, num_cores=_single_core_count(args),
        phase_scale=args.phase_scale, configs=args.configs, runner=runner,
    )
    return table, format_fig10(table)


def _run_fig11(args: argparse.Namespace, runner: Runner):
    from repro.experiments import format_fig11, run_fig11

    _warn_fixed_configs(args, "fig11 always compares all four Table 2 configurations")
    table = run_fig11(
        apps=args.apps, num_cores=_single_core_count(args),
        phase_scale=args.phase_scale, variants=args.variants, runner=runner,
    )
    return table, format_fig11(table)


def _run_table4(args: argparse.Namespace, runner: Runner):
    from repro.experiments import format_table4, run_table4

    table = run_table4(technology_nm=args.technology_nm, runner=runner)
    return table, format_table4(table)


def _run_table5(args: argparse.Namespace, runner: Runner):
    from repro.experiments import format_table5, run_table5

    _warn_fixed_configs(args, "table5 always measures WiSyncNoT and WiSync")
    table = run_table5(
        apps=args.apps, num_cores=_single_core_count(args),
        phase_scale=args.phase_scale, runner=runner,
    )
    return table, format_table5(table)


def _run_scenarios(args: argparse.Namespace, runner: Runner):
    from repro.experiments import format_scenarios, run_scenarios

    table = run_scenarios(
        scenarios=args.scenarios, core_counts=args.cores,
        configs=args.configs, contention=args.contention,
        backoffs=args.backoffs, runner=runner,
    )
    return table, format_scenarios(table)


def _warn_fixed_configs(args: argparse.Namespace, reason: str) -> None:
    if args.configs is not None:
        print(f"note: --configs is ignored; {reason}", file=sys.stderr)


def _single_core_count(args: argparse.Namespace) -> int:
    if args.cores is None:
        return 64
    if len(args.cores) > 1:
        print(
            f"note: this experiment runs at one core count; using {args.cores[0]}",
            file=sys.stderr,
        )
    return args.cores[0]


EXPERIMENTS: Dict[str, Callable[[argparse.Namespace, Runner], Any]] = {
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
    "table4": _run_table4,
    "table5": _run_table5,
    "scenarios": _run_scenarios,
}


# --------------------------------------------------------------------------
# Argument parsing
# --------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WiSync (ASPLOS'16) reproduction: run the paper's experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list experiments, registered workloads, and configurations"
    )
    list_parser.add_argument("--json", action="store_true", help="emit JSON instead of text")

    run_parser = subparsers.add_parser("run", help="run one experiment's sweep")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument(
        "--cores", type=_comma_ints, default=None, metavar="N,N,...",
        help="core counts to sweep (fig7/8/9) or the single core count (fig10/11, table5)",
    )
    run_parser.add_argument(
        "--configs", type=_comma_strs, default=None, metavar="A,B,...",
        help="Table 2 configuration labels (default: the experiment's own set)",
    )
    run_parser.add_argument(
        "--parallel", type=int, default=0, metavar="N",
        help="run the sweep on a process pool with N workers (0 = serial)",
    )
    run_parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="directory for the on-disk result cache (created if missing)",
    )
    run_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the experiment's structured results to PATH as JSON ('-' = stdout)",
    )
    run_parser.add_argument("--quiet", action="store_true", help="suppress the formatted table")
    run_parser.add_argument(
        "--progress", action="store_true",
        help="stream one line per completed grid point to stderr",
    )
    # Experiment-specific knobs (ignored by experiments that do not use them).
    run_parser.add_argument("--iterations", type=int, default=5, help="fig7: loop iterations")
    run_parser.add_argument("--repetitions", type=int, default=2, help="fig8: loop repetitions")
    run_parser.add_argument(
        "--crit", type=_comma_ints, default=None, metavar="N,N,...",
        help="fig9: critical-section sizes (instructions between CASes)",
    )
    run_parser.add_argument(
        "--apps", type=_comma_strs, default=None, metavar="A,B,...",
        help="fig10/fig11/table5: application subset",
    )
    run_parser.add_argument(
        "--phase-scale", type=float, default=None,
        help="fig10/fig11/table5: scale factor on application phases",
    )
    run_parser.add_argument(
        "--variants", type=_comma_strs, default=None, metavar="A,B,...",
        help="fig11: Table 6 sensitivity variants",
    )
    run_parser.add_argument("--technology-nm", type=int, default=22, help="table4: tech node")
    run_parser.add_argument(
        "--scenarios", type=_comma_strs, default=None, metavar="A,B,...",
        help="scenarios: contention-scenario subset (default: all; see 'repro scenarios')",
    )
    run_parser.add_argument(
        "--contention", type=_comma_strs, default=None, metavar="L,L,...",
        help="scenarios: contention levels to sweep (low, medium, high)",
    )
    run_parser.add_argument(
        "--backoffs", type=_comma_strs, default=None, metavar="K,K,...",
        help="scenarios: MAC backoff kinds to sweep on wireless configurations "
             "(broadcast_aware, exponential, fixed)",
    )

    scenarios_parser = subparsers.add_parser(
        "scenarios", help="list the contention-scenario catalog (workloads, knobs, examples)"
    )
    scenarios_parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )

    profile_parser = subparsers.add_parser(
        "profile",
        help="time a pinned sweep, write BENCH_<experiment>.json, optionally gate on a baseline",
    )
    from repro.runner.profile import profile_names

    profile_parser.add_argument("experiment", choices=profile_names())
    profile_parser.add_argument(
        "--quick", action="store_true",
        help="use the smaller pinned grid (what the CI perf-smoke job runs)",
    )
    profile_parser.add_argument(
        "--repeats", type=int, default=3, metavar="N",
        help="repeat the sweep N times and report the best wall-clock (default 3)",
    )
    profile_parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="where to write the benchmark record (default BENCH_<experiment>.json)",
    )
    profile_parser.add_argument(
        "--no-write", action="store_true", help="do not write the benchmark record"
    )
    profile_parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="committed BENCH_*.json to gate against (non-zero exit on regression)",
    )
    profile_parser.add_argument(
        "--max-regression", type=float, default=0.30, metavar="FRACTION",
        help="allowed events/sec drop versus the baseline before failing (default 0.30)",
    )
    return parser


# --------------------------------------------------------------------------
# Commands
# --------------------------------------------------------------------------
def _cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments.common import CONFIG_BUILDERS
    from repro.experiments.fig11_sensitivity import variant_names

    inventory = {
        "experiments": sorted(EXPERIMENTS),
        "workloads": workload_names(),
        "configs": list(CONFIG_BUILDERS),
        "variants": variant_names(),
    }
    if args.json:
        print(json.dumps(inventory, indent=2))
        return 0
    print("experiments:")
    for name in inventory["experiments"]:
        print(f"  {name}")
    print("workloads (registry):")
    for name in inventory["workloads"]:
        print(f"  {name}")
    print("configurations (Table 2):", ", ".join(inventory["configs"]))
    print("sensitivity variants (Table 6):", ", ".join(inventory["variants"]))
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.workloads.contention_suite import SCENARIOS

    if args.json:
        payload = {
            name: {
                "summary": info.summary,
                "knobs": info.knobs_dict(),
                "example": info.example,
            }
            for name, info in sorted(SCENARIOS.items())
        }
        print(json.dumps(payload, indent=2))
        return 0
    print("contention scenarios (run with: python -m repro run scenarios --scenarios NAME):")
    for name, info in sorted(SCENARIOS.items()):
        print(f"\n  {name}")
        print(f"    {info.summary}")
        knobs = ", ".join(f"{knob}={default}" for knob, default in info.knobs)
        print(f"    knobs: {knobs}")
        print(f"    e.g.:  {info.example}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.parallel < 0:
        print(f"error: --parallel must be >= 0, got {args.parallel}", file=sys.stderr)
        return 2
    if args.phase_scale is None:
        args.phase_scale = 0.5 if args.experiment == "fig11" else 1.0
    executor = ParallelExecutor(args.parallel) if args.parallel > 0 else SerialExecutor()
    counting = _CountingExecutor(executor)
    cache = ResultCache(args.cache) if args.cache else None
    progress = None
    if args.progress:
        def progress(event: SpecProgress) -> None:
            print(event.describe(), file=sys.stderr, flush=True)
    runner = Runner(executor=counting, cache=cache, progress=progress)
    started = time.perf_counter()
    table, rendered = EXPERIMENTS[args.experiment](args, runner)
    elapsed = time.perf_counter() - started
    if not args.quiet:
        print(rendered)
    cached = cache.hits if cache is not None else 0
    print(
        f"{args.experiment}: {counting.simulated} simulated, {cached} cached, "
        f"{elapsed:.1f}s"
        + (f" (parallel={args.parallel})" if args.parallel > 0 else " (serial)"),
        file=sys.stderr,
    )
    if args.json:
        payload = json.dumps(_json_safe(table), indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as stream:
                stream.write(payload + "\n")
            print(f"wrote {args.json}", file=sys.stderr)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.runner.profile import (
        compare_to_baseline,
        default_bench_path,
        format_record,
        run_profile,
        write_bench,
    )

    record = run_profile(args.experiment, quick=args.quick, repeats=args.repeats)
    print(format_record(record))
    if not args.no_write:
        path = args.output or default_bench_path(args.experiment)
        write_bench(record, path)
        print(f"wrote {path}", file=sys.stderr)
    if args.baseline:
        failure = compare_to_baseline(record, args.baseline, args.max_regression)
        if failure is not None:
            print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(f"perf gate OK (baseline {args.baseline})", file=sys.stderr)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "scenarios":
            return _cmd_scenarios(args)
        if args.command == "profile":
            return _cmd_profile(args)
        return _cmd_run(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
