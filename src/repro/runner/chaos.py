"""Chaos drills: seeded fault schedules against the distributed sweep fabric.

PR 5/6 proved individual failure modes with hand-written kill drills; this
module turns those drills into a reusable, property-testable harness.  A
:class:`ChaosSchedule` is a seeded, reproducible list of :class:`KillEvent`s
("kill the broker at t₁", "kill worker k at t₂"); the drills execute the
schedule against a live sweep and assert the one invariant that matters —
**results bit-identical to a serial run** — because the simulator's
sha256-derived RNG streams make any divergence (lost task, double count,
stale checkpoint) show up as a cycle-count mismatch.

Two drills share the schedule format:

* :func:`run_embedded_drill` — in-process brokers (journaled, restarted on
  the same port after each broker kill) plus a
  :class:`~repro.runner.supervisor.WorkerSupervisor` of real worker
  subprocesses.  Fast enough for property tests to sweep many seeds.
* :func:`run_subprocess_drill` — the full ``repro chaos`` path: the sweep
  host is a real ``repro run --bind --journal`` process that gets SIGKILL'd
  and relaunched with ``--resume``, workers are real ``repro worker
  --redial`` processes, and verification diffs the run's ``--json`` table
  against a serial baseline's.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError, ExecutionError
from repro.machine.results import SimResult
from repro.runner.distributed import Broker, connect_host
from repro.runner.spec import RunSpec
from repro.runner.supervisor import WorkerSupervisor

#: Recognized kill targets.
KILL_TARGETS = ("broker", "worker")


@dataclass(frozen=True)
class KillEvent:
    """One scheduled fault: kill ``target`` ``at`` seconds into the sweep."""

    target: str  # "broker" | "worker"
    at: float    # seconds after sweep start
    index: int = 0  # which worker slot (ignored for broker kills)


@dataclass(frozen=True)
class ChaosSchedule:
    """A seeded, reproducible fault schedule."""

    seed: int
    kills: Tuple[KillEvent, ...]

    def ordered(self) -> List[KillEvent]:
        return sorted(self.kills, key=lambda kill: kill.at)

    def describe(self) -> str:
        shown = ", ".join(
            f"{kill.target}"
            + (f"[{kill.index}]" if kill.target == "worker" else "")
            + f"@{kill.at:.2f}s"
            for kill in self.ordered()
        )
        return f"seed {self.seed}: {shown or 'no kills'}"

    @classmethod
    def generate(
        cls,
        seed: int,
        targets: Sequence[str] = KILL_TARGETS,
        window: Tuple[float, float] = (0.3, 3.0),
        workers: int = 2,
    ) -> "ChaosSchedule":
        """Derive a schedule from ``seed``: one kill per requested target.

        Same seed, same schedule — CI failures replay locally with the seed
        alone.  Kill times are uniform over ``window`` (seconds after sweep
        start) and worker kills pick a uniform slot.
        """
        for target in targets:
            if target not in KILL_TARGETS:
                raise ConfigurationError(
                    f"unknown chaos kill target {target!r}; "
                    f"choices: {list(KILL_TARGETS)}"
                )
        # Seeded host-side RNG for reproducible kill schedules; runner/ is
        # outside the sim-core packages, so DET001's path scope exempts it.
        rng = random.Random(seed)
        kills = tuple(
            KillEvent(
                target=target,
                at=rng.uniform(*window),
                index=rng.randrange(workers) if workers > 0 else 0,
            )
            for target in targets
        )
        return cls(seed=seed, kills=kills)


def results_identical(mine: SimResult, theirs: SimResult) -> bool:
    """The bit-identical-to-serial check on the deterministic result fields.

    Wall-clock extras (``wall_seconds``) legitimately differ between runs;
    every simulated quantity — cycles, events, completion, per-machine
    stats — must not.
    """
    return (
        mine.total_cycles == theirs.total_cycles
        and mine.events_processed == theirs.events_processed
        and mine.completed == theirs.completed
        and mine.stats.to_dict() == theirs.stats.to_dict()
    )


class _BrokerGone(Exception):
    """Internal pump signal: the broker under drill was (deliberately) killed."""


# ---------------------------------------------------------------------------
# Embedded drill: in-process brokers, supervised worker subprocesses
# ---------------------------------------------------------------------------
@dataclass
class DrillReport:
    """What a drill did and saw; the caller asserts on it."""

    schedule: ChaosSchedule
    results: Dict[int, SimResult]
    failed: Dict[int, str]
    broker_restarts: int = 0
    worker_kills: int = 0
    replayed: int = 0

    def all_completed(self, total: int) -> bool:
        return not self.failed and len(self.results) == total


def run_embedded_drill(
    specs: Sequence[RunSpec],
    schedule: ChaosSchedule,
    journal_dir: Union[str, Path],
    pool: int = 2,
    lease_seconds: float = 10.0,
    checkpoint_every: Optional[int] = None,
    redial: float = 30.0,
    timeout: float = 180.0,
) -> DrillReport:
    """Execute ``schedule`` against a journaled in-process broker fabric.

    Broker kills close the live broker (its sockets drop exactly as a
    SIGKILL's would; the fsync'd journal is the only survivor) and construct
    a replacement on the *same* port from the same journal.  Worker kills
    SIGKILL a supervised worker subprocess — the supervisor respawns it.
    Completed positions are collected into a dict, so the re-emitted events
    of a journal replay deduplicate naturally; the caller compares against
    serial with :func:`results_identical`.
    """
    payloads = [spec.to_dict() for spec in specs]
    report = DrillReport(schedule=schedule, results={}, failed={})
    lock = threading.Lock()

    def make_broker(port: int) -> Broker:
        return Broker(
            payloads,
            host="127.0.0.1",
            port=port,
            lease_seconds=lease_seconds,
            checkpoint_every=checkpoint_every,
            journal_dir=str(journal_dir),
        ).start()

    def start_pump(broker: Broker) -> threading.Thread:
        def pump() -> None:
            def poll() -> None:
                if broker.closed():
                    raise _BrokerGone  # repro: noqa[ERR001] -- internal drill signal, caught in this function; never escapes the module

            try:
                for kind, position, payload in broker.events(
                    poll=poll, poll_interval=0.1
                ):
                    with lock:
                        if kind == "result":
                            report.results[position] = payload
                            report.failed.pop(position, None)
                        else:
                            report.failed[position] = payload
            except _BrokerGone:
                pass

        thread = threading.Thread(target=pump, daemon=True)
        thread.start()
        return thread

    broker = make_broker(0)
    port = broker.port
    pump = start_pump(broker)
    supervisor = WorkerSupervisor(
        connect_host(broker.host), port, pool,
        heartbeat=min(0.5, lease_seconds / 4.0),
        redial=redial,
        # Drill kills are deliberate, not a sick host: keep the breaker wide
        # open so every scheduled kill gets its respawn.
        max_rapid_failures=100,
        backoff_base=0.1,
        backoff_cap=1.0,
    )
    deadline = time.monotonic() + timeout
    started = time.monotonic()
    try:
        for kill in schedule.ordered():
            while (
                time.monotonic() - started < kill.at
                and broker.outstanding() > 0
            ):
                time.sleep(0.02)
            if broker.outstanding() == 0:
                break  # sweep finished before this kill; remaining are no-ops
            if kill.target == "broker":
                broker.close()
                pump.join(timeout=5.0)
                broker = make_broker(port)
                report.broker_restarts += 1
                report.replayed += broker.stats["replayed"]
                pump = start_pump(broker)
            else:
                supervisor.kill(kill.index % pool)
                report.worker_kills += 1
        while broker.outstanding() > 0:
            if time.monotonic() > deadline:
                raise ExecutionError(
                    f"chaos drill timed out after {timeout}s "
                    f"({schedule.describe()}; "
                    f"{len(report.results)}/{len(specs)} completed)"
                )
            time.sleep(0.05)
        pump.join(timeout=10.0)
    finally:
        supervisor.close()
        broker.close()
    return report


def verify_against_serial(
    specs: Sequence[RunSpec], report: DrillReport
) -> List[str]:
    """Run the grid serially and name every divergence (empty = identical)."""
    from repro.runner.executor import SerialExecutor

    baseline = SerialExecutor().run(specs)
    problems: List[str] = []
    for position, reason in sorted(report.failed.items()):
        problems.append(f"[{specs[position].label()}] failed: {reason}")
    for position, expected in enumerate(baseline):
        got = report.results.get(position)
        if got is None:
            if position not in report.failed:
                problems.append(f"[{specs[position].label()}] never completed")
            continue
        if not results_identical(got, expected):
            problems.append(
                f"[{specs[position].label()}] diverged from serial: "
                f"cycles {got.total_cycles} != {expected.total_cycles} or "
                f"events/stats mismatch"
            )
    return problems


# ---------------------------------------------------------------------------
# Subprocess drill: real SIGKILLs against a real `repro run --bind --journal`
# ---------------------------------------------------------------------------
def _repro_env() -> Dict[str, str]:
    env = os.environ.copy()
    src = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    env.pop("REPRO_WORKER_FAULT", None)
    return env


def _free_port() -> int:
    import socket

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _spawn_worker(port: int, env: Dict[str, str]) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--connect", f"127.0.0.1:{port}",
         "--heartbeat", "0.2", "--redial", "30"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def run_subprocess_drill(
    experiment: str = "fig7",
    seed: int = 0,
    kills: Sequence[str] = KILL_TARGETS,
    workers: int = 2,
    work_dir: Union[str, Path, None] = None,
    timeout: float = 600.0,
    echo: Any = None,
) -> int:
    """The ``repro chaos`` drill: SIGKILL real processes, diff real output.

    1. Serial baseline: ``repro run <experiment> --quick --json`` in a
       subprocess (no manifest, no broker).
    2. Chaos run: ``repro run --quick --distributed 0 --bind --journal``
       sweep host plus ``workers`` redialing worker subprocesses.
    3. Execute the seeded schedule: broker kills SIGKILL the sweep host and
       relaunch it with ``--resume <run-id> --bind <same port> --journal``;
       worker kills SIGKILL one worker and spawn a replacement.
    4. Verify the chaos run's ``--json`` table is byte-identical to the
       serial baseline's.

    Returns a process exit code (0 = identical).  ``echo`` is a print-like
    callable for progress lines (default: stderr).
    """
    def say(message: str) -> None:
        if echo is not None:
            echo(message)
        else:
            print(f"chaos: {message}", file=sys.stderr, flush=True)

    import tempfile

    with tempfile.TemporaryDirectory(
        prefix="repro-chaos-", dir=str(work_dir) if work_dir else None
    ) as scratch:
        scratch_path = Path(scratch)
        env = _repro_env()
        schedule = ChaosSchedule.generate(
            seed, targets=kills, window=(0.5, 4.0), workers=workers
        )
        say(schedule.describe())

        baseline_json = scratch_path / "baseline.json"
        baseline = subprocess.run(
            [sys.executable, "-m", "repro", "run", experiment, "--quick",
             "--no-manifest", "--quiet", "--json", str(baseline_json)],
            env=env, capture_output=True, text=True, timeout=timeout,
        )
        if baseline.returncode != 0:
            say(f"serial baseline failed:\n{baseline.stderr}")
            return 1
        say("serial baseline recorded")

        port = _free_port()
        runs_dir = scratch_path / "runs"
        run_id = f"chaos-{seed}"
        chaos_json = scratch_path / "chaos.json"
        host_command = [
            sys.executable, "-m", "repro", "run", experiment, "--quick",
            "--distributed", "0", "--bind", f"127.0.0.1:{port}", "--journal",
            "--run-id", run_id, "--runs-dir", str(runs_dir),
            "--quiet", "--json", str(chaos_json),
        ]
        resume_command = [
            sys.executable, "-m", "repro", "run",
            "--resume", run_id, "--runs-dir", str(runs_dir),
            "--distributed", "0", "--bind", f"127.0.0.1:{port}", "--journal",
            "--quiet", "--json", str(chaos_json),
        ]
        host = subprocess.Popen(
            host_command, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        fleet = [_spawn_worker(port, env) for _ in range(workers)]
        deadline = time.monotonic() + timeout
        # The fault clock starts when the broker is actually up: a SIGKILL
        # during interpreter startup would land before the manifest and
        # journal even exist, leaving nothing to --resume.
        import socket as socket_module

        while time.monotonic() < deadline and host.poll() is None:
            try:
                socket_module.create_connection(
                    ("127.0.0.1", port), timeout=0.2
                ).close()
                break
            except OSError:
                time.sleep(0.1)
        started = time.monotonic()
        try:
            for kill in schedule.ordered():
                while (
                    time.monotonic() - started < kill.at
                    and host.poll() is None
                ):
                    time.sleep(0.05)
                if host.poll() is not None:
                    break  # sweep already finished; later kills are no-ops
                if kill.target == "broker":
                    host.send_signal(signal.SIGKILL)
                    host.wait()
                    say(f"SIGKILL'd sweep host at t={kill.at:.2f}s; "
                        f"relaunching with --resume {run_id}")
                    host = subprocess.Popen(
                        resume_command, env=env,
                        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
                    )
                else:
                    victim = kill.index % len(fleet)
                    fleet[victim].send_signal(signal.SIGKILL)
                    fleet[victim].wait()
                    say(f"SIGKILL'd worker {victim} at t={kill.at:.2f}s; "
                        f"spawning replacement")
                    fleet[victim] = _spawn_worker(port, env)
            while host.poll() is None:
                if time.monotonic() > deadline:
                    host.kill()
                    say(f"chaos run timed out after {timeout}s")
                    return 1
                time.sleep(0.1)
            if host.returncode != 0:
                say(f"chaos sweep host exited {host.returncode}")
                return 1
        finally:
            if host.poll() is None:
                host.kill()
            for proc in fleet:
                if proc.poll() is None:
                    proc.terminate()
            for proc in fleet:
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        try:
            expected = json.loads(baseline_json.read_text(encoding="utf-8"))
            got = json.loads(chaos_json.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            say(f"could not read drill output: {error}")
            return 1
        if got != expected:
            say("FAIL: chaos-run results diverged from the serial baseline")
            return 1
        say("OK: chaos-run results bit-identical to the serial baseline")
        return 0
