"""Distributed sweep execution: a JSON-lines-over-TCP broker plus workers.

The contention-scenario grids (cores x config x contention x backoff) and the
paper's fig7-fig11 grids saturate one machine's process pool; this module
fans a sweep out across hosts while keeping the executor contract — and the
results — identical to a serial run.

Three pieces:

* :class:`Broker` — owns one batch of spec payloads and serves them to
  pull-based workers over newline-delimited JSON on TCP.  Work assignment is
  lease-based: every task carries a deadline that the executing worker's
  heartbeats extend; an expired lease or a dropped connection requeues the
  task with the offending worker excluded, and a spec that exhausts its
  attempts is reported as failed instead of wedging the sweep.
* ``repro worker --connect host:port`` (:func:`run_worker`) — the process any
  host runs to pull spec payloads and push ``SimResult`` dicts back.  It
  executes specs through exactly the serialization path the process-pool
  executor and the result cache use (:func:`~repro.runner.executor._execute_payload`),
  so determinism via the sha256-derived RNG streams makes distributed results
  bit-identical to serial ones.
* :class:`DistributedExecutor` — implements the ``run_iter``-in-completion-
  order executor contract, so ``Runner``, the result cache, ``SpecProgress``
  streaming, and ``--progress`` compose unchanged.  With ``workers=N`` it
  spins a :class:`LocalCluster` of N localhost worker subprocesses per sweep;
  with ``workers=0`` it binds ``(host, port)`` and waits for external
  ``repro worker`` processes to join.

Wire protocol (one TCP connection per worker, one JSON object per line)::

    worker -> {"type": "hello", "worker": "<id>"}
    broker -> {"type": "welcome", "lease_seconds": <s>}
    worker -> {"type": "next"}
    broker -> {"type": "task", "task": <n>, "payload": {<RunSpec dict>}}
            | {"type": "idle", "delay": <s>}       (nothing assignable yet)
            | {"type": "drain"}                    (sweep finished; exit)
    worker -> {"type": "heartbeat", "task": <n>}   (no reply; extends lease)
    worker -> {"type": "result", "task": <n>, "result": {<SimResult dict>}}
    worker -> {"type": "error", "task": <n>, "error": "<reason>"}
    worker -> {"type": "checkpoint", "task": <n>, "snapshot": {<document>}}
    worker -> {"type": "release", "task": <n>, "snapshot": {<document>}|null}

``result``/``error`` get no reply; the worker immediately sends the next
``next``.  Late results from a worker whose lease already expired are still
accepted (first result wins — they are deterministic), so a slow-but-alive
worker never wastes its work.

Checkpoint shipping (broker built with ``checkpoint_every``): every task
message carries ``checkpoint_every`` and, when the broker holds one, a
``checkpoint`` snapshot document; the worker resumes mid-spec from it and
ships a fresh ``checkpoint`` message every N events.  A SIGTERM'd worker
sends ``release`` — a *clean* lease return that refunds the attempt and
excludes nobody, unlike ``error`` — optionally carrying a final snapshot, so
the replacement worker restarts the spec from the last slice boundary rather
than from zero.
"""

from __future__ import annotations

import collections
import json
import os
import socket
import subprocess
import sys
import threading
import time
import uuid
from pathlib import Path
from queue import Empty, Queue
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ConfigurationError, ExecutionError
from repro.machine.results import SimResult
from repro.runner.executor import (
    _ExecutorBase,
    describe_error,
    failures_error,
    partial_sweep_error,
)
from repro.runner.spec import RunSpec
from repro.runner.supervisor import WorkerSupervisor, backoff_delays

#: Default lease duration; heartbeats every ``lease/3`` keep long specs alive.
DEFAULT_LEASE_SECONDS = 30.0
#: Default per-spec assignment budget (first attempt plus two retries).
DEFAULT_MAX_ATTEMPTS = 3
#: Environment variable carrying a worker fault-injection mode (tests/drills).
FAULT_ENV = "REPRO_WORKER_FAULT"
#: Recognized fault-injection modes for ``repro worker --fault``.
WORKER_FAULTS = ("exit-on-task", "error-on-task")


def parse_address(text: str) -> Tuple[str, int]:
    """Parse ``host:port`` (empty host means localhost) into a tuple."""
    host, separator, port = text.rpartition(":")
    if not separator or not port.isdigit():
        raise ConfigurationError(f"expected HOST:PORT, got {text!r}")
    return host or "127.0.0.1", int(port)


def connect_host(bind_host: str) -> str:
    """A host workers on *this* machine can dial for the given bind host.

    A wildcard bind (``0.0.0.0`` / ``::``) is a listening address, not a
    reachable one — local workers must dial loopback instead.
    """
    return "127.0.0.1" if bind_host in ("", "0.0.0.0", "::") else bind_host


# ---------------------------------------------------------------------------
# Wire helpers
# ---------------------------------------------------------------------------
def _send(sock: socket.socket, lock: threading.Lock, message: Dict[str, Any]) -> None:
    data = (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")
    with lock:
        sock.sendall(data)


def _read(reader: Any) -> Optional[Dict[str, Any]]:
    """One JSON message, or None when the peer closed the connection."""
    line = reader.readline()
    if not line:
        return None
    return json.loads(line)


def claim_worker_name(requested: str, in_use: Any) -> str:
    """A connection-unique worker name: ``requested``, or ``requested#N``.

    Two workers arriving with the same auto-generated name (cloned VMs,
    copy-pasted ``--connect`` commands from different clients) would
    otherwise alias in broker stats and — worse — in per-task exclusion
    sets, letting a crashing worker's retry land right back on its
    same-named twin.  The broker assigns the suffixed name at handshake
    and echoes it in the welcome message; the worker adopts it for the
    rest of the session (heartbeats, redials), so exclusions stay keyed
    on the unique name.  Caller holds the lock guarding ``in_use``.
    """
    if requested not in in_use:
        return requested
    ordinal = 2
    while f"{requested}#{ordinal}" in in_use:
        ordinal += 1
    return f"{requested}#{ordinal}"


# ---------------------------------------------------------------------------
# Broker
# ---------------------------------------------------------------------------
_READY, _LEASED, _DONE, _FAILED = "ready", "leased", "done", "failed"


class _Task:
    __slots__ = ("position", "payload", "state", "attempts", "excluded",
                 "worker", "deadline", "errors", "checkpoint", "key",
                 "first_assigned", "timed_out")

    def __init__(self, position: int, payload: Dict[str, Any]) -> None:
        self.position = position
        self.payload = payload
        self.state = _READY
        self.attempts = 0
        self.excluded: set = set()
        self.worker: Optional[str] = None
        self.deadline = 0.0
        self.errors: List[str] = []
        #: Latest shipped :class:`~repro.snapshot.Snapshot`, if any; attached
        #: to the next assignment so a replacement worker resumes mid-spec.
        self.checkpoint: Optional[Any] = None
        #: Spec content key (sha256); set only on journaled brokers, where
        #: records must survive grid renumbering across restarts.
        self.key: Optional[str] = None
        #: Wall-clock (monotonic) of the *first* assignment — the per-spec
        #: deadline measures total time-in-flight, not per-attempt time.
        self.first_assigned: Optional[float] = None
        #: True when this task was terminally failed by a deadline, not by
        #: worker errors; surfaces as PartialSweepError on the sweep host.
        self.timed_out = False


class Broker:
    """Serve one batch of spec payloads to pull-based workers over TCP.

    Thread layout: one acceptor, one connection handler per worker, one lease
    monitor.  All task-state transitions happen under ``_lock``; completion
    and terminal-failure events flow through ``_events`` to
    :meth:`events`, which the executor consumes on the sweep host.
    """

    def __init__(
        self,
        payloads: Sequence[Dict[str, Any]],
        host: str = "127.0.0.1",
        port: int = 0,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        journal_dir: Optional[str] = None,
        spec_deadline_seconds: Optional[float] = None,
        sweep_deadline_seconds: Optional[float] = None,
    ) -> None:
        if lease_seconds <= 0:
            raise ConfigurationError("lease_seconds must be positive")
        if max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ConfigurationError("checkpoint_every must be a positive event count")
        if spec_deadline_seconds is not None and spec_deadline_seconds <= 0:
            raise ConfigurationError("spec_deadline_seconds must be positive")
        if sweep_deadline_seconds is not None and sweep_deadline_seconds <= 0:
            raise ConfigurationError("sweep_deadline_seconds must be positive")
        self._bind = (host, port)
        self.host = host
        self.port = port
        self.lease_seconds = lease_seconds
        self.max_attempts = max_attempts
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = checkpoint_dir
        self.spec_deadline_seconds = spec_deadline_seconds
        self.sweep_deadline_seconds = sweep_deadline_seconds
        self._started_at: Optional[float] = None
        self._tasks = [_Task(i, payload) for i, payload in enumerate(payloads)]
        self._ready: Deque[int] = collections.deque(range(len(self._tasks)))
        self._outstanding = len(self._tasks)
        self._lock = threading.Lock()
        self._events: "Queue[Tuple[str, int, Any]]" = Queue()
        self._closed = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._connections: List[socket.socket] = []
        self._threads: List[threading.Thread] = []
        self._workers: set = set()
        self.stats = {
            "assigned": 0, "completed": 0, "failed": 0, "requeued": 0,
            "expired": 0, "disconnects": 0, "duplicates": 0,
            "checkpoints": 0, "released": 0, "resumed": 0,
            "replayed": 0, "timed_out": 0,
        }
        self._journal: Optional[Any] = None
        if journal_dir is not None:
            self._attach_journal(journal_dir)
        if self.checkpoint_dir is not None:
            self._preload_checkpoints()

    def _attach_journal(self, journal_dir: str) -> None:
        """Open (and replay, if present) the write-ahead journal.

        Replay happens *before* the listener starts, so a restarted broker
        re-enters the exact task state the journal proves: finished grid
        points go terminal immediately (their events pre-queued for the
        sweep host — re-emitted, never re-run), burned attempts and worker
        exclusions stick, shipped checkpoints are re-adopted, and the attempt
        that was in flight when the old broker died is refunded.
        """
        from repro.runner.journal import BrokerJournal

        self._journal = BrokerJournal(journal_dir)
        for task in self._tasks:
            task.key = RunSpec.from_dict(task.payload).key()
        states = self._journal.replay()
        for task in self._tasks:
            state = states.get(task.key)
            if state is None:
                continue
            if state.result is not None:
                try:
                    parsed = SimResult.from_dict(state.result)
                except Exception:  # noqa: BLE001 - foreign/corrupt payload
                    continue  # treat as never-run rather than crash the sweep
                self._ready.remove(task.position)
                self.stats["replayed"] += 1
                self._finish_locked(task, _DONE, parsed, journal=False)
                continue
            if state.failed:
                task.errors = list(state.errors)
                self._ready.remove(task.position)
                self._finish_locked(task, _FAILED, journal=False)
                continue
            task.attempts = state.settled_attempts()
            task.excluded = set(state.excluded)
            task.errors = list(state.errors)
            if state.checkpoint is not None:
                snapshot = self._parse_checkpoint(task.position, state.checkpoint)
                if snapshot is not None:
                    task.checkpoint = snapshot
                    self.stats["replayed"] += 1

    def _journal_append(self, record: Dict[str, Any]) -> None:
        """Durably log one transition; disk trouble degrades to no journal."""
        if self._journal is None:
            return
        try:
            self._journal.append(record)
        except OSError as error:
            import warnings

            from repro.runner.journal import JournalWarning

            warnings.warn(
                f"broker journal write failed ({error}); continuing without "
                f"crash recovery for this sweep",
                JournalWarning,
                stacklevel=2,
            )
            try:
                self._journal.close()
            finally:
                self._journal = None

    def _preload_checkpoints(self) -> None:
        """Adopt checkpoints a previous (killed) sweep host left on disk.

        Journal-replayed checkpoints win: they are at least as fresh as the
        persisted copies (every persisted snapshot was journaled first).
        """
        from repro.snapshot import checkpoint_path, try_load_snapshot

        for task in self._tasks:
            if task.checkpoint is not None or task.state in (_DONE, _FAILED):
                continue
            spec = RunSpec.from_dict(task.payload)
            snapshot, _ = try_load_snapshot(
                checkpoint_path(self.checkpoint_dir, spec)
            )
            if snapshot is not None and snapshot.spec == spec:
                task.checkpoint = snapshot

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    # ----------------------------------------------------------- lifecycle
    def start(self) -> "Broker":
        try:
            self._listener = socket.create_server(self._bind)
        except OSError as error:
            raise ConfigurationError(
                f"cannot bind broker to {self._bind[0]}:{self._bind[1]}: {error}"
            )
        self.host, self.port = self._listener.getsockname()[:2]
        self._started_at = time.monotonic()
        for target in (self._accept_loop, self._monitor_loop):
            thread = threading.Thread(target=target, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def close(self) -> None:
        self._closed.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            # shutdown(), not just close(): the handler thread's makefile()
            # reader holds an io-ref, so close() alone defers the real FD
            # close and the connection would silently stay alive.
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)
        if self._journal is not None:
            self._journal.close()

    def __enter__(self) -> "Broker":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------- queries
    def outstanding(self) -> int:
        """Tasks not yet terminal (neither done nor failed)."""
        with self._lock:
            return self._outstanding

    def worker_count(self) -> int:
        """Workers currently connected (hello received, not disconnected)."""
        with self._lock:
            return len(self._workers)

    def closed(self) -> bool:
        """True once :meth:`close` ran (chaos drills poll this mid-kill)."""
        return self._closed.is_set()

    def timed_out_positions(self) -> set:
        """Positions terminally failed by a spec deadline or the sweep budget."""
        with self._lock:
            return {task.position for task in self._tasks if task.timed_out}

    def abort(self, reason: str) -> None:
        """Terminally fail every non-finished task (unblocks :meth:`events`).

        Abort failures are *not* journaled: they reflect this session's
        environment (every local worker died), not a durable fact about the
        spec, and a restarted broker should retry those grid points.
        """
        with self._lock:
            for task in self._tasks:
                if task.state in (_DONE, _FAILED):
                    continue
                if task.state == _READY:
                    try:
                        self._ready.remove(task.position)
                    except ValueError:
                        pass
                task.errors.append(reason)
                self._finish_locked(task, _FAILED, journal=False)

    def events(
        self,
        poll: Optional[Callable[[], None]] = None,
        poll_interval: float = 0.5,
    ) -> Iterator[Tuple[str, int, Any]]:
        """Yield ``("result"|"failed", position, payload)`` until all terminal.

        ``payload`` is the parsed :class:`SimResult` for ``"result"`` events
        and the joined failure reasons (a string) for ``"failed"`` ones.
        ``poll`` runs whenever no event arrived for ``poll_interval`` seconds
        — the executor's liveness watchdog hook.
        """
        pending = len(self._tasks)
        while pending:
            try:
                event = self._events.get(timeout=poll_interval)
            except Empty:
                if poll is not None:
                    poll()
                continue
            pending -= 1
            yield event

    # ----------------------------------------------------- connection side
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closed.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break  # listener closed
            with self._lock:
                self._connections.append(conn)
            thread = threading.Thread(target=self._serve, args=(conn,), daemon=True)
            thread.start()
            self._threads.append(thread)

    def _serve(self, conn: socket.socket) -> None:
        # Live peers are chatty (idle workers poll every ~50 ms, leased ones
        # heartbeat every lease/3), so a generous read timeout only ever
        # fires for a half-open connection whose host dropped without a
        # FIN/RST — which would otherwise stay in _workers forever, blocking
        # the exclusion fallback and wedging the sweep.
        conn.settimeout(max(self.lease_seconds * 2.0, 10.0))
        write_lock = threading.Lock()
        worker = f"anon-{uuid.uuid4().hex[:8]}"
        reader = conn.makefile("r", encoding="utf-8")
        try:
            while True:
                try:
                    message = _read(reader)
                except (OSError, ValueError):
                    break
                if message is None:
                    break
                try:
                    kind = message.get("type")
                    if kind == "hello":
                        requested = str(message.get("worker") or worker)
                        with self._lock:
                            worker = claim_worker_name(requested, self._workers)
                            self._workers.add(worker)
                        _send(conn, write_lock, {
                            "type": "welcome", "lease_seconds": self.lease_seconds,
                            "worker": worker,
                        })
                    elif kind == "next":
                        _send(conn, write_lock, self._assign(worker))
                    elif kind in ("heartbeat", "result", "error",
                                  "checkpoint", "release"):
                        task_id = int(message["task"])
                        if not 0 <= task_id < len(self._tasks):
                            continue  # corrupt or foreign task id; ignore
                        if kind == "heartbeat":
                            self._extend_lease(task_id, worker)
                        elif kind == "result":
                            self._complete(task_id, worker, message["result"])
                        elif kind == "checkpoint":
                            self._store_checkpoint(
                                task_id, worker, message.get("snapshot")
                            )
                        elif kind == "release":
                            self._release(task_id, worker, message.get("snapshot"))
                        else:
                            self._report_error(
                                task_id, worker, str(message.get("error"))
                            )
                except (AttributeError, KeyError, TypeError, ValueError):
                    # Structurally invalid message (JSON array, missing/odd
                    # fields): drop the line, keep the worker's connection —
                    # killing the handler would cost it a lease and an
                    # exclusion for one corrupt line.
                    continue
        except OSError:
            pass
        finally:
            self._disconnect(worker, conn)

    # ------------------------------------------------------ state machine
    def _assign(self, worker: str) -> Dict[str, Any]:
        with self._lock:
            chosen: Optional[int] = None
            for task_id in self._ready:
                if worker not in self._tasks[task_id].excluded:
                    chosen = task_id
                    break
            if chosen is None:
                # Exclusion is best-effort: a task that excludes every
                # currently connected worker has nobody left to serve it and
                # would wedge the sweep — retrying beats deadlocking.
                for task_id in self._ready:
                    if self._workers <= self._tasks[task_id].excluded:
                        chosen = task_id
                        break
            if chosen is not None:
                self._ready.remove(chosen)
                task = self._tasks[chosen]
                task.state = _LEASED
                task.worker = worker
                task.attempts += 1
                now = time.monotonic()
                if task.first_assigned is None:
                    task.first_assigned = now
                task.deadline = now + self.lease_seconds
                self.stats["assigned"] += 1
                self._journal_append({
                    "kind": "assigned", "key": task.key, "worker": worker,
                })
                message = {"type": "task", "task": chosen, "payload": task.payload}
                if self.checkpoint_every is not None:
                    message["checkpoint_every"] = self.checkpoint_every
                if task.checkpoint is not None:
                    from repro.snapshot import snapshot_document

                    message["checkpoint"] = snapshot_document(task.checkpoint)
                    self.stats["resumed"] += 1
                return message
            if self._outstanding == 0:
                return {"type": "drain"}
            return {"type": "idle", "delay": 0.05}

    def _extend_lease(self, task_id: int, worker: str) -> None:
        with self._lock:
            task = self._tasks[task_id]
            if task.state == _LEASED and task.worker == worker:
                task.deadline = time.monotonic() + self.lease_seconds

    def _parse_checkpoint(self, task_id: int, document: Any) -> Optional[Any]:
        """Validate a shipped snapshot document against its task's spec."""
        from repro.errors import SnapshotError
        from repro.snapshot import parse_document

        try:
            snapshot = parse_document(document, source=f"task {task_id} checkpoint")
        except SnapshotError:
            return None  # corrupt in flight; the old checkpoint stays usable
        if snapshot.spec != RunSpec.from_dict(self._tasks[task_id].payload):
            return None
        return snapshot

    def _persist_checkpoint(self, snapshot: Any) -> None:
        if self.checkpoint_dir is None:
            return
        from repro.snapshot import checkpoint_path, save_snapshot

        try:
            save_snapshot(snapshot, checkpoint_path(self.checkpoint_dir, snapshot.spec))
        except OSError:
            pass  # disk trouble only costs resume granularity, not the sweep

    def _store_checkpoint(self, task_id: int, worker: str, document: Any) -> None:
        snapshot = self._parse_checkpoint(task_id, document)
        if snapshot is None:
            return
        with self._lock:
            task = self._tasks[task_id]
            if task.state != _LEASED or task.worker != worker:
                return  # stale shipment from an expired lease
            task.checkpoint = snapshot
            # A checkpoint proves liveness as well as any heartbeat.
            task.deadline = time.monotonic() + self.lease_seconds
            self.stats["checkpoints"] += 1
            self._journal_append({
                "kind": "checkpointed", "key": task.key, "snapshot": document,
            })
        self._persist_checkpoint(snapshot)

    def _release(self, task_id: int, worker: str, document: Any) -> None:
        """A clean mid-spec lease return (worker preempted, e.g. SIGTERM).

        Unlike ``error`` this refunds the attempt and excludes nobody: the
        worker did nothing wrong, and its final snapshot means the next
        assignee continues from the slice boundary instead of from zero.
        """
        snapshot = self._parse_checkpoint(task_id, document) if document else None
        with self._lock:
            task = self._tasks[task_id]
            if task.state != _LEASED or task.worker != worker:
                return
            if snapshot is not None:
                task.checkpoint = snapshot
                self._journal_append({
                    "kind": "checkpointed", "key": task.key,
                    "snapshot": document,
                })
            task.attempts -= 1
            task.state = _READY
            task.worker = None
            self._ready.append(task.position)
            self.stats["released"] += 1
            self._journal_append({"kind": "released", "key": task.key})
        if snapshot is not None:
            self._persist_checkpoint(snapshot)

    def _complete(self, task_id: int, worker: str, result: Dict[str, Any]) -> None:
        # Parse the payload into a SimResult *before* the task goes terminal:
        # a wrong-shape dict from a version-skewed worker must requeue the
        # spec like any worker error, not crash the sweep host's event loop.
        try:
            parsed = SimResult.from_dict(result)
        except Exception as error:  # noqa: BLE001 - arbitrary payloads
            self._report_error(
                task_id, worker,
                f"worker returned an invalid result payload: "
                f"{describe_error(error)}",
            )
            return
        with self._lock:
            task = self._tasks[task_id]
            if task.state in (_DONE, _FAILED):
                self.stats["duplicates"] += 1  # late result after reassignment
                return
            if task.state == _READY:
                # Expired lease, but the original worker finished after all.
                self._ready.remove(task_id)
            task.checkpoint = None
            self._finish_locked(task, _DONE, parsed)
        if self.checkpoint_dir is not None:
            from repro.snapshot import checkpoint_path

            try:
                checkpoint_path(
                    self.checkpoint_dir, RunSpec.from_dict(task.payload)
                ).unlink(missing_ok=True)
            except OSError:
                pass

    def _report_error(self, task_id: int, worker: str, reason: str) -> None:
        with self._lock:
            task = self._tasks[task_id]
            if task.state != _LEASED or task.worker != worker:
                return  # stale report from a lease that already expired
            # Exclude the reporter so the retry prefers a different worker: a
            # host with a broken environment errors instantly and would
            # otherwise re-poll and burn the spec's whole attempt budget in
            # milliseconds.  Exclusion is best-effort (see _assign), so on a
            # single-worker fleet the retry still lands on the same worker.
            self._requeue_or_fail_locked(task, reason, exclude=True)

    def _disconnect(self, worker: str, conn: socket.socket) -> None:
        with self._lock:
            self._workers.discard(worker)
            try:
                self._connections.remove(conn)
            except ValueError:
                pass
            leased = [
                task for task in self._tasks
                if task.state == _LEASED and task.worker == worker
            ]
            for task in leased:
                self.stats["disconnects"] += 1
                self._requeue_or_fail_locked(
                    task, f"worker {worker} disconnected mid-spec", exclude=True
                )
        try:
            conn.close()
        except OSError:
            pass

    def _monitor_loop(self) -> None:
        interval = min(0.5, self.lease_seconds / 4.0)
        if self.spec_deadline_seconds is not None:
            interval = min(interval, self.spec_deadline_seconds / 4.0)
        if self.sweep_deadline_seconds is not None:
            interval = min(interval, self.sweep_deadline_seconds / 4.0)
        interval = max(interval, 0.02)
        while not self._closed.wait(interval):
            now = time.monotonic()
            with self._lock:
                for task in self._tasks:
                    if task.state in (_DONE, _FAILED):
                        continue
                    if (
                        self.spec_deadline_seconds is not None
                        and task.first_assigned is not None
                        and now - task.first_assigned > self.spec_deadline_seconds
                    ):
                        self._time_out_locked(
                            task,
                            f"spec deadline exceeded "
                            f"({self.spec_deadline_seconds}s since first "
                            f"assignment)",
                        )
                        continue
                    if task.state == _LEASED and task.deadline < now:
                        self.stats["expired"] += 1
                        self._requeue_or_fail_locked(
                            task,
                            f"lease expired on worker {task.worker} "
                            f"(no heartbeat for {self.lease_seconds}s)",
                            exclude=True,
                        )
                if (
                    self.sweep_deadline_seconds is not None
                    and self._started_at is not None
                    and now - self._started_at > self.sweep_deadline_seconds
                ):
                    for task in self._tasks:
                        if task.state not in (_DONE, _FAILED):
                            self._time_out_locked(
                                task,
                                f"sweep budget exhausted "
                                f"({self.sweep_deadline_seconds}s)",
                            )

    def _time_out_locked(self, task: _Task, reason: str) -> None:
        """Terminally fail a wedged task so the sweep degrades gracefully.

        Not journaled: deadlines are session policy, not durable facts about
        the spec — a restarted broker (perhaps with a bigger budget) should
        be free to retry it.  A late result from the still-running worker is
        dropped as a duplicate, keeping the executor's yield-once contract.
        """
        if task.state == _READY:
            try:
                self._ready.remove(task.position)
            except ValueError:
                pass
        task.errors.append(reason)
        task.timed_out = True
        self.stats["timed_out"] += 1
        self._finish_locked(task, _FAILED, journal=False)

    def _requeue_or_fail_locked(
        self, task: _Task, reason: str, exclude: bool
    ) -> None:
        task.errors.append(reason)
        if exclude and task.worker is not None:
            task.excluded.add(task.worker)
            self._journal_append({
                "kind": "excluded", "key": task.key,
                "worker": task.worker, "reason": reason,
            })
        if task.attempts >= self.max_attempts:
            self._finish_locked(task, _FAILED)
        else:
            task.state = _READY
            task.worker = None
            self._ready.append(task.position)
            self.stats["requeued"] += 1

    def _finish_locked(
        self,
        task: _Task,
        state: str,
        result: Optional[SimResult] = None,
        journal: bool = True,
    ) -> None:
        task.state = state
        task.worker = None
        self._outstanding -= 1
        if state == _DONE:
            if journal:
                self._journal_append({
                    "kind": "completed", "key": task.key,
                    "result": result.to_dict() if result is not None else None,
                })
            self.stats["completed"] += 1
            self._events.put(("result", task.position, result))
        else:
            if journal:
                self._journal_append({
                    "kind": "failed", "key": task.key,
                    "reasons": list(task.errors),
                })
            self.stats["failed"] += 1
            self._events.put(("failed", task.position, "; ".join(task.errors)))


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------
def worker_id() -> str:
    """A globally unique worker name: host, pid, and a random suffix."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


def _connect(host: str, port: int, timeout: float = 10.0) -> socket.socket:
    """Dial the broker, retrying while it (or the network) comes up.

    Retries back off exponentially with jitter (see
    :func:`~repro.runner.supervisor.backoff_delays`): a supervisor respawning
    a whole fleet, or a pool of workers redialing a restarted broker, must
    not hammer the listen backlog in lockstep.  ``timeout`` caps the *total*
    dial time, not any single attempt.
    """
    deadline = time.monotonic() + timeout
    delays = backoff_delays(0.05, 1.0)
    while True:
        try:
            return socket.create_connection((host, port), timeout=30.0)
        except OSError:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise
            time.sleep(min(next(delays), max(0.0, remaining)))


def _handshake(
    host: str,
    port: int,
    name: str,
    connect_timeout: float = 10.0,
    token: Optional[str] = None,
) -> Tuple[socket.socket, Any, threading.Lock, float, str]:
    """Dial the broker and complete the JSON handshake as worker ``name``.

    Returns ``(sock, reader, write_lock, lease_seconds, assigned_name)``.
    Shared by the initial dial and mid-sweep redials; the worker adopts the
    broker-assigned (collision-suffixed) name and keeps it across redials so
    its exclusions on the broker survive the reconnect.  ``token`` is the
    shared service secret; a token-checking broker answers a bad one with a
    ``reject`` message, surfaced here as :class:`ExecutionError`.
    """
    sock = _connect(host, port, timeout=connect_timeout)
    write_lock = threading.Lock()
    reader = sock.makefile("r", encoding="utf-8")
    hello: Dict[str, Any] = {"type": "hello", "worker": name}
    if token is not None:
        hello["token"] = token
    try:
        _send(sock, write_lock, hello)
        welcome = _read(reader)
    except (OSError, ValueError) as error:
        # ValueError: the peer spoke, but not JSON — probably not a broker.
        sock.close()
        raise ExecutionError(
            f"broker at {host}:{port} did not complete the JSON handshake: "
            f"{describe_error(error)}"
        )
    if isinstance(welcome, dict) and welcome.get("type") == "reject":
        sock.close()
        raise ExecutionError(
            f"broker at {host}:{port} rejected worker {name!r}: "
            f"{welcome.get('reason') or 'unauthorized'}"
        )
    try:
        if welcome is None or welcome["type"] != "welcome":
            raise KeyError("welcome")  # repro: noqa[ERR001] -- control flow: caught two lines down and converted to ExecutionError
        lease = float(welcome.get("lease_seconds") or DEFAULT_LEASE_SECONDS)
    except (KeyError, TypeError, ValueError):
        sock.close()
        raise ExecutionError(
            f"broker at {host}:{port} rejected the handshake "
            f"(reply {welcome!r})"
        )
    assigned = str(welcome.get("worker") or name)
    return sock, reader, write_lock, lease, assigned


def _redial(
    host: str,
    port: int,
    name: str,
    redial_seconds: Optional[float],
    stop: threading.Event,
    token: Optional[str] = None,
) -> Optional[Tuple[socket.socket, Any, threading.Lock, float, str]]:
    """Try to rejoin a (journaled, restarting) broker after losing it idle.

    Jittered-backoff attempts until ``redial_seconds`` elapse; returns a
    fresh handshake tuple, or None when the deadline expires, redial is
    disabled (None/0 — the historical drain-immediately behavior), or a
    SIGTERM arrives mid-redial.
    """
    if not redial_seconds:
        return None
    deadline = time.monotonic() + redial_seconds
    delays = backoff_delays(0.1, 2.0)
    while not stop.is_set():
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return None
        try:
            return _handshake(
                host, port, name, connect_timeout=min(remaining, 2.0),
                token=token,
            )
        except (OSError, ExecutionError):
            pass  # still down (or mid-restart); back off and retry
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return None
        stop.wait(min(next(delays), remaining))
    return None


def _heartbeat_loop(
    sock: socket.socket,
    write_lock: threading.Lock,
    task_id: Union[int, str],
    interval: float,
    stop: threading.Event,
) -> None:
    while not stop.wait(interval):
        try:
            _send(sock, write_lock, {"type": "heartbeat", "task": task_id})
        except OSError:
            return  # broker went away; the main loop will notice


def _execute_task(
    sock: socket.socket,
    write_lock: threading.Lock,
    task_id: Union[int, str],
    payload: Dict[str, Any],
    checkpoint_every: Optional[int],
    checkpoint_doc: Optional[Dict[str, Any]],
    stop_requested: threading.Event,
) -> Dict[str, Any]:
    """Execute one assigned spec: sliced, resumable, checkpoint-shipping.

    The checkpointed sibling of :func:`~repro.runner.executor._execute_payload`
    — spec dict in, result dict out — plus mid-spec resume from a shipped
    checkpoint, periodic ``checkpoint`` messages back to the broker, and
    cooperative preemption (:class:`~repro.snapshot.ExecutionPreempted`
    propagates to the caller, which turns it into a ``release``).
    """
    from repro.errors import SnapshotError
    from repro.snapshot import (
        execute_with_checkpoints,
        parse_document,
        snapshot_document,
    )

    spec = RunSpec.from_dict(payload)
    resume_from = None
    if checkpoint_doc is not None:
        try:
            resume_from = parse_document(
                checkpoint_doc, source=f"task {task_id} checkpoint"
            )
        except SnapshotError:
            resume_from = None  # corrupt in flight; run from scratch instead

    def ship(snapshot: Any) -> None:
        _send(sock, write_lock, {
            "type": "checkpoint", "task": task_id,
            "snapshot": snapshot_document(snapshot),
        })

    result = execute_with_checkpoints(
        spec,
        checkpoint_every=checkpoint_every,
        resume_from=resume_from,
        should_stop=stop_requested.is_set,
        on_checkpoint=ship if checkpoint_every is not None else None,
    )
    return result.to_dict()


def run_worker(
    host: str,
    port: int,
    heartbeat: Optional[float] = None,
    max_tasks: Optional[int] = None,
    fault: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    redial: Optional[float] = None,
    token: Optional[str] = None,
) -> int:
    """Pull specs from the broker at ``(host, port)`` until it drains.

    Returns the number of specs completed.  ``fault`` (or the
    :data:`FAULT_ENV` environment variable) injects worker-level failures for
    tests and chaos drills: ``exit-on-task`` kills the process the moment a
    task is assigned (a crash holding a lease), ``error-on-task`` reports
    every task as failed without running it.

    Specs run in event slices, so the worker stays responsive: a SIGTERM
    mid-spec stops the simulation at the next slice boundary, ships the
    final snapshot in a ``release`` message (clean lease return — no attempt
    burned, no exclusion), and exits 0.  ``checkpoint_every`` (usually
    pushed per task by a checkpointing broker; the argument is a local
    default) additionally ships a ``checkpoint`` every N events, and an
    assignment carrying a prior checkpoint is resumed from it.

    ``redial`` opts into riding out broker outages: a worker that loses the
    broker while *idle* redials with jittered backoff for up to that many
    seconds (rejoining under the same worker name, so exclusions stick)
    before treating the loss as a drain.  The default (None/0) keeps the
    historical behavior — an idle worker whose broker vanishes exits 0
    immediately, which is correct for non-journaled brokers that can never
    come back.  Losing the broker *while holding a task* stays a nonzero
    exit either way: completed work was lost and a supervisor should know.
    """
    import signal

    fault = fault or os.environ.get(FAULT_ENV) or None
    if fault is not None and fault not in WORKER_FAULTS:
        raise ConfigurationError(
            f"unknown worker fault {fault!r}; choices: {list(WORKER_FAULTS)}"
        )
    if heartbeat is not None and heartbeat <= 0:
        raise ConfigurationError("heartbeat interval must be positive seconds")
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ConfigurationError("checkpoint_every must be a positive event count")
    if redial is not None and redial < 0:
        raise ConfigurationError("redial must be >= 0 seconds")
    stop_requested = threading.Event()
    # Signal handlers are a main-thread-only privilege; tests drive
    # run_worker from helper threads, where SIGTERM keeps its default
    # disposition and preemption is exercised via the event directly.
    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, lambda signum, frame: stop_requested.set())
    name = worker_id()
    # Adopt the broker-assigned name: a collision-suffixed unique name keeps
    # this worker's stats and exclusions separate from a same-named twin.
    sock, reader, write_lock, lease, name = _handshake(
        host, port, name, token=token
    )
    interval = heartbeat if heartbeat is not None else max(0.05, lease / 3.0)
    completed = 0
    try:
        while True:
            if stop_requested.is_set():
                break  # SIGTERM between tasks: nothing leased, just leave
            reply = None
            try:
                _send(sock, write_lock, {"type": "next"})
                reply = _read(reader)
            except OSError:
                pass  # connection error: same broker-gone case as the EOF
            except ValueError as error:
                raise ExecutionError(
                    f"protocol error from broker at {host}:{port}: "
                    f"{describe_error(error)}"
                )
            if reply is None:
                # Broker gone (EOF or error) while we hold no task — a
                # SIGKILL'd broker usually reads as a clean EOF, exactly like
                # a drained sweep host closing up.  With redial enabled
                # (journaled brokers restart), try to rejoin first; only a
                # failed redial — or none configured — is treated as the
                # drain it is indistinguishable from, and nothing is lost.
                rejoined = _redial(
                    host, port, name, redial, stop_requested, token=token
                )
                if rejoined is None:
                    break
                sock.close()
                sock, reader, write_lock, lease, name = rejoined
                if heartbeat is None:
                    interval = max(0.05, lease / 3.0)
                continue
            try:
                reply_type = reply["type"]
                if reply_type == "drain":
                    break
                if reply_type == "idle":
                    time.sleep(float(reply.get("delay", 0.1)))
                    continue
                if reply_type != "task":
                    raise KeyError(reply_type)  # repro: noqa[ERR001] -- control flow: caught by the reply loop and retried as a protocol error
                # Task ids are opaque to the worker and echoed verbatim: the
                # sweep broker uses grid positions (ints), the multi-tenant
                # service uses "job-id/position" strings.
                task_id = reply["task"]
                if not isinstance(task_id, (int, str)):
                    raise TypeError("task")  # repro: noqa[ERR001] -- control flow: caught by the reply-shape handler below and converted to ExecutionError
                spec_payload = reply["payload"]
                task_every = reply.get("checkpoint_every", checkpoint_every)
                task_every = int(task_every) if task_every is not None else None
                task_checkpoint = reply.get("checkpoint")
            except (KeyError, TypeError, ValueError) as error:
                # Valid JSON, wrong shape: a version-skewed broker or some
                # other JSON-lines service entirely.
                raise ExecutionError(
                    f"protocol error from broker at {host}:{port}: "
                    f"unexpected reply {reply!r} ({describe_error(error)})"
                )
            if fault == "exit-on-task":
                os._exit(3)  # simulate a hard crash while holding the lease
            stop = threading.Event()
            beat = threading.Thread(
                target=_heartbeat_loop,
                args=(sock, write_lock, task_id, interval, stop),
                daemon=True,
            )
            beat.start()
            try:
                if fault == "error-on-task":
                    raise ExecutionError("injected worker fault (error-on-task)")
                report: Dict[str, Any] = {
                    "type": "result", "task": task_id,
                    "result": _execute_task(
                        sock, write_lock, task_id, spec_payload,
                        task_every, task_checkpoint, stop_requested,
                    ),
                }
            except Exception as error:  # noqa: BLE001 - reported to the broker
                from repro.snapshot import ExecutionPreempted, snapshot_document

                if isinstance(error, ExecutionPreempted):
                    # SIGTERM mid-spec: return the lease cleanly with the
                    # final snapshot so the replacement resumes mid-spec.
                    report = {
                        "type": "release", "task": task_id,
                        "snapshot": snapshot_document(error.snapshot),
                    }
                else:
                    report = {
                        "type": "error", "task": task_id,
                        "error": describe_error(error),
                    }
            finally:
                stop.set()
                beat.join()
            try:
                _send(sock, write_lock, report)
            except OSError as error:
                # Losing the broker *while holding a task* is abnormal: the
                # completed work is lost and a supervisor should know.  A
                # straggler whose task was meanwhile completed elsewhere and
                # whose sweep already drained hits this too — the worker
                # cannot tell the two apart, and under-reporting lost work
                # is the worse failure mode, so it exits nonzero either way.
                raise ExecutionError(
                    f"connection to broker lost while reporting task "
                    f"{task_id}: {describe_error(error)}"
                )
            if report["type"] == "result":
                completed += 1
            if report["type"] == "release":
                break  # preempted: the lease is returned, exit cleanly
            if max_tasks is not None and completed >= max_tasks:
                break
    finally:
        sock.close()
    return completed


# ---------------------------------------------------------------------------
# Local cluster harness
# ---------------------------------------------------------------------------
class LocalCluster:
    """Broker-facing fleet of ``repro worker`` subprocesses on this host.

    The test/CI harness for the real wire path: each worker is a genuine
    ``python -m repro worker --connect`` process, so everything — handshake,
    leases, heartbeats, retry, drain — is exercised over actual sockets.
    ``faults`` injects a per-worker :data:`FAULT_ENV` mode (None = healthy).
    """

    def __init__(
        self,
        host: str,
        port: int,
        workers: int,
        faults: Optional[Sequence[Optional[str]]] = None,
        heartbeat: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("LocalCluster needs at least one worker")
        env = os.environ.copy()
        src = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
        )
        command = [sys.executable, "-m", "repro", "worker",
                   "--connect", f"{host}:{port}"]
        if heartbeat is not None:
            command += ["--heartbeat", str(heartbeat)]
        self.procs: List[subprocess.Popen] = []
        for index in range(workers):
            worker_env = dict(env)
            fault = faults[index] if faults and index < len(faults) else None
            if fault:
                worker_env[FAULT_ENV] = fault
            self.procs.append(
                subprocess.Popen(command, env=worker_env,
                                 stdout=subprocess.DEVNULL)
            )

    def alive_count(self) -> int:
        return sum(1 for proc in self.procs if proc.poll() is None)

    def kill(self, index: int) -> None:
        """SIGKILL one worker (fault drills)."""
        self.procs[index].kill()
        self.procs[index].wait()

    def close(self, timeout: float = 5.0) -> None:
        """Wait briefly for workers to drain, then terminate stragglers."""
        deadline = time.monotonic() + timeout
        for proc in self.procs:
            if proc.poll() is None:
                try:
                    proc.wait(timeout=max(0.1, deadline - time.monotonic()))
                except subprocess.TimeoutExpired:
                    proc.terminate()
                    try:
                        proc.wait(timeout=2.0)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------
def _announce_default(host: str, port: int) -> None:
    # A wildcard bind address is not dialable: tell remote operators to use
    # this machine's name instead of a copy-pasteable-but-wrong 0.0.0.0.
    reach = socket.gethostname() if host in ("", "0.0.0.0", "::") else host
    print(
        f"broker listening on {host}:{port}; join workers with: "
        f"python -m repro worker --connect {reach}:{port}",
        file=sys.stderr,
        flush=True,
    )


class DistributedExecutor(_ExecutorBase):
    """Run specs through a TCP broker feeding pull-based ``repro worker``s.

    Implements the ``run_iter`` completion-order contract, so it drops into
    ``Runner`` (cache, ``SpecProgress`` streaming, ``--progress``) exactly
    like the serial and process-pool executors.  Per-spec failures are
    retried up to ``max_attempts`` assignments with the crashed/timed-out
    worker excluded; specs that still fail surface as one
    :class:`~repro.errors.ExecutionError` *after* every successful result has
    been yielded.  ``last_stats`` holds the final broker counters of the most
    recent sweep (assigned/completed/failed/requeued/expired/...).
    """

    def __init__(
        self,
        workers: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        heartbeat: Optional[float] = None,
        faults: Optional[Sequence[Optional[str]]] = None,
        announce: Optional[Callable[[str, int], None]] = None,
        external: Optional[bool] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        journal_dir: Optional[str] = None,
        spec_deadline: Optional[float] = None,
        sweep_deadline: Optional[float] = None,
        redial: Optional[float] = None,
    ) -> None:
        if workers < 0:
            raise ConfigurationError("workers must be >= 0 (0 = external workers)")
        if heartbeat is not None and heartbeat <= 0:
            raise ConfigurationError("heartbeat interval must be positive seconds")
        self.workers = workers
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = checkpoint_dir
        self.journal_dir = journal_dir
        self.spec_deadline = spec_deadline
        self.sweep_deadline = sweep_deadline
        self.redial = redial
        self.host = host
        self.port = port
        #: Whether external workers are expected to join: announce the broker
        #: address and never abort on a dead local cluster.  Defaults to
        #: "no local workers, or a non-ephemeral port was requested"; pass
        #: explicitly for an ephemeral --bind (HOST:0) with local workers.
        self.external = external if external is not None else (
            workers == 0 or port != 0
        )
        self.lease_seconds = lease_seconds
        self.max_attempts = max_attempts
        self.heartbeat = heartbeat
        self.faults = faults
        self.announce = announce
        self.last_stats: Optional[Dict[str, int]] = None

    def run_iter(
        self, specs: Sequence[RunSpec]
    ) -> Iterator[Tuple[int, SimResult]]:
        if not specs:
            return
        payloads = [spec.to_dict() for spec in specs]
        broker = Broker(
            payloads,
            host=self.host,
            port=self.port,
            lease_seconds=self.lease_seconds,
            max_attempts=self.max_attempts,
            checkpoint_every=self.checkpoint_every,
            checkpoint_dir=self.checkpoint_dir,
            journal_dir=self.journal_dir,
            spec_deadline_seconds=self.spec_deadline,
            sweep_deadline_seconds=self.sweep_deadline,
        ).start()
        cluster: Optional[WorkerSupervisor] = None
        failures: List[Tuple[int, str]] = []
        try:
            if self.workers:
                # Supervised, not fire-and-forget: a healthy worker that
                # crashes is respawned (jittered backoff, circuit breaker);
                # fault-injected slots stay down, as the drills require.
                cluster = WorkerSupervisor(
                    connect_host(broker.host), broker.port, self.workers,
                    faults=self.faults, heartbeat=self.heartbeat,
                    redial=self.redial,
                )
            if self.external:
                # External workers are expected: tell them where to join.
                (self.announce or _announce_default)(broker.host, broker.port)

            def watchdog() -> None:
                # Abort only in pure-local mode (owned pool, no external
                # joiners expected): there, a pool that gave up — every slot
                # drained, abandoned, or circuit-broken, none awaiting
                # respawn — means nobody can ever serve the sweep.  With
                # external workers expected — present, or still to come —
                # the sweep must keep waiting.
                if (
                    cluster is not None
                    and not self.external
                    and cluster.gave_up()
                    and broker.worker_count() == 0
                ):
                    broker.abort(
                        "every local worker process has exited "
                        "and no external workers are connected"
                    )

            for kind, position, payload in broker.events(poll=watchdog):
                if kind == "result":
                    yield position, payload
                else:
                    failures.append((position, payload))
        finally:
            if cluster is not None:
                cluster.close()
            broker.close()
            self.last_stats = dict(broker.stats)
        if failures:
            timed_out_at = broker.timed_out_positions()
            timed_out = [
                (specs[position], reason)
                for position, reason in failures if position in timed_out_at
            ]
            plain = [
                (specs[position], reason)
                for position, reason in failures if position not in timed_out_at
            ]
            if timed_out:
                raise partial_sweep_error(plain, timed_out, len(specs))
            raise failures_error(plain, len(specs))
