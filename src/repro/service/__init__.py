"""Multi-tenant sweep service: named job queues over one shared worker pool.

``repro serve`` runs a persistent daemon that accepts SweepSpec jobs over
an HTTP/JSON API, schedules their specs fairly across every connected
``repro worker`` process, short-circuits specs already present in the
service result cache, and journals every transition so a SIGKILL'd daemon
resumes its jobs on restart.  See ``README.md`` ("Sweep service") for the
operational guide.
"""

from repro.service.daemon import ServiceBroker, SweepService, run_service
from repro.service.jobstore import (
    JOB_CANCELLED,
    JOB_COMPLETED,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    TERMINAL_JOB_STATES,
    Job,
    JobStore,
    format_task_id,
    parse_task_id,
)
from repro.service.httpapi import ServiceHTTPServer
from repro.service.scheduler import STRIDE_SCALE, FairShareScheduler

__all__ = [
    "JOB_CANCELLED",
    "JOB_COMPLETED",
    "JOB_FAILED",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "STRIDE_SCALE",
    "TERMINAL_JOB_STATES",
    "FairShareScheduler",
    "Job",
    "JobStore",
    "ServiceBroker",
    "ServiceHTTPServer",
    "SweepService",
    "format_task_id",
    "parse_task_id",
    "run_service",
]
