"""Multi-tenant job state for the sweep service.

A *job* is one submitted :class:`~repro.runner.spec.SweepSpec`: a named,
prioritized batch of specs sharing the service's worker pool with every
other live job.  :class:`JobStore` owns all job and task state under one
lock, reusing the single-sweep broker's task model and journal kinds
(:mod:`repro.runner.distributed` / :mod:`repro.runner.journal`) scoped per
job:

* **fair-share assignment** across jobs via
  :class:`~repro.service.scheduler.FairShareScheduler` — deterministic
  stride interleaving weighted by per-job priority;
* **per-job retry budgets and worker exclusions** — one tenant's crashing
  specs never exclude workers from another tenant's job;
* **broker-side cache short-circuit** — a submitted spec whose sha256
  :meth:`~repro.runner.spec.RunSpec.key` is already in the service's
  :class:`~repro.runner.cache.ResultCache` completes instantly, never
  reaching a worker (``stats["short_circuited"]``);
* **cross-job coalescing** — a spec already in flight for another job is
  not queued twice; followers adopt the head's result on completion
  (``stats["coalesced"]``), and a failed or cancelled head promotes the
  next follower with its *own* job's fresh attempt budget;
* **cancellation** — queued specs are dropped immediately, leased specs
  are refunded exactly once (``stats["refunded"]``) and go terminal; a
  straggler worker's late result is still banked in the cache and
  completes any successor chain for the key;
* **durability** — every transition is written ahead to a
  :class:`~repro.runner.journal.ServiceJournal`, so a SIGKILL'd daemon
  restarted on the same ``--journal``/``--cache`` directories resumes
  every live job (see :meth:`JobStore.recover`).
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError, ServiceError
from repro.machine.results import SimResult
from repro.runner.cache import ResultCache
from repro.runner.distributed import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_MAX_ATTEMPTS,
    _DONE,
    _FAILED,
    _LEASED,
    _READY,
    _Task,
    claim_worker_name,
)
from repro.runner.executor import describe_error
from repro.runner.journal import ServiceJournal, TaskReplay
from repro.runner.spec import RunSpec, SweepSpec
from repro.service.scheduler import FairShareScheduler

#: Job lifecycle states (the ``state`` field of every job summary).
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_COMPLETED = "completed"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"

#: Task state for specs dropped by a job cancellation (extends the broker's
#: ready/leased/done/failed vocabulary; terminal like done/failed).
_CANCELLED = "cancelled"

_TERMINAL_TASK_STATES = (_DONE, _FAILED, _CANCELLED)
TERMINAL_JOB_STATES = (JOB_COMPLETED, JOB_FAILED, JOB_CANCELLED)


def format_task_id(job_id: str, position: int) -> str:
    """Wire task id: ``<job-id>/<position>`` (workers echo it opaquely)."""
    return f"{job_id}/{position}"


def parse_task_id(task_id: Any) -> Optional[Tuple[str, int]]:
    """Parse a wire task id back into ``(job_id, position)``; None if foreign."""
    if not isinstance(task_id, str):
        return None
    job_id, separator, position = task_id.rpartition("/")
    if not separator or not job_id or not position.isdigit():
        return None
    return job_id, int(position)


class Job:
    """One tenant's submitted sweep: tasks, queue, results, counters."""

    def __init__(
        self, job_id: str, name: str, priority: int, sweep: SweepSpec
    ) -> None:
        self.job_id = job_id
        self.name = name
        self.priority = priority
        self.sweep = sweep
        self.state = JOB_QUEUED
        self.tasks: List[_Task] = []
        for position, spec in enumerate(sweep.specs):
            task = _Task(position, spec.to_dict())
            task.key = spec.key()
            self.tasks.append(task)
        #: Positions ready for assignment (excludes coalesced followers).
        self.ready: Deque[int] = deque()
        self.outstanding = len(self.tasks)
        self.results: Dict[int, SimResult] = {}
        self.failures: Dict[int, str] = {}
        #: Positions answered from the result cache (never reached a worker).
        self.cached: Set[int] = set()
        self.short_circuited = 0
        self.coalesced = 0
        self.refunded = 0
        # Host-side wall clock for display only; service/ is outside the
        # sim-core packages, so DET001's path scope exempts it.
        self.created_at = time.time()
        self.finished_at: Optional[float] = None

    def counts(self) -> Dict[str, int]:
        counts = {"pending": 0, "leased": 0, "done": 0,
                  "failed": 0, "cancelled": 0}
        for task in self.tasks:
            if task.state == _READY:
                counts["pending"] += 1
            elif task.state == _LEASED:
                counts["leased"] += 1
            elif task.state == _DONE:
                counts["done"] += 1
            elif task.state == _FAILED:
                counts["failed"] += 1
            else:
                counts["cancelled"] += 1
        return counts

    def summary(self) -> Dict[str, Any]:
        counts = self.counts()
        return {
            "job": self.job_id,
            "name": self.name,
            "state": self.state,
            "priority": self.priority,
            "total": len(self.tasks),
            "pending": counts["pending"],
            "leased": counts["leased"],
            "done": counts["done"],
            "failed": counts["failed"],
            "cancelled": counts["cancelled"],
            "short_circuited": self.short_circuited,
            "coalesced": self.coalesced,
            "refunded": self.refunded,
            "created_at": self.created_at,
            "finished_at": self.finished_at,
        }

    def detail(self) -> Dict[str, Any]:
        payload = self.summary()
        payload["specs"] = [
            {
                "position": task.position,
                "spec": task.payload,
                "state": task.state,
                "attempts": task.attempts,
                "cached": task.position in self.cached,
                "errors": list(task.errors),
            }
            for task in self.tasks
        ]
        return payload

    def results_payload(self) -> Dict[str, Any]:
        """SweepResult-shaped document for ``GET /jobs/<id>/results``."""
        runs = [
            {
                "spec": self.tasks[position].payload,
                "result": self.results[position].to_dict(),
                "cached": position in self.cached,
            }
            for position in sorted(self.results)
        ]
        failures = [
            {"spec": self.tasks[position].payload, "reason": reason}
            for position, reason in sorted(self.failures.items())
        ]
        return {
            "job": self.job_id,
            "name": self.name,
            "state": self.state,
            "sweep": self.sweep.name,
            "total": len(self.tasks),
            "runs": runs,
            "failures": failures,
        }


class JobStore:
    """All job/task state of one sweep service, under one lock.

    The TCP plane (:class:`~repro.service.daemon.ServiceBroker`) calls
    :meth:`claim_worker` / :meth:`assign` / :meth:`complete` /
    :meth:`error` / :meth:`heartbeat` / :meth:`checkpoint` /
    :meth:`release` / :meth:`drop_worker`; the HTTP plane calls
    :meth:`submit` / :meth:`cancel` and the query methods; the daemon's
    monitor thread calls :meth:`expire_leases`.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        journal: Optional[ServiceJournal] = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        checkpoint_every: Optional[int] = None,
    ) -> None:
        if lease_seconds <= 0:
            raise ConfigurationError("lease_seconds must be positive")
        if max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ConfigurationError(
                "checkpoint_every must be a positive event count"
            )
        self.cache = cache
        self.lease_seconds = lease_seconds
        self.max_attempts = max_attempts
        self.checkpoint_every = checkpoint_every
        self._journal = journal
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}  # insertion order = submission order
        self._scheduler = FairShareScheduler()
        #: Spec key -> [(job_id, position), ...]: the head entry is the one
        #: queued/leased copy of the spec; the rest are coalesced followers.
        self._inflight: Dict[str, List[Tuple[str, int]]] = {}
        self._workers: Set[str] = set()
        self._counter = 0
        self.stats: Dict[str, int] = {
            "jobs_submitted": 0, "jobs_completed": 0, "jobs_failed": 0,
            "jobs_cancelled": 0, "assigned": 0, "completed": 0, "failed": 0,
            "requeued": 0, "expired": 0, "disconnects": 0, "duplicates": 0,
            "checkpoints": 0, "released": 0, "resumed": 0, "replayed": 0,
            "short_circuited": 0, "coalesced": 0, "refunded": 0,
        }

    # ------------------------------------------------------------- journal
    def _journal_append(self, record: Dict[str, Any]) -> None:
        """Durably log one transition; disk trouble degrades to no journal."""
        if self._journal is None:
            return
        try:
            self._journal.append(record)
        except OSError as error:
            import warnings

            from repro.runner.journal import JournalWarning

            warnings.warn(
                f"service journal write failed ({error}); continuing without "
                f"crash recovery",
                JournalWarning,
                stacklevel=2,
            )
            try:
                self._journal.close()
            finally:
                self._journal = None

    def close_journal(self) -> None:
        if self._journal is not None:
            self._journal.close()

    # ------------------------------------------------------------ recovery
    def recover(self) -> int:
        """Re-submit every job the journal proves existed; returns the count.

        Runs before the listeners start.  Jobs come back in submission
        order with their replayed task states — finished specs re-emit,
        attempts/exclusions stick, in-flight leases are refunded — and
        cancelled jobs are re-cancelled so their queued specs stay dropped.
        Nothing is re-journaled: the journal already holds these records.
        """
        if self._journal is None:
            return 0
        recovered = 0
        for job_id, replay in self._journal.replay_jobs().items():
            if replay.sweep is None:
                continue  # submission record torn or foreign; cannot rebuild
            try:
                sweep = SweepSpec.from_dict(replay.sweep)
            except Exception:  # noqa: BLE001 - foreign/corrupt payload
                continue
            self.submit(
                sweep,
                name=replay.name,
                priority=replay.priority,
                job_id=job_id,
                replay=replay.tasks,
                record=False,
            )
            if replay.cancelled:
                self.cancel(job_id, record=False)
            recovered += 1
        return recovered

    # ------------------------------------------------------------- workers
    def claim_worker(self, requested: str) -> str:
        with self._lock:
            worker = claim_worker_name(requested, self._workers)
            self._workers.add(worker)
            return worker

    def drop_worker(self, worker: str) -> None:
        """Forget a disconnected worker and requeue everything it leased."""
        with self._lock:
            self._workers.discard(worker)
            for job in self._jobs.values():
                for task in job.tasks:
                    if task.state == _LEASED and task.worker == worker:
                        self.stats["disconnects"] += 1
                        self._requeue_or_fail_locked(
                            job, task,
                            f"worker {worker} disconnected mid-spec",
                            exclude=True,
                        )

    def worker_count(self) -> int:
        with self._lock:
            return len(self._workers)

    # ------------------------------------------------------------ submission
    def submit(
        self,
        sweep: SweepSpec,
        name: Optional[str] = None,
        priority: int = 1,
        job_id: Optional[str] = None,
        replay: Optional[Dict[str, TaskReplay]] = None,
        record: bool = True,
    ) -> Dict[str, Any]:
        """Register a sweep as a new job; returns its summary.

        Per spec, in order: a journal-replayed terminal state wins, then the
        result-cache short-circuit, then coalescing onto an identical spec
        already in flight for another job, then the job's ready queue.
        """
        if not isinstance(priority, int) or priority < 1:
            raise ConfigurationError(
                f"job priority must be a positive integer, got {priority!r}"
            )
        if not sweep.specs:
            # Usually a malformed submission (a grid-style dict where
            # SweepSpec.from_dict expected {"name", "specs"}): rejecting it
            # beats registering a job that silently "completes" with 0 runs.
            raise ConfigurationError(
                f"sweep {sweep.name!r} has no specs; nothing to run"
            )
        with self._lock:
            if job_id is None:
                job_id = f"job-{self._counter:04d}-{uuid.uuid4().hex[:6]}"
            if job_id in self._jobs:
                raise ServiceError(f"job id {job_id!r} is already registered")
            self._counter += 1
            job = Job(job_id, name or sweep.name, priority, sweep)
            if record:
                self._journal_append({
                    "kind": "job-submitted", "job": job_id, "name": job.name,
                    "priority": priority, "sweep": sweep.to_dict(),
                })
            self._jobs[job_id] = job
            self._scheduler.add(job_id, priority)
            self.stats["jobs_submitted"] += 1
            for position, spec in enumerate(sweep.specs):
                self._place_task_locked(job, position, spec, replay)
            self._maybe_finish_job_locked(job)
            return job.summary()

    def _place_task_locked(
        self,
        job: Job,
        position: int,
        spec: RunSpec,
        replay: Optional[Dict[str, TaskReplay]],
    ) -> None:
        task = job.tasks[position]
        state = replay.get(task.key) if replay else None
        if state is not None:
            if state.result is not None:
                try:
                    parsed = SimResult.from_dict(state.result)
                except Exception:  # noqa: BLE001 - foreign/corrupt payload
                    state = None  # treat as never-run rather than crash
                else:
                    self.stats["replayed"] += 1
                    self._finish_task_locked(
                        job, task, _DONE, parsed, journal=False
                    )
                    return
            if state is not None and state.failed:
                task.errors = list(state.errors)
                self._finish_task_locked(job, task, _FAILED, journal=False)
                return
            if state is not None:
                task.attempts = state.settled_attempts()
                task.excluded = set(state.excluded)
                task.errors = list(state.errors)
                if state.checkpoint is not None:
                    snapshot = self._parse_checkpoint(spec, state.checkpoint)
                    if snapshot is not None:
                        task.checkpoint = snapshot
                        self.stats["replayed"] += 1
        if self.cache is not None and self.cache.contains(task.key):
            cached = self.cache.get(spec)  # corrupt/stale entries evict here
            if cached is not None:
                job.cached.add(position)
                job.short_circuited += 1
                self.stats["short_circuited"] += 1
                # Not journaled and not re-banked: on restart the cache entry
                # itself re-answers the spec, no record needed.
                self._finish_task_locked(
                    job, task, _DONE, cached, journal=False, bank=False
                )
                return
        chain = self._inflight.get(task.key)
        if chain is not None:
            chain.append((job.job_id, position))
            job.coalesced += 1
            self.stats["coalesced"] += 1
            return  # follower: stays ready but never queued itself
        self._inflight[task.key] = [(job.job_id, position)]
        job.ready.append(position)

    # ---------------------------------------------------------- assignment
    def assign(self, worker: str) -> Dict[str, Any]:
        """Next wire message for an idle worker: a task, or an idle nudge.

        Jobs are tried in fair-share order; within a job, specs go out in
        queue order, skipping any that exclude this worker.  Only the job
        that actually receives the slot is charged.  The service never
        drains workers — it outlives any one job — so an empty store
        answers ``idle``, and pools are expected to run with ``--redial``.
        """
        with self._lock:
            order = self._scheduler.order(
                job_id for job_id, job in self._jobs.items() if job.ready
            )
            chosen: Optional[Tuple[Job, int]] = None
            for job_id in order:
                job = self._jobs[job_id]
                for position in job.ready:
                    if worker not in job.tasks[position].excluded:
                        chosen = (job, position)
                        break
                if chosen is not None:
                    break
            if chosen is None:
                # Exclusion is best-effort, as in the single-sweep broker: a
                # spec that excludes every connected worker has nobody left
                # to serve it — retrying beats wedging the job forever.
                for job_id in order:
                    job = self._jobs[job_id]
                    for position in job.ready:
                        if self._workers <= job.tasks[position].excluded:
                            chosen = (job, position)
                            break
                    if chosen is not None:
                        break
            if chosen is None:
                return {"type": "idle", "delay": 0.05}
            job, position = chosen
            job.ready.remove(position)
            task = job.tasks[position]
            task.state = _LEASED
            task.worker = worker
            task.attempts += 1
            now = time.monotonic()
            if task.first_assigned is None:
                task.first_assigned = now
            task.deadline = now + self.lease_seconds
            if job.state == JOB_QUEUED:
                job.state = JOB_RUNNING
            self._scheduler.charge(job.job_id)
            self.stats["assigned"] += 1
            self._journal_append({
                "kind": "assigned", "job": job.job_id, "key": task.key,
                "worker": worker,
            })
            message = {
                "type": "task",
                "task": format_task_id(job.job_id, position),
                "payload": task.payload,
            }
            if self.checkpoint_every is not None:
                message["checkpoint_every"] = self.checkpoint_every
            if task.checkpoint is not None:
                from repro.snapshot import snapshot_document

                message["checkpoint"] = snapshot_document(task.checkpoint)
                self.stats["resumed"] += 1
            return message

    # ------------------------------------------------------- worker reports
    def heartbeat(self, job_id: str, position: int, worker: str) -> None:
        with self._lock:
            task = self._task_locked(job_id, position)
            if task is not None and task.state == _LEASED and task.worker == worker:
                task.deadline = time.monotonic() + self.lease_seconds

    def complete(
        self, job_id: str, position: int, worker: str, result: Any
    ) -> None:
        try:
            parsed = SimResult.from_dict(result)
        except Exception as error:  # noqa: BLE001 - arbitrary payloads
            self.error(
                job_id, position, worker,
                f"worker returned an invalid result payload: "
                f"{describe_error(error)}",
            )
            return
        with self._lock:
            job = self._jobs.get(job_id)
            task = self._task_locked(job_id, position)
            if job is None or task is None:
                return
            if task.state in _TERMINAL_TASK_STATES:
                # Late result after reassignment, expiry, or cancellation.
                # The work is real: bank it in the cache and complete any
                # successor chain that re-runs the same spec key.
                self.stats["duplicates"] += 1
                self._bank_result_locked(task, parsed)
                self._complete_chain_head_locked(task.key, parsed)
                return
            if task.state == _READY:
                # Expired lease, but the original worker finished after all.
                try:
                    job.ready.remove(position)
                except ValueError:
                    return  # a coalesced follower never leases; drop it
            task.checkpoint = None
            self._finish_task_locked(job, task, _DONE, parsed)

    def error(
        self, job_id: str, position: int, worker: str, reason: str
    ) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            task = self._task_locked(job_id, position)
            if job is None or task is None:
                return
            if task.state != _LEASED or task.worker != worker:
                return  # stale report from a lease that already expired
            self._requeue_or_fail_locked(job, task, reason, exclude=True)

    def checkpoint(
        self, job_id: str, position: int, worker: str, document: Any
    ) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            task = self._task_locked(job_id, position)
        if job is None or task is None:
            return
        snapshot = self._parse_checkpoint(
            RunSpec.from_dict(task.payload), document
        )
        if snapshot is None:
            return
        with self._lock:
            if task.state != _LEASED or task.worker != worker:
                return  # stale shipment from an expired lease
            task.checkpoint = snapshot
            # A checkpoint proves liveness as well as any heartbeat.
            task.deadline = time.monotonic() + self.lease_seconds
            self.stats["checkpoints"] += 1
            self._journal_append({
                "kind": "checkpointed", "job": job_id, "key": task.key,
                "snapshot": document,
            })

    def release(
        self, job_id: str, position: int, worker: str, document: Any
    ) -> None:
        """Clean mid-spec lease return: attempt refunded, nobody excluded."""
        with self._lock:
            job = self._jobs.get(job_id)
            task = self._task_locked(job_id, position)
        if job is None or task is None:
            return
        snapshot = (
            self._parse_checkpoint(RunSpec.from_dict(task.payload), document)
            if document else None
        )
        with self._lock:
            if task.state != _LEASED or task.worker != worker:
                return
            if snapshot is not None:
                task.checkpoint = snapshot
                self._journal_append({
                    "kind": "checkpointed", "job": job_id, "key": task.key,
                    "snapshot": document,
                })
            task.attempts -= 1
            task.state = _READY
            task.worker = None
            job.ready.append(position)
            self.stats["released"] += 1
            self._journal_append({
                "kind": "released", "job": job_id, "key": task.key,
            })

    def expire_leases(self) -> None:
        """Requeue every lease whose deadline passed (monitor-thread hook)."""
        now = time.monotonic()
        with self._lock:
            for job in self._jobs.values():
                for task in job.tasks:
                    if task.state == _LEASED and task.deadline < now:
                        self.stats["expired"] += 1
                        self._requeue_or_fail_locked(
                            job, task,
                            f"lease expired on worker {task.worker} "
                            f"(no heartbeat for {self.lease_seconds}s)",
                            exclude=True,
                        )

    # -------------------------------------------------------- cancellation
    def cancel(self, job_id: str, record: bool = True) -> Optional[Dict[str, Any]]:
        """Cancel a live job; returns its summary, or None when it cannot be.

        Queued specs are dropped on the spot; each *leased* spec is refunded
        exactly once and goes terminal immediately — its straggler worker's
        eventual report is ignored for this job (though a valid result is
        still banked in the cache and completes any successor chain).
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state in TERMINAL_JOB_STATES:
                return None
            job.state = JOB_CANCELLED
            job.finished_at = time.time()
            if record:
                self._journal_append({"kind": "job-cancelled", "job": job_id})
            self._scheduler.remove(job_id)
            self.stats["jobs_cancelled"] += 1
            for task in job.tasks:
                if task.state == _READY:
                    try:
                        job.ready.remove(task.position)
                    except ValueError:
                        pass  # coalesced follower: not queued itself
                    self._finish_task_locked(job, task, _CANCELLED)
                elif task.state == _LEASED:
                    job.refunded += 1
                    self.stats["refunded"] += 1
                    self._finish_task_locked(job, task, _CANCELLED)
            return job.summary()

    # ------------------------------------------------------------- queries
    def list_jobs(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [job.summary() for job in self._jobs.values()]

    def job_summary(self, job_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            job = self._jobs.get(job_id)
            return None if job is None else job.summary()

    def job_detail(self, job_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            job = self._jobs.get(job_id)
            return None if job is None else job.detail()

    def job_results(self, job_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            job = self._jobs.get(job_id)
            return None if job is None else job.results_payload()

    def queue_depth(self) -> int:
        with self._lock:
            return sum(len(job.ready) for job in self._jobs.values())

    def stats_snapshot(self) -> Dict[str, Any]:
        with self._lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "service": dict(self.stats),
                "jobs": states,
                "queue_depth": sum(
                    len(job.ready) for job in self._jobs.values()
                ),
                "workers": len(self._workers),
            }

    # ------------------------------------------------------ state machine
    def _task_locked(self, job_id: str, position: int) -> Optional[_Task]:
        job = self._jobs.get(job_id)
        if job is None or not 0 <= position < len(job.tasks):
            return None  # corrupt or foreign task id; ignore
        return job.tasks[position]

    def _parse_checkpoint(self, spec: RunSpec, document: Any) -> Optional[Any]:
        """Validate a shipped snapshot document against its spec."""
        from repro.errors import SnapshotError
        from repro.snapshot import parse_document

        try:
            snapshot = parse_document(
                document, source=f"spec {spec.key()[:12]} checkpoint"
            )
        except SnapshotError:
            return None  # corrupt in flight; the old checkpoint stays usable
        if snapshot.spec != spec:
            return None
        return snapshot

    def _bank_result_locked(self, task: _Task, parsed: SimResult) -> None:
        if self.cache is not None:
            self.cache.put(RunSpec.from_dict(task.payload), parsed)

    def _complete_chain_head_locked(
        self, key: Optional[str], parsed: SimResult
    ) -> None:
        """Complete the current runner (and so its followers) for ``key``.

        Used when a straggler's result arrives for a task that already went
        terminal (cancelled / expired+reassigned) while a successor chain is
        re-running the same spec: first result wins, the successor's own
        eventual report becomes a duplicate.
        """
        chain = self._inflight.get(key) if key is not None else None
        if not chain:
            return
        head_job_id, head_position = chain[0]
        job = self._jobs.get(head_job_id)
        if job is None:
            return
        task = job.tasks[head_position]
        if task.state in _TERMINAL_TASK_STATES:
            return
        if task.state == _READY:
            try:
                job.ready.remove(head_position)
            except ValueError:
                return  # head should always be queued or leased; bail if not
        task.checkpoint = None
        self._finish_task_locked(job, task, _DONE, parsed)

    def _requeue_or_fail_locked(
        self, job: Job, task: _Task, reason: str, exclude: bool
    ) -> None:
        task.errors.append(reason)
        if exclude and task.worker is not None:
            task.excluded.add(task.worker)
            self._journal_append({
                "kind": "excluded", "job": job.job_id, "key": task.key,
                "worker": task.worker, "reason": reason,
            })
        if task.attempts >= self.max_attempts:
            self._finish_task_locked(job, task, _FAILED)
        else:
            task.state = _READY
            task.worker = None
            job.ready.append(task.position)
            self.stats["requeued"] += 1

    def _finish_task_locked(
        self,
        job: Job,
        task: _Task,
        state: str,
        result: Optional[SimResult] = None,
        journal: bool = True,
        bank: bool = True,
    ) -> None:
        """Move a task to a terminal state and resolve its coalescing chain.

        A ``done`` head completes every follower with the same result; a
        ``failed`` or ``cancelled`` head promotes the next follower into its
        own job's queue with that job's fresh attempt budget — one tenant's
        burned retries (or cancellation) never decide another tenant's spec.
        """
        task.state = state
        task.worker = None
        job.outstanding -= 1
        if state == _DONE:
            job.results[task.position] = result
            if journal:
                self._journal_append({
                    "kind": "completed", "job": job.job_id, "key": task.key,
                    "result": result.to_dict() if result is not None else None,
                })
            self.stats["completed"] += 1
            if bank and result is not None:
                self._bank_result_locked(task, result)
        elif state == _FAILED:
            job.failures[task.position] = "; ".join(task.errors)
            if journal:
                self._journal_append({
                    "kind": "failed", "job": job.job_id, "key": task.key,
                    "reasons": list(task.errors),
                })
            self.stats["failed"] += 1
        # Cancelled tasks are not journaled per-task: the job-cancelled
        # record re-drops them wholesale on replay.
        self._resolve_chain_locked(job, task, state, result, journal)
        self._maybe_finish_job_locked(job)

    def _resolve_chain_locked(
        self,
        job: Job,
        task: _Task,
        state: str,
        result: Optional[SimResult],
        journal: bool,
    ) -> None:
        key = task.key
        chain = self._inflight.get(key) if key is not None else None
        if not chain:
            return
        entry = (job.job_id, task.position)
        if chain[0] == entry:
            rest = chain[1:]
            if state == _DONE:
                # Pop first: follower completions below must not re-enter.
                del self._inflight[key]
                for follower_job_id, follower_position in rest:
                    follower_job = self._jobs.get(follower_job_id)
                    if follower_job is None:
                        continue
                    follower = follower_job.tasks[follower_position]
                    if follower.state in _TERMINAL_TASK_STATES:
                        continue
                    # bank=False: the head's finish already cached this key.
                    self._finish_task_locked(
                        follower_job, follower, _DONE, result, journal,
                        bank=False,
                    )
            elif rest:
                # Promote the next follower: it runs under its own job's
                # attempt budget and exclusion set.
                next_job_id, next_position = rest[0]
                self._inflight[key] = rest
                next_job = self._jobs.get(next_job_id)
                if next_job is not None:
                    next_job.ready.append(next_position)
            else:
                del self._inflight[key]
        elif entry in chain:
            chain.remove(entry)  # a follower went terminal (cancellation)

    def _maybe_finish_job_locked(self, job: Job) -> None:
        if job.outstanding > 0 or job.state in TERMINAL_JOB_STATES:
            return
        job.state = JOB_FAILED if job.failures else JOB_COMPLETED
        job.finished_at = time.time()
        self._scheduler.remove(job.job_id)
        if job.state == JOB_FAILED:
            self.stats["jobs_failed"] += 1
        else:
            self.stats["jobs_completed"] += 1
